"""Sharded discovery: partitioned parallel ingestion, one merged schema.

Feeds a labelled social stream into a `ShardedSchemaSession`: a hash
partitioner routes every node and edge to one of N per-shard sessions
(cross-shard edges travel with marked endpoint stubs), the merged
`schema()` snapshot is fingerprint-identical to a single `SchemaSession`
over the same feed, deletions broadcast so stub copies cascade
everywhere, and checkpoints are per-shard manifests a fresh process can
resume from.  The same feed also runs through process-parallel workers.

Run:  python examples/sharded_discovery.py
"""

import sys
import tempfile
from pathlib import Path

# Allow running from any cwd without installing the package.
sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro import (
    ChangeSet,
    Edge,
    Node,
    PGHiveConfig,
    SchemaSession,
    ShardedSchemaSession,
    schema_fingerprint,
)

LABELS = ["Person", "Org", "Post"]


def change_feed() -> list[ChangeSet]:
    """Six insert change-sets plus one deletion, over three node types."""
    feed: list[ChangeSet] = []
    nodes: list[Node] = []
    edge_serial = 0
    for step in range(6):
        fresh = []
        for offset in range(5):
            serial = step * 5 + offset
            label = LABELS[serial % 3]
            fresh.append(
                Node(
                    f"v{serial}",
                    {label},
                    {f"{label.lower()}_id": serial, "name": f"name-{serial}"},
                )
            )
        nodes.extend(fresh)
        edges = []
        for _ in range(4):
            source = nodes[(edge_serial * 7) % len(nodes)]
            target = nodes[(edge_serial * 3 + 1) % len(nodes)]
            label = f"R_{sorted(source.labels)[0]}_{sorted(target.labels)[0]}"
            edges.append(
                Edge(
                    f"r{edge_serial}",
                    source.node_id,
                    target.node_id,
                    {label},
                )
            )
            edge_serial += 1
        feed.append(ChangeSet.inserts(nodes=fresh, edges=edges))
    return feed


def main() -> None:
    config = PGHiveConfig(seed=7)
    feed = change_feed()

    print("=== serial sharding: 4 in-process shards ===")
    sharded = ShardedSchemaSession(config, n_shards=4, retain_union=True)
    for change_set in feed:
        report = sharded.apply(change_set)
        print(
            f"  change {report.sequence}: +{report.nodes_inserted}N "
            f"+{report.edges_inserted}E across {report.shards_touched} shard(s)"
        )
    print(f"  merged schema: {dict(sharded.schema().summary())}")

    single = SchemaSession(config, retain_union=True)
    for change_set in feed:
        single.apply(change_set)
    identical = schema_fingerprint(sharded.schema()) == schema_fingerprint(
        single.schema()
    )
    print(f"  fingerprint-identical to a single session: {identical}")

    print("=== deletions broadcast across shards ===")
    report = sharded.apply(ChangeSet.deletions(nodes=["v0", "v1"]))
    print(
        f"  deleted {report.nodes_deleted} node(s), cascaded "
        f"{report.edges_deleted} edge(s); "
        f"schema now {dict(sharded.schema().summary())}"
    )

    print("=== per-shard checkpoint manifest ===")
    with tempfile.TemporaryDirectory() as tmp:
        directory = sharded.checkpoint(Path(tmp) / "sharded.ckpt")
        files = sorted(p.name for p in directory.iterdir())
        print(f"  wrote {files}")
        resumed = ShardedSchemaSession.restore(directory)
        match = schema_fingerprint(resumed.schema()) == schema_fingerprint(
            sharded.schema()
        )
        print(f"  restored fingerprint-identical: {match}")

    print("=== process-parallel shards (2 worker processes) ===")
    with ShardedSchemaSession(config, n_shards=2, parallel=True) as parallel:
        for change_set in feed:
            parallel.apply(change_set)
        identical = schema_fingerprint(parallel.schema()) == schema_fingerprint(
            single.schema()
        )
        print(f"  parallel ingest fingerprint-identical: {identical}")


if __name__ == "__main__":
    main()

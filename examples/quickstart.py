"""Quickstart: discover the schema of a small property graph.

Builds the paper's running example (Figure 1) by hand, runs a one-shot
discovery, prints the discovered types, constraints, and the STRICT
PG-Schema -- then rebuilds the same graph live through a `GraphStore`
attached to a `SchemaSession`, the change-feed way to consume PG-HIVE.

Run:  python examples/quickstart.py
"""

import sys
from pathlib import Path

# Allow running from any cwd without installing the package.
sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro import (
    Edge,
    GraphStore,
    Node,
    PGHive,
    PGHiveConfig,
    PropertyGraph,
    SchemaSession,
    ValidationMode,
)


def build_graph() -> PropertyGraph:
    graph = PropertyGraph("figure1")
    graph.add_node(
        Node("bob", {"Person"}, {"name": "Bob", "gender": "male", "bday": "2/5/1980"})
    )
    # Alice has no label -- PG-HIVE will still place her with the Persons.
    graph.add_node(
        Node("alice", frozenset(), {"name": "Alice", "gender": "female",
                                    "bday": "19/12/1999"})
    )
    graph.add_node(
        Node("john", {"Person"}, {"name": "John", "gender": "male",
                                  "bday": "24/9/2005"})
    )
    graph.add_node(Node("post1", {"Post"}, {"imgFile": "screenshot.png"}))
    graph.add_node(Node("post2", {"Post"}, {"content": "bazinga!"}))
    graph.add_node(Node("org", {"Org."}, {"url": "example.com", "name": "Example"}))
    graph.add_node(Node("place", {"Place"}, {"name": "Greece"}))
    graph.add_edge(Edge("e1", "alice", "john", {"KNOWS"}))
    graph.add_edge(Edge("e2", "bob", "john", {"KNOWS"}, {"since": 2025}))
    graph.add_edge(Edge("e3", "alice", "post1", {"LIKES"}))
    graph.add_edge(Edge("e4", "john", "post2", {"LIKES"}))
    graph.add_edge(Edge("e5", "bob", "org", {"WORKS_AT"}, {"from": 2000}))
    graph.add_edge(Edge("e6", "org", "place", {"LOCATED_IN"}))
    graph.add_edge(Edge("e7", "john", "place", {"LOCATED_IN"}, {"from": 2025}))
    return graph


def main() -> None:
    graph = build_graph()
    result = PGHive(PGHiveConfig(seed=0)).discover(graph)
    schema = result.schema

    print(f"Discovered {schema.node_type_count} node types and "
          f"{schema.edge_type_count} edge types "
          f"in {result.elapsed_seconds:.3f}s\n")

    for node_type in schema.node_types():
        mandatory = ", ".join(sorted(node_type.mandatory_keys())) or "-"
        optional = ", ".join(sorted(node_type.optional_keys())) or "-"
        print(f"  ({node_type.display_name})  "
              f"mandatory: {mandatory}  optional: {optional}")
    for edge_type in schema.edge_types():
        sources = "|".join(sorted(t or "?" for t in edge_type.source_tokens))
        targets = "|".join(sorted(t or "?" for t in edge_type.target_tokens))
        print(f"  (:{sources})-[:{edge_type.display_name}]->(:{targets})  "
              f"cardinality {edge_type.cardinality}")

    print("\n--- STRICT PG-Schema ---")
    print(result.to_pg_schema(ValidationMode.STRICT))

    # The same discovery as a live change feed: attach a session to a
    # store and every mutation flows into the schema as it happens.
    print("\n--- Live session over a GraphStore ---")
    store = GraphStore(name="figure1-live")
    session = store.attach(
        SchemaSession(PGHiveConfig(seed=0), schema_name="figure1-live"),
        flush_every=len(graph),  # buffer everything into one change-set
    )
    for node in graph.nodes():
        store.add_node(node)
    for edge in graph.edges():
        store.add_edge(edge)
    store.flush()
    live = session.schema()  # post-processed on demand, cached until a write
    print(f"live session after {session.sequence} change-set(s): "
          f"{live.node_type_count} node types, "
          f"{live.edge_type_count} edge types")


if __name__ == "__main__":
    main()

"""One long-lived `SchemaSession` driving incremental schema discovery.

Splits a POLE-style crime-investigation graph into ten insert batches and
feeds them through a single change-feed session, showing everything the
session API adds over the classic engine:

* a diff subscription printing what each change-set taught the schema;
* a mid-stream ``session.schema()`` snapshot (post-processed on demand,
  cached until the next write);
* ``checkpoint`` / ``restore``: the stream is interrupted halfway, the
  session resumes from disk, and the result is bit-identical to an
  uninterrupted run;
* deletions routed through the same ``apply(ChangeSet)`` feed (gated on
  the retained union graph).

Run:  python examples/incremental_streaming.py
"""

import sys
import tempfile
from pathlib import Path

# Allow running from any cwd without installing the package.
sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro import ChangeSet, PGHiveConfig, SchemaSession, schema_fingerprint
from repro.datasets import load_dataset
from repro.graph.batching import split_into_batches


def on_diff(event) -> None:
    print(f"  event #{event.sequence}: {event.diff.summary()[:100]}")


def main() -> None:
    dataset = load_dataset("POLE", nodes=1500, seed=7)
    batches = split_into_batches(dataset.graph, 10, seed=7)
    config = PGHiveConfig(seed=7)

    print("=== Change feed with a diff subscription (10 insert batches) ===")
    session = SchemaSession(config, schema_name="pole-stream")
    session.subscribe(on_diff)
    for index, batch in enumerate(batches, start=1):
        report = session.add_batch(batch)
        print(f"batch {index:2d}: +{report.nodes_inserted:4d}N/"
              f"+{report.edges_inserted:4d}E {report.seconds * 1000:6.1f}ms  "
              f"types={report.node_types_after}N/{report.edge_types_after}E")
        if index == 4:
            # Mid-stream read: lazily post-processed, cached until the
            # next write -- the feed keeps going afterwards.
            snapshot = session.schema()
            person = snapshot.node_type_by_token("Person")
            print(f"  mid-stream snapshot after batch 4: "
                  f"{snapshot.node_type_count} node types; Person has "
                  f"{len(person.mandatory_keys())} mandatory properties")
    final = session.schema()
    print(f"\nfinal schema: {final.node_type_count} node types, "
          f"{final.edge_type_count} edge types "
          f"({len(final.abstract_node_types())} abstract)")

    print("\n=== Checkpoint / restore (crash after batch 5) ===")
    worker = SchemaSession(config, schema_name="pole-stream")
    for batch in batches[:5]:
        worker.add_batch(batch)
    with tempfile.TemporaryDirectory() as tmp:
        path = worker.checkpoint(Path(tmp) / "pole.ckpt")
        print(f"checkpointed after {worker.sequence} change-sets "
              f"({path.stat().st_size / 1024:.0f} kB)")
        del worker  # the worker process dies here

        resumed = SchemaSession.restore(path)
    for batch in batches[5:]:
        resumed.add_batch(batch)
    identical = schema_fingerprint(resumed.schema()) == schema_fingerprint(final)
    print(f"resumed stream matches uninterrupted run: {identical}")

    print("\n=== Deletions through the same feed (retained union) ===")
    maintained = SchemaSession(
        PGHiveConfig(seed=7, retain_union=True), schema_name="pole-maintained"
    )
    for batch in split_into_batches(dataset.graph, 4, seed=7):
        maintained.add_batch(batch)
    vehicles = [
        node_id
        for node_id, type_name in dataset.node_truth.items()
        if type_name == "Vehicle"
    ]
    print(f"deleting all {len(vehicles)} Vehicle nodes ...")
    report = maintained.apply(ChangeSet.deletions(nodes=vehicles))
    print(f"removed {report.nodes_deleted} nodes and "
          f"{report.edges_deleted} incident edges")
    survivors = {t.display_name for t in maintained.schema().node_types()}
    print(f"Vehicle type still present: {'Vehicle' in survivors}")
    print(f"surviving node types: {len(survivors)}")


if __name__ == "__main__":
    main()

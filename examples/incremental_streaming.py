"""Incremental schema discovery over an insert stream, plus deletions.

Splits a POLE-style crime-investigation graph into ten insert batches,
feeds them through the incremental engine, prints what each batch taught
the schema (using the schema-diff extension), and finally exercises the
deletion-maintenance extension.

Run:  python examples/incremental_streaming.py
"""

import sys
from pathlib import Path

# Allow running from any cwd without installing the package.
sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro import PGHiveConfig
from repro.core.incremental import IncrementalSchemaDiscovery
from repro.core.maintenance import MaintainedSchema
from repro.datasets import load_dataset
from repro.graph.batching import split_into_batches
from repro.schema.diff import diff_schemas


def main() -> None:
    dataset = load_dataset("POLE", nodes=1500, seed=7)
    batches = split_into_batches(dataset.graph, 10, seed=7)
    config = PGHiveConfig(seed=7)

    print("=== Insert stream (10 batches) ===")
    engine = IncrementalSchemaDiscovery(config, schema_name="pole-stream")
    previous = engine.schema.copy()
    for batch in batches:
        report = engine.add_batch(batch)
        diff = diff_schemas(previous, engine.schema)
        previous = engine.schema.copy()
        print(f"batch {report.batch_index:2d}: "
              f"+{report.nodes:4d}N/+{report.edges:4d}E "
              f"{report.seconds * 1000:6.1f}ms  "
              f"types={report.node_types_after}N/{report.edge_types_after}E  "
              f"{diff.summary()[:90]}")
    result = engine.finalize()
    print(f"\nfinal schema: {result.schema.node_type_count} node types, "
          f"{result.schema.edge_type_count} edge types "
          f"({len(result.schema.abstract_node_types())} abstract)")

    print("\n=== Deletion maintenance (extension) ===")
    maintained = MaintainedSchema(config, schema_name="pole-maintained")
    for batch in split_into_batches(dataset.graph, 4, seed=7):
        maintained.insert_batch(batch)
    maintained.refresh()

    vehicles = [
        node_id
        for node_id, type_name in dataset.node_truth.items()
        if type_name == "Vehicle"
    ]
    print(f"deleting all {len(vehicles)} Vehicle nodes ...")
    maintained.delete_nodes(vehicles)
    maintained.refresh()
    survivors = {t.display_name for t in maintained.schema.node_types()}
    print(f"Vehicle type still present: {'Vehicle' in survivors}")
    print(f"surviving node types: {len(survivors)}")


if __name__ == "__main__":
    main()

"""Exporting a discovered schema: PG-Schema (LOOSE + STRICT), XSD, PG-Keys.

Discovers the schema of the HET.IO biomedical-graph equivalent with key
inference enabled and writes all four serialisations next to this script
(under examples/output/).

Run:  python examples/schema_export.py
"""

import sys
from pathlib import Path

# Allow running from any cwd without installing the package.
sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro import PGHive, PGHiveConfig, ValidationMode
from repro.core.key_inference import to_pg_keys
from repro.datasets import load_dataset

OUTPUT = Path(__file__).parent / "output"


def main() -> None:
    dataset = load_dataset("HET.IO", nodes=1200, seed=9)
    config = PGHiveConfig(seed=9, infer_keys=True)
    result = PGHive(config).discover(dataset.graph, schema_name="hetio")

    OUTPUT.mkdir(exist_ok=True)
    exports = {
        "hetio.loose.pgs": result.to_pg_schema(ValidationMode.LOOSE),
        "hetio.strict.pgs": result.to_pg_schema(ValidationMode.STRICT),
        "hetio.xsd": result.to_xsd(),
        "hetio.pgkeys": to_pg_keys(result.schema),
    }
    for filename, content in exports.items():
        path = OUTPUT / filename
        path.write_text(content + "\n")
        print(f"wrote {path} ({len(content.splitlines())} lines)")

    print("\n--- STRICT excerpt ---")
    print("\n".join(result.to_pg_schema(ValidationMode.STRICT).splitlines()[:8]))
    print("  ...")
    keys_text = to_pg_keys(result.schema)
    print(f"\n--- candidate keys ({len(keys_text.splitlines())}) ---")
    print("\n".join(keys_text.splitlines()[:6]))


if __name__ == "__main__":
    main()

"""Schema discovery on noisy, partially labelled, integrated data.

The ICIJ offshore-leaks equivalent integrates several leaks with wildly
inconsistent structure (200+ structural patterns at paper scale).  This
example injects the paper's worst-case perturbations -- 40 % property
removal and only 50 % of nodes labelled -- and shows that PG-HIVE still
recovers the types while the baselines either degrade or refuse to run.

Run:  python examples/heterogeneous_integration.py
"""

import sys
from pathlib import Path

# Allow running from any cwd without installing the package.
sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro import PGHive, PGHiveConfig, ClusteringMethod
from repro.baselines import GMMSchema, SchemI, UnsupportedGraphError
from repro.datasets import apply_noise, load_dataset
from repro.eval.clustering_metrics import majority_f1


def main() -> None:
    dataset = load_dataset("ICIJ", nodes=2000, seed=3)
    print(f"ICIJ equivalent: {dataset.graph.node_count} nodes, "
          f"{dataset.graph.edge_count} edges, "
          f"{dataset.statistics().node_patterns} structural node patterns\n")

    for noise, availability in ((0.0, 1.0), (0.4, 1.0), (0.4, 0.5)):
        noisy = apply_noise(dataset, noise, availability, seed=3)
        print(f"--- noise={noise:.0%}, labels on {availability:.0%} of nodes ---")
        for method in ClusteringMethod:
            config = PGHiveConfig(method=method, seed=3, post_processing=False)
            result = PGHive(config).discover(noisy.graph)
            score = majority_f1(result.node_assignments(), dataset.node_truth)
            print(f"  PG-HIVE-{method.value.upper():8s} node F1*="
                  f"{score.macro_f1:.3f}  "
                  f"({result.schema.node_type_count} types, "
                  f"{len(result.schema.abstract_node_types())} abstract)")
        for baseline in (GMMSchema(seed=3), SchemI()):
            try:
                outcome = baseline.run(noisy.graph)
                score = majority_f1(outcome.node_assignment, dataset.node_truth)
                print(f"  {baseline.name:16s} node F1*={score.macro_f1:.3f}")
            except UnsupportedGraphError as error:
                print(f"  {baseline.name:16s} cannot run: {error}")
        print()


if __name__ == "__main__":
    main()

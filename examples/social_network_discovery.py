"""Schema discovery on an LDBC-style social network.

Generates the LDBC synthetic equivalent (Persons, Forums, Posts, Comments,
Tags, ...), runs both PG-HIVE variants, scores them against the generator's
ground truth with the majority-F1* metric, and validates the graph against
its own discovered schema.

Run:  python examples/social_network_discovery.py
"""

import sys
from pathlib import Path

# Allow running from any cwd without installing the package.
sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro import PGHive, PGHiveConfig, ClusteringMethod, ValidationMode, validate_graph
from repro.datasets import load_dataset
from repro.eval.clustering_metrics import majority_f1


def main() -> None:
    dataset = load_dataset("LDBC", nodes=2000, seed=42)
    graph = dataset.graph
    print(f"Generated {graph.node_count} nodes / {graph.edge_count} edges "
          f"({len(dataset.spec.node_types)} ground-truth node types)\n")

    for method in ClusteringMethod:
        config = PGHiveConfig(method=method, seed=42)
        result = PGHive(config).discover(graph)
        node_score = majority_f1(result.node_assignments(), dataset.node_truth)
        edge_score = majority_f1(result.edge_assignments(), dataset.edge_truth)
        print(f"PG-HIVE-{method.value.upper():8s} "
              f"node F1*={node_score.macro_f1:.3f} "
              f"edge F1*={edge_score.macro_f1:.3f} "
              f"types={result.schema.node_type_count}N/"
              f"{result.schema.edge_type_count}E "
              f"time={result.type_discovery_seconds:.2f}s")

        report = validate_graph(graph, result.schema, ValidationMode.STRICT)
        print(f"  STRICT self-validation: "
              f"{'VALID' if report.valid else report}")

    # Inspect one discovered type in detail.
    result = PGHive(PGHiveConfig(seed=42)).discover(graph)
    person = result.schema.node_type_by_token("Person")
    print("\nPerson type detail:")
    for key in sorted(person.properties):
        spec = person.properties[key]
        flag = "MANDATORY" if spec.mandatory else "OPTIONAL"
        print(f"  {key:12s} {str(spec.data_type):10s} {flag}")

    likes = [t for t in result.schema.edge_types() if "likes" in t.labels]
    print("\n'likes' edge types (same label, different endpoints):")
    for edge_type in likes:
        targets = "|".join(sorted(edge_type.target_tokens))
        print(f"  (:Person)-[:likes]->(:{targets})  {edge_type.cardinality}")


if __name__ == "__main__":
    main()

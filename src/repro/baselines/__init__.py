"""Baseline schema-discovery methods: GMMSchema and SchemI."""

from repro.baselines.base import (
    MethodResult,
    SchemaDiscoveryMethod,
    UnsupportedGraphError,
)
from repro.baselines.gmm import GaussianMixture, select_components_by_bic
from repro.baselines.gmm_schema import GMMSchema
from repro.baselines.schemi import SchemI

__all__ = [
    "GMMSchema",
    "GaussianMixture",
    "MethodResult",
    "SchemI",
    "SchemaDiscoveryMethod",
    "UnsupportedGraphError",
    "select_components_by_bic",
]

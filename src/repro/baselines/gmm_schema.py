"""GMMSchema baseline (Bonifati, Dumbrava, Mir -- EDBT 2022 [15]).

Re-implemented from the published description.  GMMSchema performs
hierarchical clustering based on Gaussian Mixture Models over node property
distributions:

* nodes are represented by binary property-indicator vectors;
* a GMM is fitted over all nodes jointly, with the component count selected
  by BIC around the number of distinct label combinations (the labels seed
  the model-selection range -- which is why the method *requires* fully
  labelled data, Table 1);
* each node's type is its most likely component.

Characteristic limitations reproduced here (section 2 of the paper):
(i) node types only -- no edge types; (ii) fails on unlabeled data;
(iii) property noise perturbs the fitted distributions and mixes types;
(iv) an optional sampling mode fits the GMM on a subset and predicts the
rest, trading accuracy for speed on large graphs.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import MethodResult, SchemaDiscoveryMethod
from repro.baselines.gmm import select_components_by_bic
from repro.graph.model import PropertyGraph

#: Table 1 capability row for GMMSchema.
CAPABILITIES = {
    "label_independent": False,
    "multilabeled_elements": True,
    "schema_elements": "nodes only",
    "constraints": False,
    "incremental": False,
    "automation": True,
    "notes": "GMM, cannot handle missing labels",
}


class GMMSchema(SchemaDiscoveryMethod):
    """Hierarchical GMM clustering of node property distributions."""

    name = "GMM"
    discovers_edges = False
    requires_full_labels = True

    def __init__(
        self,
        component_margin: int = 2,
        sample_size: int | None = 20_000,
        max_iterations: int = 40,
        label_feature_weight: float = 0.5,
        seed: int = 0,
    ) -> None:
        self.component_margin = component_margin
        self.sample_size = sample_size
        self.max_iterations = max_iterations
        self.label_feature_weight = label_feature_weight
        self.seed = seed

    def _run(self, graph: PropertyGraph) -> MethodResult:
        keys = graph.all_node_property_keys()
        key_index = {key: position for position, key in enumerate(keys)}
        labels = graph.all_node_labels()
        label_index = {label: position for position, label in enumerate(labels)}
        node_ids: list[str] = []
        width = max(len(keys) + len(labels), 1)
        vectors = np.zeros((graph.node_count, width))
        label_tokens: set[str] = set()
        for row, node in enumerate(graph.nodes()):
            node_ids.append(node.node_id)
            label_tokens.add(node.token)
            for key in node.properties:
                vectors[row, key_index[key]] = 1.0
            for label in node.labels:
                vectors[row, len(keys) + label_index[label]] = (
                    self.label_feature_weight
                )

        label_combo_count = max(len(label_tokens), 1)
        candidates = list(
            range(
                max(1, label_combo_count - self.component_margin),
                label_combo_count + self.component_margin + 1,
            )
        )

        rng = np.random.default_rng(self.seed)
        if self.sample_size is not None and len(vectors) > self.sample_size:
            chosen = rng.choice(len(vectors), size=self.sample_size, replace=False)
            fit_data = vectors[chosen]
        else:
            fit_data = vectors

        model = select_components_by_bic(
            fit_data,
            candidates,
            seed=self.seed,
            max_iterations=self.max_iterations,
        )
        components = model.predict(vectors)
        assignment = {
            node_id: f"gmm-{component}"
            for node_id, component in zip(node_ids, components)
        }
        return MethodResult(
            method=self.name,
            node_assignment=assignment,
            edge_assignment=None,
            seconds=0.0,
            extras={
                "components": int(model.n_components),
                "bic": float(model.bic(fit_data)),
                "converged": model.converged,
            },
        )

"""Common interface every schema-discovery method exposes to the benches.

A method consumes a :class:`~repro.graph.model.PropertyGraph` and returns a
:class:`MethodResult`: per-node (and optionally per-edge) cluster
assignments plus the wall-clock seconds spent until type discovery.  The
evaluation layer scores assignments against dataset ground truth with the
majority-based F1* metric.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.graph.model import PropertyGraph


class UnsupportedGraphError(ReproError):
    """The method's preconditions (e.g. full labelling) do not hold."""


@dataclass
class MethodResult:
    """Outcome of one discovery run, in evaluation-ready form."""

    method: str
    node_assignment: dict[str, str]
    edge_assignment: dict[str, str] | None
    seconds: float
    extras: dict = field(default_factory=dict)

    @property
    def node_cluster_count(self) -> int:
        """Number of distinct node clusters."""
        return len(set(self.node_assignment.values()))

    @property
    def edge_cluster_count(self) -> int:
        """Number of distinct edge clusters (0 when edges unsupported)."""
        if not self.edge_assignment:
            return 0
        return len(set(self.edge_assignment.values()))


class SchemaDiscoveryMethod:
    """Base class: subclasses implement :meth:`_run`."""

    #: Display name used in bench tables.
    name: str = "method"
    #: Does the method produce edge types at all (GMMSchema does not)?
    discovers_edges: bool = True
    #: Does the method require every element to carry a label?
    requires_full_labels: bool = False

    def check_supported(self, graph: PropertyGraph) -> None:
        """Raise :class:`UnsupportedGraphError` when preconditions fail."""
        if self.requires_full_labels:
            for node in graph.nodes():
                if not node.labels:
                    raise UnsupportedGraphError(
                        f"{self.name} requires fully labelled nodes; "
                        f"node {node.node_id!r} has none"
                    )

    def run(self, graph: PropertyGraph) -> MethodResult:
        """Time and execute the method on ``graph``."""
        self.check_supported(graph)
        start = time.perf_counter()  # repro-lint: ignore[PGL102] -- baseline runtime is a reported measurement, not discovery state
        result = self._run(graph)
        result.seconds = time.perf_counter() - start  # repro-lint: ignore[PGL102] -- baseline runtime is a reported measurement, not discovery state
        return result

    def _run(self, graph: PropertyGraph) -> MethodResult:
        raise NotImplementedError

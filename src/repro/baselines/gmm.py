"""Gaussian Mixture Model with diagonal covariance, fitted by EM.

This is the reproduction's substitute for the scikit-learn / Spark GMM the
GMMSchema baseline [15] builds on.  The implementation covers exactly what
schema discovery needs:

* EM over diagonal-covariance Gaussians with a variance floor (the inputs
  are binary property-indicator vectors, so covariances degenerate without
  one);
* deterministic k-means++-style initialisation from the data;
* log-likelihood-based convergence;
* BIC for model selection over the number of components.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ClusteringError

_LOG_2PI = float(np.log(2.0 * np.pi))


class GaussianMixture:
    """Diagonal-covariance GMM trained with expectation-maximisation."""

    def __init__(
        self,
        n_components: int,
        max_iterations: int = 100,
        tolerance: float = 1e-4,
        variance_floor: float = 1e-3,
        seed: int = 0,
    ) -> None:
        if n_components < 1:
            raise ClusteringError(f"n_components must be >= 1, got {n_components}")
        self.n_components = n_components
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.variance_floor = variance_floor
        self.seed = seed
        self.weights: np.ndarray | None = None  # (k,)
        self.means: np.ndarray | None = None  # (k, d)
        self.variances: np.ndarray | None = None  # (k, d)
        self.converged = False
        self.iterations_run = 0
        self.log_likelihood = -np.inf

    # ------------------------------------------------------------------
    # Initialisation
    # ------------------------------------------------------------------
    def _init_parameters(self, data: np.ndarray, rng: np.random.Generator) -> None:
        count, dim = data.shape
        # k-means++-style spread: first centre random, then proportional to
        # squared distance from the closest chosen centre.
        centers = [data[rng.integers(count)]]
        for _ in range(1, self.n_components):
            stacked = np.vstack(centers)
            distances = np.min(
                ((data[:, None, :] - stacked[None, :, :]) ** 2).sum(axis=2), axis=1
            )
            total = distances.sum()
            if total <= 0:
                centers.append(data[rng.integers(count)])
                continue
            centers.append(data[rng.choice(count, p=distances / total)])
        self.means = np.vstack(centers).astype(np.float64)
        global_variance = np.maximum(data.var(axis=0), self.variance_floor)
        self.variances = np.tile(global_variance, (self.n_components, 1))
        self.weights = np.full(self.n_components, 1.0 / self.n_components)

    # ------------------------------------------------------------------
    # EM
    # ------------------------------------------------------------------
    def _log_prob(self, data: np.ndarray) -> np.ndarray:
        """Per-component log densities, shape ``(n, k)``."""
        precision = 1.0 / self.variances  # (k, d)
        log_det = np.log(self.variances).sum(axis=1)  # (k,)
        # (n, k): sum_d (x - mu)^2 / var
        deltas = data[:, None, :] - self.means[None, :, :]
        mahalanobis = np.einsum("nkd,kd->nk", deltas**2, precision)
        return -0.5 * (mahalanobis + log_det + data.shape[1] * _LOG_2PI)

    def _weighted_log_prob(self, data: np.ndarray) -> np.ndarray:
        return self._log_prob(data) + np.log(self.weights)

    def fit(self, data: np.ndarray) -> "GaussianMixture":
        """Run EM until convergence or ``max_iterations``."""
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2 or data.shape[0] == 0:
            raise ClusteringError(f"expected non-empty (n, d) data, got {data.shape}")
        if data.shape[0] < self.n_components:
            raise ClusteringError(
                f"{self.n_components} components need at least as many points, "
                f"got {data.shape[0]}"
            )
        rng = np.random.default_rng(self.seed)
        self._init_parameters(data, rng)

        previous = -np.inf
        for iteration in range(1, self.max_iterations + 1):
            # E step
            weighted = self._weighted_log_prob(data)  # (n, k)
            normaliser = _logsumexp(weighted)  # (n,)
            responsibilities = np.exp(weighted - normaliser[:, None])
            current = float(normaliser.mean())
            # M step
            component_mass = responsibilities.sum(axis=0) + 1e-12  # (k,)
            self.weights = component_mass / data.shape[0]
            self.means = (responsibilities.T @ data) / component_mass[:, None]
            squared = responsibilities.T @ (data**2) / component_mass[:, None]
            self.variances = np.maximum(
                squared - self.means**2, self.variance_floor
            )
            self.iterations_run = iteration
            self.log_likelihood = current
            if abs(current - previous) < self.tolerance:
                self.converged = True
                break
            previous = current
        return self

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def predict(self, data: np.ndarray) -> np.ndarray:
        """Most likely component per row."""
        if self.means is None:
            raise ClusteringError("fit must run before predict")
        data = np.asarray(data, dtype=np.float64)
        return np.argmax(self._weighted_log_prob(data), axis=1)

    def score(self, data: np.ndarray) -> float:
        """Mean log-likelihood of ``data``."""
        if self.means is None:
            raise ClusteringError("fit must run before score")
        data = np.asarray(data, dtype=np.float64)
        return float(_logsumexp(self._weighted_log_prob(data)).mean())

    @property
    def parameter_count(self) -> int:
        """Free parameters: means + variances + (k-1) mixture weights."""
        if self.means is None:
            raise ClusteringError("fit must run before parameter_count")
        k, dim = self.means.shape
        return k * dim * 2 + (k - 1)

    def bic(self, data: np.ndarray) -> float:
        """Bayesian information criterion (lower is better)."""
        data = np.asarray(data, dtype=np.float64)
        count = data.shape[0]
        total_log_likelihood = self.score(data) * count
        return -2.0 * total_log_likelihood + self.parameter_count * np.log(count)


def _logsumexp(matrix: np.ndarray) -> np.ndarray:
    peak = matrix.max(axis=1, keepdims=True)
    return (peak + np.log(np.exp(matrix - peak).sum(axis=1, keepdims=True)))[:, 0]


def select_components_by_bic(
    data: np.ndarray,
    candidates: list[int],
    seed: int = 0,
    max_iterations: int = 50,
) -> GaussianMixture:
    """Fit one GMM per candidate k and return the lowest-BIC model."""
    if not candidates:
        raise ClusteringError("candidate component counts must be non-empty")
    best_model: GaussianMixture | None = None
    best_bic = np.inf
    for k in candidates:
        if k < 1 or k > len(data):
            continue
        model = GaussianMixture(
            k, max_iterations=max_iterations, seed=seed
        ).fit(data)
        bic = model.bic(data)
        if bic < best_bic:
            best_model, best_bic = model, bic
    if best_model is None:
        raise ClusteringError(
            f"no feasible component count among {candidates} for {len(data)} points"
        )
    return best_model

"""SchemI baseline (Lbath, Bonifati, Harmer -- EDBT 2021 [62]).

Re-implemented from the published description.  SchemI assumes fully
labelled nodes and edges, treats each distinct label as a type, and "groups
similar node types based on shared labels": candidate types whose label
sets intersect are unified.  On multi-label datasets this collapses types
that share a generic label (e.g. every HET.IO node carrying the extra
``HetionetNode`` label, or ``{Person}`` vs ``{Person, Student}``), which is
the characteristic accuracy gap Figure 4 shows.  Property noise, by
contrast, barely affects it -- labels survive property removal.

The implementation follows SchemI's incremental pattern-aggregation shape:
each element's pattern is compared against the open candidate types one by
one (label intersection, then property union), a per-element scan over
candidates that cannot be vectorised -- the honest cost behind the paper's
Figure 5 runtime gap.
"""

from __future__ import annotations

from repro.baselines.base import (
    MethodResult,
    SchemaDiscoveryMethod,
    UnsupportedGraphError,
)
from repro.graph.model import PropertyGraph
from repro.lsh.union_find import UnionFind

#: Table 1 capability row for SchemI.
CAPABILITIES = {
    "label_independent": False,
    "multilabeled_elements": False,
    "schema_elements": "nodes & edges",
    "constraints": False,
    "incremental": False,
    "automation": True,
    "notes": "cannot handle missing labels",
}


class _CandidateType:
    """An open SchemI candidate: labels seen so far plus property union."""

    __slots__ = ("type_id", "labels", "property_keys")

    def __init__(self, type_id: int, labels: frozenset[str], keys: frozenset[str]):
        self.type_id = type_id
        self.labels = set(labels)
        self.property_keys = set(keys)

    def match_score(
        self, labels: frozenset[str], keys: frozenset[str]
    ) -> tuple[int, float]:
        """(shared-label count, property Jaccard) against this candidate."""
        shared = len(self.labels & labels)
        if shared == 0:
            return (0, 0.0)
        union = len(self.property_keys | keys)
        overlap = len(self.property_keys & keys)
        return (shared, overlap / union if union else 1.0)

    def absorb(self, labels: frozenset[str], keys: frozenset[str]) -> None:
        self.labels |= labels
        self.property_keys |= keys


class SchemI(SchemaDiscoveryMethod):
    """Label-driven node and edge typing with shared-label unification."""

    name = "SchemI"
    discovers_edges = True
    requires_full_labels = True

    def check_supported(self, graph: PropertyGraph) -> None:
        super().check_supported(graph)
        for edge in graph.edges():
            if not edge.labels:
                raise UnsupportedGraphError(
                    f"{self.name} requires fully labelled edges; "
                    f"edge {edge.edge_id!r} has none"
                )

    def _run(self, graph: PropertyGraph) -> MethodResult:
        node_assignment = self._assign_nodes(graph)
        edge_assignment = self._assign_edges(graph)
        return MethodResult(
            method=self.name,
            node_assignment=node_assignment,
            edge_assignment=edge_assignment,
            seconds=0.0,
        )

    def _assign_nodes(self, graph: PropertyGraph) -> dict[str, str]:
        candidates: list[_CandidateType] = []
        membership: dict[str, int] = {}
        for node in graph.nodes():
            # SchemI has no LSH index: every element's pattern is compared
            # against every open candidate to find the best label match
            # (the O(N * C) scan PG-HIVE's clustering exists to avoid).
            chosen: _CandidateType | None = None
            best_score = (0, 0.0)
            for candidate in candidates:
                score = candidate.match_score(node.labels, node.property_keys)
                if score[0] > 0 and score > best_score:
                    chosen, best_score = candidate, score
            if chosen is None:
                chosen = _CandidateType(
                    len(candidates), node.labels, node.property_keys
                )
                candidates.append(chosen)
            else:
                chosen.absorb(node.labels, node.property_keys)
            membership[node.node_id] = chosen.type_id

        # Shared-label unification: candidates whose label sets came to
        # intersect (through later multi-label absorptions) merge.
        union = UnionFind(len(candidates))
        for left_index in range(len(candidates)):
            for right_index in range(left_index + 1, len(candidates)):
                if candidates[left_index].labels & candidates[right_index].labels:
                    union.union(left_index, right_index)
        return {
            node_id: f"schemi-n{union.find(type_id)}"
            for node_id, type_id in membership.items()
        }

    def _assign_edges(self, graph: PropertyGraph) -> dict[str, str]:
        # Each distinct edge label is one type; endpoint types are ignored,
        # so ground-truth types distinguished only by endpoints collapse.
        # The per-edge pattern extraction (labels + property keys + endpoint
        # lookups) is still performed, as SchemI's aggregation requires.
        assignment: dict[str, str] = {}
        label_ids: dict[frozenset[str], int] = {}
        patterns: dict[tuple, int] = {}
        for edge in graph.edges():
            source = graph.node(edge.source_id)
            target = graph.node(edge.target_id)
            pattern = (edge.labels, edge.property_keys, source.labels, target.labels)
            patterns[pattern] = patterns.get(pattern, 0) + 1
            type_id = label_ids.setdefault(edge.labels, len(label_ids))
            assignment[edge.edge_id] = f"schemi-e{type_id}"
        return assignment

"""Small shared utilities: set similarity, timing, deterministic seeding."""

from __future__ import annotations

import time
from collections.abc import Iterable, Set
from contextlib import contextmanager
from dataclasses import dataclass, field


def jaccard(left: Set, right: Set) -> float:
    """Jaccard similarity |A ∩ B| / |A ∪ B|; two empty sets score 1.0.

    The 1.0 convention for empty sets means two property-less unlabeled
    clusters are considered identical, which is the behaviour Algorithm 2
    needs (they carry no distinguishing information).
    """
    if not left and not right:
        return 1.0
    union = len(left | right)
    if union == 0:
        return 1.0
    return len(left & right) / union


def derive_seed(base_seed: int, *components: int | str) -> int:
    """Derive a stable sub-seed from a base seed and arbitrary components.

    Python's ``hash`` on strings is salted per process, so a small
    deterministic FNV-1a fold is used instead.
    """
    state = (base_seed * 0x100000001B3 + 0xCBF29CE484222325) % (1 << 63)
    for component in components:
        text = str(component)
        for char in text.encode("utf-8"):
            state = ((state ^ char) * 0x100000001B3) % (1 << 63)
    return state


@dataclass
class Timer:
    """Accumulating wall-clock timer with named laps.

    >>> timer = Timer()
    >>> with timer.measure("clustering"):
    ...     pass
    >>> timer.total  # doctest: +SKIP
    """

    laps: dict[str, float] = field(default_factory=dict)

    @contextmanager
    def measure(self, name: str):
        """Context manager adding the elapsed time to lap ``name``."""
        start = time.perf_counter()  # repro-lint: ignore[PGL102] -- Timer exists to report wall-clock diagnostics; timings never feed discovery results
        try:
            yield self
        finally:
            elapsed = time.perf_counter() - start  # repro-lint: ignore[PGL102] -- Timer exists to report wall-clock diagnostics; timings never feed discovery results
            self.laps[name] = self.laps.get(name, 0.0) + elapsed

    @property
    def total(self) -> float:
        """Sum of all laps in seconds."""
        return sum(self.laps.values())

    def lap(self, name: str) -> float:
        """Elapsed seconds recorded for ``name`` (0.0 when absent)."""
        return self.laps.get(name, 0.0)


def chunked(items: Iterable, size: int) -> Iterable[list]:
    """Yield successive lists of at most ``size`` items."""
    batch: list = []
    for item in items:
        batch.append(item)
        if len(batch) == size:
            yield batch
            batch = []
    if batch:
        yield batch

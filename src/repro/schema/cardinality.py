"""Edge-type cardinalities (section 4.4).

The paper computes, per edge type, the maximum out-degree (distinct targets
of any single source) and maximum in-degree (distinct sources of any single
target) and interprets the pair:

    (1, 1)   -> "0:1"   one-to-one (lower bound unresolved)
    (>1, 1)  -> "N:1"
    (1, >1)  -> "0:N"   one-to-many (lower bound unresolved)
    (>1, >1) -> "M:N"

Lower bounds cannot be told apart from 0 without scanning unconnected nodes;
like the paper, we record only the upper-bound classification.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class Cardinality(Enum):
    """Upper-bound cardinality classes for an edge type."""

    ONE_TO_ONE = "0:1"
    MANY_TO_ONE = "N:1"
    ONE_TO_MANY = "0:N"
    MANY_TO_MANY = "M:N"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True, slots=True)
class CardinalityBounds:
    """Raw (max-out, max-in) degrees backing a cardinality classification."""

    max_out: int
    max_in: int

    def classify(self) -> Cardinality:
        """Map the degree pair to a :class:`Cardinality` per the table above."""
        if self.max_out <= 1 and self.max_in <= 1:
            return Cardinality.ONE_TO_ONE
        if self.max_out > 1 and self.max_in <= 1:
            # A source reaches many targets; each target has one source.
            return Cardinality.ONE_TO_MANY
        if self.max_out <= 1 and self.max_in > 1:
            # Many sources share one target.
            return Cardinality.MANY_TO_ONE
        return Cardinality.MANY_TO_MANY

    def merged_with(self, other: "CardinalityBounds") -> "CardinalityBounds":
        """Monotone union of two bounds (used by incremental schema merge)."""
        return CardinalityBounds(
            max(self.max_out, other.max_out), max(self.max_in, other.max_in)
        )

"""Schema merging (section 4.6): the least-general schema covering both inputs.

Merge rules mirror Algorithm 2, lifted from clusters to whole schemas:

* labelled node/edge types with the same label token merge directly;
* unlabeled node types merge with a labelled type when the Jaccard
  similarity of their property-key sets reaches ``theta`` (0.9 by default),
  then with each other, and otherwise survive as ABSTRACT types;
* unlabeled edge types additionally require overlapping endpoint tokens
  before a Jaccard merge, so structurally similar but differently wired
  relationships stay apart;
* property specs union, datatypes generalise, mandatory weakens to optional,
  cardinality bounds take componentwise maxima.

Monotonicity (Lemmas 1-2) makes the result a generalisation of both inputs;
:func:`repro.schema.model.subsumes` checks that relation.

Since the sharded-discovery work, merging is **deterministic**: incoming
types are processed in a canonical content order (label token, then
sorted property keys, then sorted instance ids) rather than insertion
order, merge candidates are scanned in the same canonical order, and
absorbed property specs are re-sorted by key -- so folding the same set
of schemas in any order produces fingerprint-identical results for
token-mergeable types.  :func:`canonicalize_schema` completes the
picture with deterministic cluster naming: content-derived type ids and
a canonical type order, independent of how many partial schemas were
folded or in which sequence.
"""

from __future__ import annotations

import hashlib

from repro.schema.model import EdgeType, NodeType, SchemaGraph
from repro.util import jaccard

DEFAULT_THETA = 0.9


def _instance_discriminator(schema_type: NodeType | EdgeType) -> tuple:
    """Cheap deterministic tie-break between content-similar types.

    Distinct types of one schema (almost) never share instances, so the
    minimum instance id separates them without materialising the whole
    sorted id set -- the keys below sit inside candidate-scan loops, and
    O(|instances| log |instances|) per comparison would dominate merges.
    """
    return (
        schema_type.instance_count,
        min(schema_type.instance_ids, default=""),
    )


def _node_sort_key(node_type: NodeType) -> tuple:
    """Canonical content order for node types (no ids, no insertion order)."""
    return (
        node_type.token,
        tuple(sorted(node_type.property_keys)),
        _instance_discriminator(node_type),
    )


def _edge_sort_key(edge_type: EdgeType) -> tuple:
    """Canonical content order for edge types."""
    return (
        edge_type.token,
        tuple(sorted(edge_type.source_tokens)),
        tuple(sorted(edge_type.target_tokens)),
        tuple(sorted(edge_type.property_keys)),
        _instance_discriminator(edge_type),
    )


def merge_schemas(
    base: SchemaGraph,
    incoming: SchemaGraph,
    theta: float = DEFAULT_THETA,
    name: str | None = None,
) -> SchemaGraph:
    """Return a new schema generalising ``base`` and ``incoming``."""
    merged = base.copy(name or base.name)
    merge_into(merged, incoming, theta)
    return merged


def merge_into(
    target: SchemaGraph,
    incoming: SchemaGraph,
    theta: float = DEFAULT_THETA,
) -> SchemaGraph:
    """Destructively merge ``incoming`` into ``target`` (section 4.6 rules).

    ``incoming`` is read-only; its types are copied before absorption.
    Types are processed -- and merge candidates scanned -- in canonical
    content order, so the result does not depend on either schema's
    insertion order.
    """
    deferred_nodes: list[NodeType] = []
    for node_type in sorted(incoming.node_types(), key=_node_sort_key):
        if node_type.labels:
            existing = target.node_type_by_token(node_type.token)
            if existing is not None:
                _absorb_sorted(existing, node_type)
            else:
                _add_node_copy(target, node_type)
        else:
            deferred_nodes.append(node_type)

    for node_type in deferred_nodes:
        _merge_unlabeled_node(target, node_type, theta)

    deferred_edges: list[EdgeType] = []
    for edge_type in sorted(incoming.edge_types(), key=_edge_sort_key):
        if edge_type.labels:
            existing = next(
                (
                    candidate
                    for candidate in sorted(
                        target.edge_types(), key=_edge_sort_key
                    )
                    if candidate.labels
                    and candidate.token == edge_type.token
                    and _endpoints_overlap(candidate, edge_type)
                ),
                None,
            )
            if existing is not None:
                _absorb_sorted(existing, edge_type)
            else:
                _add_edge_copy(target, edge_type)
        else:
            deferred_edges.append(edge_type)

    for edge_type in deferred_edges:
        _merge_unlabeled_edge(target, edge_type, theta)
    return target


def _absorb_sorted(existing, incoming) -> None:
    """Absorb a copy of ``incoming`` and keep property specs key-sorted."""
    existing.absorb(incoming.copy())
    existing.properties = dict(sorted(existing.properties.items()))


def _add_node_copy(target: SchemaGraph, node_type: NodeType) -> NodeType:
    clone = node_type.copy()
    if any(t.type_id == clone.type_id for t in target.node_types()):
        clone.type_id = target.new_type_id("n")
    return target.add_node_type(clone)


def _add_edge_copy(target: SchemaGraph, edge_type: EdgeType) -> EdgeType:
    clone = edge_type.copy()
    if any(t.type_id == clone.type_id for t in target.edge_types()):
        clone.type_id = target.new_type_id("e")
    return target.add_edge_type(clone)


def _merge_unlabeled_node(
    target: SchemaGraph, node_type: NodeType, theta: float
) -> None:
    best, best_score = None, -1.0
    candidates = sorted(target.node_types(), key=_node_sort_key)
    for candidate in candidates:
        if not candidate.labels:
            continue
        score = jaccard(candidate.property_keys, node_type.property_keys)
        if score >= theta and score > best_score:
            best, best_score = candidate, score
    if best is None:
        for candidate in candidates:
            if candidate.labels:
                continue
            score = jaccard(candidate.property_keys, node_type.property_keys)
            if score >= theta and score > best_score:
                best, best_score = candidate, score
    if best is not None:
        _absorb_sorted(best, node_type)
    else:
        clone = _add_node_copy(target, node_type)
        clone.abstract = True


def _merge_unlabeled_edge(
    target: SchemaGraph, edge_type: EdgeType, theta: float
) -> None:
    best, best_score = None, -1.0
    for candidate in sorted(target.edge_types(), key=_edge_sort_key):
        if not _endpoints_overlap(candidate, edge_type):
            continue
        score = jaccard(candidate.property_keys, edge_type.property_keys)
        if score >= theta and score > best_score:
            best, best_score = candidate, score
    if best is not None:
        _absorb_sorted(best, edge_type)
    else:
        clone = _add_edge_copy(target, edge_type)
        clone.abstract = True


def _content_digest(*parts: tuple) -> str:
    """Short stable digest of canonical content parts (naming only)."""
    text = "\x1f".join("\x1e".join(map(str, part)) for part in parts)
    return hashlib.blake2b(text.encode("utf-8"), digest_size=4).hexdigest()


def _canonical_stem(schema_type: NodeType | EdgeType) -> str:
    prefix = "e" if isinstance(schema_type, EdgeType) else "n"
    if schema_type.labels:
        return f"{prefix}:{schema_type.token}"
    return (
        f"{prefix}:abstract:"
        f"{_content_digest(tuple(sorted(schema_type.property_keys)))}"
    )


def canonicalize_schema(schema: SchemaGraph) -> SchemaGraph:
    """Deterministic cluster naming and ordering, in place.

    Rewrites every type id to a content-derived name (``n:Person``,
    ``e:FOLLOWS``, ``n:abstract:<digest-of-keys>``; colliding stems get a
    deterministic ``#k`` suffix in canonical order), reorders the type
    registries canonically, and key-sorts every property-spec dict.  Two
    schemas that agree on content therefore also agree on names, type
    order, and rendering -- regardless of how many partial schemas were
    merged to produce them, or in which order.

    Intended for merged/reconciled schemas (the sharded read path); live
    session schemas keep their arrival-order ids.
    """
    node_types = sorted(schema.node_types(), key=_node_sort_key)
    edge_types = sorted(schema.edge_types(), key=_edge_sort_key)
    for node_type in node_types:
        schema.remove_node_type(node_type.type_id)
    for edge_type in edge_types:
        schema.remove_edge_type(edge_type.type_id)
    used: set[str] = set()
    for schema_type in (*node_types, *edge_types):
        stem = _canonical_stem(schema_type)
        candidate, suffix = stem, 2
        while candidate in used:
            candidate = f"{stem}#{suffix}"
            suffix += 1
        used.add(candidate)
        schema_type.type_id = candidate
        schema_type.properties = dict(sorted(schema_type.properties.items()))
    for node_type in node_types:
        schema.add_node_type(node_type)
    for edge_type in edge_types:
        schema.add_edge_type(edge_type)
    return schema


def _endpoints_overlap(left: EdgeType, right: EdgeType) -> bool:
    """True when both endpoint token sets intersect.

    Empty tokens (unlabeled endpoints) act as wildcards: a side whose only
    observed endpoints are unlabeled is compatible with anything.
    """
    return _tokens_overlap(
        left.source_tokens, right.source_tokens
    ) and _tokens_overlap(left.target_tokens, right.target_tokens)


def _tokens_overlap(left: set[str], right: set[str]) -> bool:
    left_known = left - {""}
    right_known = right - {""}
    if not left_known or not right_known:
        return True
    return bool(left_known & right_known)

"""Schema merging (section 4.6): the least-general schema covering both inputs.

Merge rules mirror Algorithm 2, lifted from clusters to whole schemas:

* labelled node/edge types with the same label token merge directly;
* unlabeled node types merge with a labelled type when the Jaccard
  similarity of their property-key sets reaches ``theta`` (0.9 by default),
  then with each other, and otherwise survive as ABSTRACT types;
* unlabeled edge types additionally require overlapping endpoint tokens
  before a Jaccard merge, so structurally similar but differently wired
  relationships stay apart;
* property specs union, datatypes generalise, mandatory weakens to optional,
  cardinality bounds take componentwise maxima.

Monotonicity (Lemmas 1-2) makes the result a generalisation of both inputs;
:func:`repro.schema.model.subsumes` checks that relation.
"""

from __future__ import annotations

from repro.schema.model import EdgeType, NodeType, SchemaGraph
from repro.util import jaccard

DEFAULT_THETA = 0.9


def merge_schemas(
    base: SchemaGraph,
    incoming: SchemaGraph,
    theta: float = DEFAULT_THETA,
    name: str | None = None,
) -> SchemaGraph:
    """Return a new schema generalising ``base`` and ``incoming``."""
    merged = base.copy(name or base.name)
    merge_into(merged, incoming, theta)
    return merged


def merge_into(
    target: SchemaGraph,
    incoming: SchemaGraph,
    theta: float = DEFAULT_THETA,
) -> SchemaGraph:
    """Destructively merge ``incoming`` into ``target`` (section 4.6 rules)."""
    deferred_nodes: list[NodeType] = []
    for node_type in incoming.node_types():
        if node_type.labels:
            existing = target.node_type_by_token(node_type.token)
            if existing is not None:
                existing.absorb(node_type.copy())
            else:
                _add_node_copy(target, node_type)
        else:
            deferred_nodes.append(node_type)

    for node_type in deferred_nodes:
        _merge_unlabeled_node(target, node_type, theta)

    deferred_edges: list[EdgeType] = []
    for edge_type in incoming.edge_types():
        if edge_type.labels:
            existing = next(
                (
                    candidate
                    for candidate in target.edge_types()
                    if candidate.labels
                    and candidate.token == edge_type.token
                    and _endpoints_overlap(candidate, edge_type)
                ),
                None,
            )
            if existing is not None:
                existing.absorb(edge_type.copy())
            else:
                _add_edge_copy(target, edge_type)
        else:
            deferred_edges.append(edge_type)

    for edge_type in deferred_edges:
        _merge_unlabeled_edge(target, edge_type, theta)
    return target


def _add_node_copy(target: SchemaGraph, node_type: NodeType) -> NodeType:
    clone = node_type.copy()
    if any(t.type_id == clone.type_id for t in target.node_types()):
        clone.type_id = target.new_type_id("n")
    return target.add_node_type(clone)


def _add_edge_copy(target: SchemaGraph, edge_type: EdgeType) -> EdgeType:
    clone = edge_type.copy()
    if any(t.type_id == clone.type_id for t in target.edge_types()):
        clone.type_id = target.new_type_id("e")
    return target.add_edge_type(clone)


def _merge_unlabeled_node(
    target: SchemaGraph, node_type: NodeType, theta: float
) -> None:
    best, best_score = None, -1.0
    for candidate in target.node_types():
        if not candidate.labels:
            continue
        score = jaccard(candidate.property_keys, node_type.property_keys)
        if score >= theta and score > best_score:
            best, best_score = candidate, score
    if best is None:
        for candidate in target.node_types():
            if candidate.labels:
                continue
            score = jaccard(candidate.property_keys, node_type.property_keys)
            if score >= theta and score > best_score:
                best, best_score = candidate, score
    if best is not None:
        best.absorb(node_type.copy())
    else:
        clone = _add_node_copy(target, node_type)
        clone.abstract = True


def _merge_unlabeled_edge(
    target: SchemaGraph, edge_type: EdgeType, theta: float
) -> None:
    best, best_score = None, -1.0
    for candidate in target.edge_types():
        if not _endpoints_overlap(candidate, edge_type):
            continue
        score = jaccard(candidate.property_keys, edge_type.property_keys)
        if score >= theta and score > best_score:
            best, best_score = candidate, score
    if best is not None:
        best.absorb(edge_type.copy())
    else:
        clone = _add_edge_copy(target, edge_type)
        clone.abstract = True


def _endpoints_overlap(left: EdgeType, right: EdgeType) -> bool:
    """True when both endpoint token sets intersect.

    Empty tokens (unlabeled endpoints) act as wildcards: a side whose only
    observed endpoints are unlabeled is compatible with anything.
    """
    return _tokens_overlap(
        left.source_tokens, right.source_tokens
    ) and _tokens_overlap(left.target_tokens, right.target_tokens)


def _tokens_overlap(left: set[str], right: set[str]) -> bool:
    left_known = left - {""}
    right_known = right - {""}
    if not left_known or not right_known:
        return True
    return bool(left_known & right_known)

"""Property data types and value-level type inference (section 4.4).

The paper applies a priority-based chain per value: integer, float, boolean,
date/time via ISO-format regexes, defaulting to string.  Types of different
values of the same property are reconciled with a least-general
generalisation (integer+float -> float, date+datetime -> datetime, anything
else -> string), so the inferred type is always compatible with every
observed value (section 4.7 "Data type inference" guarantee).
"""

from __future__ import annotations

import re
from collections import Counter
from collections.abc import Iterable
from enum import Enum
from typing import Any


class DataType(Enum):
    """GQL-style primitive data types used by PG-Schema serialisations."""

    INTEGER = "INT"
    FLOAT = "DOUBLE"
    BOOLEAN = "BOOLEAN"
    DATE = "DATE"
    DATETIME = "TIMESTAMP"
    STRING = "STRING"

    def __str__(self) -> str:
        return self.value


#: ISO calendar date: 2024-03-09
_ISO_DATE = re.compile(r"^\d{4}-\d{2}-\d{2}$")
#: European date as in the paper's example: 19/12/1999
_SLASH_DATE = re.compile(r"^\d{1,2}/\d{1,2}/\d{4}$")
#: ISO timestamp: 2024-03-09T12:30:00 (optional fraction / zone suffix)
_ISO_DATETIME = re.compile(
    r"^\d{4}-\d{2}-\d{2}[T ]\d{2}:\d{2}(:\d{2})?(\.\d+)?(Z|[+-]\d{2}:?\d{2})?$"
)
_BOOL_STRINGS = {"true", "false"}


def infer_value_type(value: Any) -> DataType:
    """The most specific :class:`DataType` for a single value.

    Follows the paper's priority chain.  ``bool`` is tested before ``int``
    because Python booleans are integers; the paper's mathematical notation
    (v in Z, v in R\\Z, v in {true,false}) has no such overlap.
    """
    if isinstance(value, bool):
        return DataType.BOOLEAN
    if isinstance(value, int):
        return DataType.INTEGER
    if isinstance(value, float):
        if value.is_integer():
            return DataType.INTEGER
        return DataType.FLOAT
    if isinstance(value, str):
        if _ISO_DATETIME.match(value):
            return DataType.DATETIME
        if _ISO_DATE.match(value) or _SLASH_DATE.match(value):
            return DataType.DATE
        if value.lower() in _BOOL_STRINGS:
            return DataType.BOOLEAN
        return DataType.STRING
    return DataType.STRING


def generalize(left: DataType, right: DataType) -> DataType:
    """Least general common type of two data types.

    Compatible pairs keep the wider member (INTEGER/FLOAT -> FLOAT,
    DATE/DATETIME -> DATETIME); incompatible pairs fall back to STRING,
    mirroring the paper's "defaulting to a string" rule.
    """
    if left is right:
        return left
    pair = {left, right}
    if pair == {DataType.INTEGER, DataType.FLOAT}:
        return DataType.FLOAT
    if pair == {DataType.DATE, DataType.DATETIME}:
        return DataType.DATETIME
    return DataType.STRING


def infer_type(values: Iterable[Any]) -> DataType:
    """Generalised type over all ``values`` (full-scan inference ``f(D_p)``).

    Empty input defaults to STRING, the chain's bottom element.
    """
    result: DataType | None = None
    for value in values:
        value_type = infer_value_type(value)
        result = value_type if result is None else generalize(result, value_type)
        if result is DataType.STRING:
            break  # STRING is absorbing; no need to scan further.
    return result if result is not None else DataType.STRING


def dominant_type(values: Iterable[Any]) -> DataType:
    """Most frequent value-level type (ties broken by enum declaration order).

    Used by the Figure 8 experiment, which compares sampled inference with
    "the dominant types determined using a full scan".
    """
    counts: Counter[DataType] = Counter(infer_value_type(v) for v in values)
    if not counts:
        return DataType.STRING
    order = {dt: i for i, dt in enumerate(DataType)}
    return max(counts, key=lambda dt: (counts[dt], -order[dt]))


def is_value_compatible(value: Any, data_type: DataType) -> bool:
    """True when ``value`` conforms to ``data_type`` (STRICT validation)."""
    value_type = infer_value_type(value)
    if value_type is data_type:
        return True
    if data_type is DataType.STRING:
        return True  # STRING accepts everything (generalisation bottom).
    if data_type is DataType.FLOAT and value_type is DataType.INTEGER:
        return True
    if data_type is DataType.DATETIME and value_type is DataType.DATE:
        return True
    return False

"""Validation of a property graph against a discovered schema.

PG-Schema distinguishes LOOSE and STRICT conformance (section 3, "Schema
constraint level", and section 4.5):

* **LOOSE** -- every element must be covered by some type: its labels equal
  a type's label set (unlabeled elements may match any type) and its
  property keys are a subset of the type's keys.
* **STRICT** -- additionally, every property flagged MANDATORY must be
  present, every present value must be compatible with the inferred
  datatype, and edge endpoints must match the type's recorded endpoint
  tokens.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.graph.model import Edge, Node, PropertyGraph
from repro.schema.datatypes import is_value_compatible
from repro.schema.model import EdgeType, NodeType, SchemaGraph


class ValidationMode(Enum):
    """Conformance strictness."""

    LOOSE = "LOOSE"
    STRICT = "STRICT"


@dataclass(frozen=True, slots=True)
class Violation:
    """One conformance failure."""

    element_id: str
    kind: str
    message: str

    def __str__(self) -> str:
        return f"[{self.kind}] {self.element_id}: {self.message}"


@dataclass
class ValidationReport:
    """Outcome of validating a graph against a schema."""

    mode: ValidationMode
    checked_nodes: int = 0
    checked_edges: int = 0
    violations: list[Violation] = field(default_factory=list)

    @property
    def valid(self) -> bool:
        """True when no violations were recorded."""
        return not self.violations

    def add(self, element_id: str, kind: str, message: str) -> None:
        """Record a violation."""
        self.violations.append(Violation(element_id, kind, message))

    def __str__(self) -> str:
        status = "VALID" if self.valid else f"{len(self.violations)} violation(s)"
        return (
            f"ValidationReport(mode={self.mode.value}, nodes={self.checked_nodes}, "
            f"edges={self.checked_edges}, {status})"
        )


def _node_candidates(node: Node, schema: SchemaGraph) -> list[NodeType]:
    if node.labels:
        exact = [t for t in schema.node_types() if t.labels == set(node.labels)]
        if exact:
            return exact
        return [t for t in schema.node_types() if set(node.labels) <= t.labels]
    return list(schema.node_types())


def _edge_candidates(edge: Edge, schema: SchemaGraph) -> list[EdgeType]:
    if edge.labels:
        exact = [t for t in schema.edge_types() if t.labels == set(edge.labels)]
        if exact:
            return exact
        return [t for t in schema.edge_types() if set(edge.labels) <= t.labels]
    return list(schema.edge_types())


def _loose_match(element: Node | Edge, candidate: NodeType | EdgeType) -> bool:
    return element.property_keys <= candidate.property_keys


def _strict_issues(
    element: Node | Edge, candidate: NodeType | EdgeType
) -> list[str]:
    issues: list[str] = []
    for key in candidate.mandatory_keys():
        if key not in element.properties:
            issues.append(f"missing mandatory property {key!r}")
    for key, value in element.properties.items():
        spec = candidate.properties.get(key)
        if spec is None:
            issues.append(f"unexpected property {key!r}")
            continue
        if spec.data_type is not None and not is_value_compatible(
            value, spec.data_type
        ):
            issues.append(
                f"property {key!r} value {value!r} incompatible with "
                f"{spec.data_type}"
            )
    return issues


def validate_graph(
    graph: PropertyGraph,
    schema: SchemaGraph,
    mode: ValidationMode = ValidationMode.LOOSE,
) -> ValidationReport:
    """Validate every node and edge of ``graph`` against ``schema``."""
    report = ValidationReport(mode)
    for node in graph.nodes():
        report.checked_nodes += 1
        _validate_element(node.node_id, node, _node_candidates(node, schema), report)
    for edge in graph.edges():
        report.checked_edges += 1
        candidates = _edge_candidates(edge, schema)
        if mode is ValidationMode.STRICT and candidates:
            source = graph.node(edge.source_id)
            target = graph.node(edge.target_id)
            candidates = [
                c
                for c in candidates
                if _endpoint_ok(source.token, c.source_tokens)
                and _endpoint_ok(target.token, c.target_tokens)
            ] or candidates  # fall back so the property check still reports
        _validate_element(edge.edge_id, edge, candidates, report)
    return report


def _endpoint_ok(token: str, allowed: set[str]) -> bool:
    return not allowed or token in allowed


def _validate_element(
    element_id: str,
    element: Node | Edge,
    candidates: list,
    report: ValidationReport,
) -> None:
    if not candidates:
        report.add(element_id, "no-type", "no schema type covers this element")
        return
    loose_matches = [c for c in candidates if _loose_match(element, c)]
    if not loose_matches:
        report.add(
            element_id,
            "loose",
            "property keys "
            f"{sorted(element.property_keys)} exceed every candidate type",
        )
        return
    if report.mode is ValidationMode.LOOSE:
        return
    best_issues: list[str] | None = None
    for candidate in loose_matches:
        issues = _strict_issues(element, candidate)
        if not issues:
            return
        if best_issues is None or len(issues) < len(best_issues):
            best_issues = issues
    for issue in best_issues or []:
        report.add(element_id, "strict", issue)

"""Schema diffing (extension): what changed between two schema snapshots.

Incremental discovery produces a monotone chain of schemas; a diff answers
"what did this batch teach us?" -- new types, new properties on existing
types, widened cardinalities, weakened constraints.  Types are matched by
label token (labelled) or by property-key set (abstract).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.schema.model import EdgeType, NodeType, SchemaGraph


@dataclass(frozen=True, slots=True)
class TypeChange:
    """Changes observed on one matched type."""

    display_name: str
    added_labels: frozenset[str]
    added_properties: frozenset[str]
    weakened_to_optional: frozenset[str]
    cardinality_before: str | None = None
    cardinality_after: str | None = None

    @property
    def is_empty(self) -> bool:
        """True when nothing actually changed."""
        return (
            not self.added_labels
            and not self.added_properties
            and not self.weakened_to_optional
            and self.cardinality_before == self.cardinality_after
        )


@dataclass
class SchemaDiff:
    """Difference report between two schemas."""

    added_node_types: list[str] = field(default_factory=list)
    added_edge_types: list[str] = field(default_factory=list)
    removed_node_types: list[str] = field(default_factory=list)
    removed_edge_types: list[str] = field(default_factory=list)
    changed_node_types: list[TypeChange] = field(default_factory=list)
    changed_edge_types: list[TypeChange] = field(default_factory=list)

    @property
    def is_empty(self) -> bool:
        """True when the schemas are equivalent under this comparison."""
        return not (
            self.added_node_types
            or self.added_edge_types
            or self.removed_node_types
            or self.removed_edge_types
            or self.changed_node_types
            or self.changed_edge_types
        )

    def summary(self) -> str:
        """Human-readable one-paragraph summary."""
        if self.is_empty:
            return "no schema changes"
        parts = []
        if self.added_node_types:
            parts.append(f"+{len(self.added_node_types)} node type(s): "
                         f"{', '.join(self.added_node_types)}")
        if self.added_edge_types:
            parts.append(f"+{len(self.added_edge_types)} edge type(s): "
                         f"{', '.join(self.added_edge_types)}")
        if self.removed_node_types:
            parts.append(f"-{len(self.removed_node_types)} node type(s)")
        if self.removed_edge_types:
            parts.append(f"-{len(self.removed_edge_types)} edge type(s)")
        for change in self.changed_node_types + self.changed_edge_types:
            details = []
            if change.added_labels:
                details.append(f"labels +{sorted(change.added_labels)}")
            if change.added_properties:
                details.append(f"props +{sorted(change.added_properties)}")
            if change.weakened_to_optional:
                details.append(
                    f"now optional {sorted(change.weakened_to_optional)}"
                )
            if change.cardinality_before != change.cardinality_after:
                details.append(
                    f"cardinality {change.cardinality_before} -> "
                    f"{change.cardinality_after}"
                )
            parts.append(f"{change.display_name}: {'; '.join(details)}")
        return " | ".join(parts)


def _match_key(schema_type: NodeType | EdgeType) -> tuple:
    if schema_type.labels:
        return ("token", schema_type.token)
    return ("keys", schema_type.property_keys)


def _type_change(
    before: NodeType | EdgeType, after: NodeType | EdgeType
) -> TypeChange:
    added_labels = frozenset(after.labels - before.labels)
    added_properties = frozenset(after.property_keys - before.property_keys)
    weakened = frozenset(
        key
        for key in before.property_keys & after.property_keys
        if before.properties[key].mandatory is True
        and after.properties[key].mandatory is False
    )
    cardinality_before = cardinality_after = None
    if isinstance(before, EdgeType) and isinstance(after, EdgeType):
        cardinality_before = (
            str(before.cardinality) if before.cardinality else None
        )
        cardinality_after = str(after.cardinality) if after.cardinality else None
    return TypeChange(
        display_name=after.display_name,
        added_labels=added_labels,
        added_properties=added_properties,
        weakened_to_optional=weakened,
        cardinality_before=cardinality_before,
        cardinality_after=cardinality_after,
    )


def diff_schemas(before: SchemaGraph, after: SchemaGraph) -> SchemaDiff:
    """Compare two schemas; see module docstring for matching rules."""
    diff = SchemaDiff()
    for kind, iter_before, iter_after in (
        ("node", list(before.node_types()), list(after.node_types())),
        ("edge", list(before.edge_types()), list(after.edge_types())),
    ):
        before_map = {_match_key(t): t for t in iter_before}
        after_map = {_match_key(t): t for t in iter_after}
        added = [
            after_map[key].display_name for key in after_map if key not in before_map
        ]
        removed = [
            before_map[key].display_name
            for key in before_map
            if key not in after_map
        ]
        changed = []
        for key in before_map.keys() & after_map.keys():
            change = _type_change(before_map[key], after_map[key])
            if not change.is_empty:
                changed.append(change)
        if kind == "node":
            diff.added_node_types = sorted(added)
            diff.removed_node_types = sorted(removed)
            diff.changed_node_types = sorted(
                changed, key=lambda c: c.display_name
            )
        else:
            diff.added_edge_types = sorted(added)
            diff.removed_edge_types = sorted(removed)
            diff.changed_edge_types = sorted(
                changed, key=lambda c: c.display_name
            )
    return diff

"""Schema-graph model: types, datatypes, cardinalities, merging, validation."""

from repro.schema.cardinality import Cardinality, CardinalityBounds
from repro.schema.datatypes import (
    DataType,
    dominant_type,
    generalize,
    infer_type,
    infer_value_type,
    is_value_compatible,
)
from repro.schema.diff import SchemaDiff, TypeChange, diff_schemas
from repro.schema.merge import DEFAULT_THETA, merge_into, merge_schemas
from repro.schema.model import (
    ABSTRACT_PREFIX,
    EdgeType,
    NodeType,
    PropertySpec,
    SchemaGraph,
    subsumes,
)
from repro.schema.validation import (
    ValidationMode,
    ValidationReport,
    Violation,
    validate_graph,
)

__all__ = [
    "ABSTRACT_PREFIX",
    "Cardinality",
    "CardinalityBounds",
    "DEFAULT_THETA",
    "DataType",
    "EdgeType",
    "NodeType",
    "PropertySpec",
    "SchemaDiff",
    "SchemaGraph",
    "TypeChange",
    "ValidationMode",
    "ValidationReport",
    "Violation",
    "diff_schemas",
    "dominant_type",
    "generalize",
    "infer_type",
    "infer_value_type",
    "is_value_compatible",
    "merge_into",
    "merge_schemas",
    "subsumes",
    "validate_graph",
]

"""Schema-graph model (Definitions 3.2-3.4 of the paper).

A schema graph ``SG = (Vs, Es, rho_s)`` holds node types and edge types.
Types are *mutable* accumulation objects: discovery repeatedly absorbs
clusters and other types into them, unioning labels, property keys, and
endpoint tokens (Lemmas 1 and 2 guarantee nothing is ever lost).

Each type also tracks the instance identifiers assigned to it; the
post-processing passes (constraints, datatypes, cardinalities) and the
majority-F1 evaluation both need that assignment.
"""

from __future__ import annotations

import itertools
from collections import Counter
from collections.abc import Iterable, Iterator, Mapping

from repro.errors import SchemaError
from repro.graph.model import label_token
from repro.schema.cardinality import Cardinality, CardinalityBounds
from repro.schema.datatypes import DataType

ABSTRACT_PREFIX = "ABSTRACT"


class PropertySpec:
    """Schema entry for one property key of a type.

    ``data_type`` and ``mandatory`` stay ``None`` until the corresponding
    post-processing pass fills them in (they are optional in Algorithm 1).
    ``unique`` is set by the key-inference extension
    (:mod:`repro.core.key_inference`) when values are pairwise distinct.
    """

    __slots__ = ("key", "data_type", "mandatory", "unique")

    def __init__(
        self,
        key: str,
        data_type: DataType | None = None,
        mandatory: bool | None = None,
        unique: bool | None = None,
    ) -> None:
        self.key = key
        self.data_type = data_type
        self.mandatory = mandatory
        self.unique = unique

    def merged_with(self, other: "PropertySpec") -> "PropertySpec":
        """Monotone merge: datatypes generalise, mandatory weakens to optional.

        ``unique`` resets to unknown: distinctness within each side says
        nothing about distinctness across their union, so keys must be
        re-inferred after a merge.
        """
        from repro.schema.datatypes import generalize

        if self.key != other.key:
            raise SchemaError(f"cannot merge specs {self.key!r} and {other.key!r}")
        if self.data_type is None or other.data_type is None:
            data_type = self.data_type or other.data_type
        else:
            data_type = generalize(self.data_type, other.data_type)
        if self.mandatory is None or other.mandatory is None:
            mandatory = self.mandatory if self.mandatory is not None else other.mandatory
        else:
            mandatory = self.mandatory and other.mandatory
        return PropertySpec(self.key, data_type, mandatory, unique=None)

    def copy(self) -> "PropertySpec":
        """Independent copy."""
        return PropertySpec(self.key, self.data_type, self.mandatory, self.unique)

    def __repr__(self) -> str:
        parts = [repr(self.key)]
        if self.data_type is not None:
            parts.append(str(self.data_type))
        if self.mandatory is not None:
            parts.append("MANDATORY" if self.mandatory else "OPTIONAL")
        if self.unique:
            parts.append("UNIQUE")
        return f"PropertySpec({', '.join(parts)})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PropertySpec):
            return NotImplemented
        return (
            self.key == other.key
            and self.data_type == other.data_type
            and self.mandatory == other.mandatory
            and self.unique == other.unique
        )

    def __hash__(self) -> int:
        return hash((self.key, self.data_type, self.mandatory, self.unique))


class _TypeBase:
    """Shared state of node and edge types."""

    def __init__(
        self,
        type_id: str,
        labels: Iterable[str] = (),
        abstract: bool = False,
    ) -> None:
        self.type_id = type_id  # repro-lint: ignore[PGL201] -- identity, not mergeable content: absorb keeps the receiver's id and fingerprints exclude it by design
        self.labels: set[str] = set(labels)
        self.properties: dict[str, PropertySpec] = {}
        self.abstract = abstract
        self.instance_ids: set[str] = set()
        #: per-key occurrence counts over instances (constraint inference)
        self.property_counts: Counter[str] = Counter()
        self.instance_count = 0
        #: candidate keys (tuples of property names) from key inference
        self.candidate_keys: list[tuple[str, ...]] = []
        #: streaming post-processing accumulators
        #: (:class:`repro.core.accumulators.TypeSummaries`), attached and
        #: fed by type extraction.  Kept duck-typed (``merge_from`` /
        #: ``copy``) so the schema layer needs no import from core.
        self.summaries = None  # repro-lint: ignore[PGL201] -- fingerprints are summary-independent by design (sharded and single-session summaries differ internally)

    @property
    def token(self) -> str:
        """Canonical token of the type's label set."""
        return label_token(self.labels)

    @property
    def property_keys(self) -> frozenset[str]:
        """Keys of every property ever observed on this type."""
        return frozenset(self.properties)

    @property
    def display_name(self) -> str:
        """Human-readable name: label token or ABSTRACT id."""
        return self.token if self.labels else f"{ABSTRACT_PREFIX}:{self.type_id}"

    def ensure_property(self, key: str) -> PropertySpec:
        """Get-or-create the :class:`PropertySpec` for ``key``."""
        spec = self.properties.get(key)
        if spec is None:
            spec = PropertySpec(key)
            self.properties[key] = spec
        return spec

    def record_instance(self, instance_id: str, property_keys: Iterable[str]) -> bool:
        """Attach an instance: update counts and ensure property specs exist.

        Replayed instances (batch streams ship endpoint stubs with every
        batch that references them) are counted once -- double counting
        would skew the constraint frequencies ``f_T(p)`` of section 4.4.
        Returns True when the instance was newly recorded (callers fold
        property values into the streaming summaries exactly then).
        """
        if instance_id in self.instance_ids:
            return False
        self.instance_ids.add(instance_id)
        self.instance_count += 1
        for key in property_keys:
            self.property_counts[key] += 1
            self.ensure_property(key)
        return True

    def _absorb_base(self, other: "_TypeBase") -> None:
        self.labels |= other.labels
        for key, spec in other.properties.items():
            if key in self.properties:
                self.properties[key] = self.properties[key].merged_with(spec)
            else:
                self.properties[key] = spec.copy()
        self.instance_ids |= other.instance_ids
        self.property_counts += other.property_counts
        self.instance_count += other.instance_count
        # Uniqueness within each side says nothing about the union.
        self.candidate_keys = []
        if self.summaries is not None and other.summaries is not None:
            self.summaries.merge_from(other.summaries)
        else:
            # A side without summaries carries unfolded values: the union's
            # streaming state would be incomplete, so drop it entirely.
            self.summaries = None
        if other.labels:
            self.abstract = False

    def mandatory_keys(self) -> frozenset[str]:
        """Keys currently flagged mandatory."""
        return frozenset(
            key for key, spec in self.properties.items() if spec.mandatory
        )

    def optional_keys(self) -> frozenset[str]:
        """Keys currently flagged optional."""
        return frozenset(
            key for key, spec in self.properties.items() if spec.mandatory is False
        )


class NodeType(_TypeBase):
    """A node type (Def. 3.2): label set plus property specifications."""

    def absorb(self, other: "NodeType") -> "NodeType":
        """Union ``other`` into this type (Lemma 1 monotone merge)."""
        self._absorb_base(other)
        return self

    def copy(self) -> "NodeType":
        """Deep copy (property specs copied, instance sets copied)."""
        clone = NodeType(self.type_id, self.labels, self.abstract)
        clone.properties = {k: s.copy() for k, s in self.properties.items()}
        clone.instance_ids = set(self.instance_ids)
        clone.property_counts = Counter(self.property_counts)
        clone.instance_count = self.instance_count
        clone.candidate_keys = list(self.candidate_keys)
        clone.summaries = None if self.summaries is None else self.summaries.copy()
        return clone

    def __repr__(self) -> str:
        return (
            f"NodeType({self.display_name!r}, props={sorted(self.properties)}, "
            f"instances={self.instance_count})"
        )


class EdgeType(_TypeBase):
    """An edge type (Def. 3.3): labels, properties, connectivity, cardinality.

    Connectivity is tracked as the *label tokens* of observed source/target
    node types; :meth:`SchemaGraph.edge_endpoints` resolves them to node
    types to realise ``rho_s``.
    """

    def __init__(
        self,
        type_id: str,
        labels: Iterable[str] = (),
        abstract: bool = False,
    ) -> None:
        super().__init__(type_id, labels, abstract)
        self.source_tokens: set[str] = set()
        self.target_tokens: set[str] = set()
        self.cardinality: Cardinality | None = None
        self.cardinality_bounds: CardinalityBounds | None = None

    def record_endpoints(self, source_token: str, target_token: str) -> None:
        """Add one observed (source, target) label-token pair."""
        self.source_tokens.add(source_token)
        self.target_tokens.add(target_token)

    def absorb(self, other: "EdgeType") -> "EdgeType":
        """Union ``other`` into this type (Lemma 2 monotone merge)."""
        self._absorb_base(other)
        self.source_tokens |= other.source_tokens
        self.target_tokens |= other.target_tokens
        if other.cardinality_bounds is not None:
            if self.cardinality_bounds is None:
                self.cardinality_bounds = other.cardinality_bounds
            else:
                self.cardinality_bounds = self.cardinality_bounds.merged_with(
                    other.cardinality_bounds
                )
            self.cardinality = self.cardinality_bounds.classify()
        return self

    def copy(self) -> "EdgeType":
        """Deep copy."""
        clone = EdgeType(self.type_id, self.labels, self.abstract)
        clone.properties = {k: s.copy() for k, s in self.properties.items()}
        clone.instance_ids = set(self.instance_ids)
        clone.property_counts = Counter(self.property_counts)
        clone.instance_count = self.instance_count
        clone.source_tokens = set(self.source_tokens)
        clone.target_tokens = set(self.target_tokens)
        clone.cardinality = self.cardinality
        clone.cardinality_bounds = self.cardinality_bounds
        clone.candidate_keys = list(self.candidate_keys)
        clone.summaries = None if self.summaries is None else self.summaries.copy()
        return clone

    def __repr__(self) -> str:
        return (
            f"EdgeType({self.display_name!r}, props={sorted(self.properties)}, "
            f"from={sorted(self.source_tokens)}, to={sorted(self.target_tokens)}, "
            f"instances={self.instance_count})"
        )


class SchemaGraph:
    """The discovered schema ``SG = (Vs, Es, rho_s)`` (Def. 3.4)."""

    def __init__(self, name: str = "schema") -> None:
        self.name = name
        self._node_types: dict[str, NodeType] = {}
        self._edge_types: dict[str, EdgeType] = {}
        self._id_counter = itertools.count()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def new_type_id(self, prefix: str) -> str:
        """Fresh identifier (``n17`` / ``e3``) unique within this schema.

        Skips identifiers already taken -- copies and merges carry types
        whose ids were issued by *other* schemas' counters.
        """
        while True:
            candidate = f"{prefix}{next(self._id_counter)}"
            if (
                candidate not in self._node_types
                and candidate not in self._edge_types
            ):
                return candidate

    def add_node_type(self, node_type: NodeType) -> NodeType:
        """Register a node type."""
        if node_type.type_id in self._node_types:
            raise SchemaError(f"duplicate node type id {node_type.type_id!r}")
        self._node_types[node_type.type_id] = node_type
        return node_type

    def add_edge_type(self, edge_type: EdgeType) -> EdgeType:
        """Register an edge type."""
        if edge_type.type_id in self._edge_types:
            raise SchemaError(f"duplicate edge type id {edge_type.type_id!r}")
        self._edge_types[edge_type.type_id] = edge_type
        return edge_type

    def remove_node_type(self, type_id: str) -> None:
        """Remove a node type (used when a merge collapses two ids)."""
        del self._node_types[type_id]

    def remove_edge_type(self, type_id: str) -> None:
        """Remove an edge type."""
        del self._edge_types[type_id]

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def node_types(self) -> Iterator[NodeType]:
        """Iterate node types in insertion order."""
        return iter(self._node_types.values())

    def edge_types(self) -> Iterator[EdgeType]:
        """Iterate edge types in insertion order."""
        return iter(self._edge_types.values())

    def node_type(self, type_id: str) -> NodeType:
        """Node type by id."""
        try:
            return self._node_types[type_id]
        except KeyError:
            raise SchemaError(f"no node type {type_id!r}") from None

    def edge_type(self, type_id: str) -> EdgeType:
        """Edge type by id."""
        try:
            return self._edge_types[type_id]
        except KeyError:
            raise SchemaError(f"no edge type {type_id!r}") from None

    @property
    def node_type_count(self) -> int:
        """Number of node types."""
        return len(self._node_types)

    @property
    def edge_type_count(self) -> int:
        """Number of edge types."""
        return len(self._edge_types)

    def node_type_by_token(self, token: str) -> NodeType | None:
        """The labelled node type whose label token equals ``token``."""
        for node_type in self._node_types.values():
            if node_type.labels and node_type.token == token:
                return node_type
        return None

    def edge_type_by_token(self, token: str) -> EdgeType | None:
        """The labelled edge type whose label token equals ``token``."""
        for edge_type in self._edge_types.values():
            if edge_type.labels and edge_type.token == token:
                return edge_type
        return None

    def abstract_node_types(self) -> list[NodeType]:
        """Node types kept as ABSTRACT (no labels discovered)."""
        return [t for t in self._node_types.values() if t.abstract]

    # ------------------------------------------------------------------
    # Connectivity (rho_s)
    # ------------------------------------------------------------------
    def edge_endpoints(
        self, edge_type: EdgeType
    ) -> tuple[list[NodeType], list[NodeType]]:
        """Resolve an edge type's endpoint tokens to node types.

        A node type matches an endpoint token when its own token equals it;
        tokens with no matching labelled type resolve to nothing (the data
        's endpoint was unlabeled or its type is ABSTRACT).
        """
        sources = [
            t
            for token in sorted(edge_type.source_tokens)
            if (t := self.node_type_by_token(token)) is not None
        ]
        targets = [
            t
            for token in sorted(edge_type.target_tokens)
            if (t := self.node_type_by_token(token)) is not None
        ]
        return sources, targets

    # ------------------------------------------------------------------
    # Assignment views (used by evaluation and post-processing)
    # ------------------------------------------------------------------
    def node_assignments(self) -> dict[str, str]:
        """instance id -> node-type id over all node types."""
        assignment: dict[str, str] = {}
        for node_type in self._node_types.values():
            for instance_id in node_type.instance_ids:
                assignment[instance_id] = node_type.type_id
        return assignment

    def edge_assignments(self) -> dict[str, str]:
        """instance id -> edge-type id over all edge types."""
        assignment: dict[str, str] = {}
        for edge_type in self._edge_types.values():
            for instance_id in edge_type.instance_ids:
                assignment[instance_id] = edge_type.type_id
        return assignment

    # ------------------------------------------------------------------
    # Copying / summarising
    # ------------------------------------------------------------------
    def copy(self, name: str | None = None) -> "SchemaGraph":
        """Deep copy of the schema (types copied, ids preserved)."""
        clone = SchemaGraph(name or self.name)
        for node_type in self._node_types.values():
            clone.add_node_type(node_type.copy())
        for edge_type in self._edge_types.values():
            clone.add_edge_type(edge_type.copy())
        return clone

    def summary(self) -> Mapping[str, int]:
        """Counts used in logs and tests."""
        return {
            "node_types": self.node_type_count,
            "edge_types": self.edge_type_count,
            "abstract_node_types": len(self.abstract_node_types()),
            "node_instances": sum(
                t.instance_count for t in self._node_types.values()
            ),
            "edge_instances": sum(
                t.instance_count for t in self._edge_types.values()
            ),
        }

    def __repr__(self) -> str:
        return (
            f"SchemaGraph(name={self.name!r}, node_types={self.node_type_count}, "
            f"edge_types={self.edge_type_count})"
        )


def subsumes(general: SchemaGraph, specific: SchemaGraph) -> bool:
    """True when ``general`` generalises ``specific`` (``specific ⊑ general``).

    Every labelled type of ``specific`` must have a counterpart in
    ``general`` whose labels and property keys are supersets; abstract types
    must be covered by *some* type with a property-key superset.  This is the
    monotone-chain relation of section 4.6.
    """
    for node_type in specific.node_types():
        if node_type.labels:
            counterpart = _find_covering(general.node_types(), node_type)
        else:
            counterpart = _find_covering(general.node_types(), node_type, labels=False)
        if counterpart is None:
            return False
    for edge_type in specific.edge_types():
        counterpart = None
        for candidate in general.edge_types():
            if not edge_type.labels <= candidate.labels:
                continue
            if not edge_type.property_keys <= candidate.property_keys:
                continue
            if not edge_type.source_tokens <= candidate.source_tokens:
                continue
            if not edge_type.target_tokens <= candidate.target_tokens:
                continue
            counterpart = candidate
            break
        if counterpart is None:
            return False
    return True


def _find_covering(candidates, wanted, labels: bool = True):
    for candidate in candidates:
        if labels and not wanted.labels <= candidate.labels:
            continue
        if not wanted.property_keys <= candidate.property_keys:
            continue
        return candidate
    return None


def _type_fingerprint(schema_type: NodeType | EdgeType) -> tuple:
    base = (
        tuple(sorted(schema_type.labels)),
        schema_type.abstract,
        tuple(
            (spec.key, spec.data_type, spec.mandatory, spec.unique)
            for spec in sorted(
                schema_type.properties.values(), key=lambda s: s.key
            )
        ),
        tuple(sorted(schema_type.instance_ids)),
        tuple(sorted(schema_type.property_counts.items())),
        schema_type.instance_count,
        tuple(sorted(schema_type.candidate_keys)),
    )
    if isinstance(schema_type, EdgeType):
        bounds = schema_type.cardinality_bounds
        base += (
            tuple(sorted(schema_type.source_tokens)),
            tuple(sorted(schema_type.target_tokens)),
            schema_type.cardinality,
            None if bounds is None else (bounds.max_out, bounds.max_in),
        )
    return base


def schema_fingerprint(schema: SchemaGraph) -> tuple:
    """Canonical, hashable digest of everything a schema asserts.

    Two schemas with equal fingerprints agree on every type, label,
    property spec, instance assignment, endpoint token, cardinality, and
    candidate key.  Deliberately excluded: streaming accumulators
    (``summaries``, internal post-processing state), type *ids*, and the
    registry insertion order -- ids and ordering are artefacts of arrival
    and merge order, and the sharded read path reconstructs the same
    schema under canonical names, so the fingerprint compares what the
    schema *asserts*, not how it was assembled.  Per-type tuples are
    sorted by their repr, a total and deterministic order.  Used by the
    checkpoint round-trip tests, the session-vs-maintenance equivalence
    oracle, and the sharded-vs-single-session oracle.
    """
    return (
        tuple(sorted((_type_fingerprint(t) for t in schema.node_types()), key=repr)),
        tuple(sorted((_type_fingerprint(t) for t in schema.edge_types()), key=repr)),
    )

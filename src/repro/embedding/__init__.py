"""Embedding substrate: Word2Vec from scratch plus label-corpus builders."""

from repro.embedding.corpus import build_label_corpus
from repro.embedding.vocab import Vocabulary
from repro.embedding.word2vec import Word2Vec

__all__ = ["Vocabulary", "Word2Vec", "build_label_corpus"]

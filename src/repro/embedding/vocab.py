"""Vocabulary over label-combination tokens.

Tokens are the canonical sorted-concatenation of a label set (section 4.1);
the vocabulary assigns dense indices, tracks frequencies, and exposes the
``count^0.75`` unigram distribution used for negative sampling.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable

import numpy as np


class Vocabulary:
    """Token <-> index mapping with unigram negative-sampling weights."""

    def __init__(self) -> None:
        self._index: dict[str, int] = {}
        self._tokens: list[str] = []
        self._counts: Counter[str] = Counter()

    def add(self, token: str, count: int = 1) -> int:
        """Register ``token`` (empty tokens are rejected) and return its index."""
        if not token:
            raise ValueError("empty token cannot enter the vocabulary")
        if token not in self._index:
            self._index[token] = len(self._tokens)
            self._tokens.append(token)
        self._counts[token] += count
        return self._index[token]

    def add_sentences(self, sentences: Iterable[list[str]]) -> "Vocabulary":
        """Register every token of every sentence."""
        for sentence in sentences:
            for token in sentence:
                if token:
                    self.add(token)
        return self

    def index(self, token: str) -> int | None:
        """Index of ``token`` or None when unknown."""
        return self._index.get(token)

    def token(self, index: int) -> str:
        """Token at ``index``."""
        return self._tokens[index]

    def __contains__(self, token: str) -> bool:
        return token in self._index

    def __len__(self) -> int:
        return len(self._tokens)

    def __iter__(self):
        return iter(self._tokens)

    def count(self, token: str) -> int:
        """Observed frequency of ``token``."""
        return self._counts.get(token, 0)

    def negative_sampling_probabilities(self, power: float = 0.75) -> np.ndarray:
        """Unigram^power distribution over indices (Mikolov et al.)."""
        if not self._tokens:
            return np.zeros(0)
        counts = np.array(
            [self._counts[token] for token in self._tokens], dtype=np.float64
        )
        weights = counts**power
        return weights / weights.sum()

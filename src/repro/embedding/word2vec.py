"""Skip-gram Word2Vec with negative sampling, implemented in numpy.

This is the reproduction's substitute for gensim (Mikolov et al. [69] in the
paper).  The vocabulary here is tiny -- one token per distinct label
combination -- so a vectorised numpy SGNS trainer converges in milliseconds
while exposing the exact semantics the paper relies on:

* identical label sets always map to identical embeddings (tokens are
  canonical, and vectors are deterministic under the seed);
* the empty label set maps to the all-zero vector (section 4.1, Example 3);
* tokens never seen in any context keep their deterministic initial vector,
  which is derived from the token *text*, so the same label set embeds the
  same way across incremental batches even when trained separately.
"""

from __future__ import annotations

import hashlib
from collections.abc import Iterable, Sequence

import numpy as np

from repro.embedding.vocab import Vocabulary


def _token_seed(token: str) -> int:
    """Stable 64-bit seed derived from the token text."""
    digest = hashlib.sha256(token.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


def _deterministic_init(token: str, dim: int, scale: float) -> np.ndarray:
    rng = np.random.default_rng(_token_seed(token))
    return rng.uniform(-scale, scale, dim)


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -30.0, 30.0)))


#: Embedding rows are renormalised to this L2 norm when training pushes
#: them beyond it (see Word2Vec._train_chunk).
_MAX_ROW_NORM = 5.0


class Word2Vec:
    """Skip-gram with negative sampling over token sentences.

    Parameters follow the classic formulation: embedding ``dim``, context
    ``window``, ``negative`` samples per positive pair, ``epochs`` passes,
    and a linearly decaying ``learning_rate``.
    """

    def __init__(
        self,
        dim: int = 16,
        window: int = 2,
        negative: int = 5,
        epochs: int = 5,
        learning_rate: float = 0.025,
        seed: int = 0,
    ) -> None:
        if dim < 1:
            raise ValueError(f"dim must be >= 1, got {dim}")
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.dim = dim
        self.window = window
        self.negative = negative
        self.epochs = epochs
        self.learning_rate = learning_rate
        self.seed = seed
        self.vocabulary = Vocabulary()
        self._input: np.ndarray | None = None  # W: |V| x dim
        self._output: np.ndarray | None = None  # C: |V| x dim

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def fit(self, sentences: Sequence[list[str]]) -> "Word2Vec":
        """Train on ``sentences`` (lists of non-empty tokens)."""
        self.vocabulary = Vocabulary().add_sentences(sentences)
        size = len(self.vocabulary)
        scale = 0.5 / self.dim
        self._input = np.vstack(
            [
                _deterministic_init(self.vocabulary.token(i), self.dim, scale)
                for i in range(size)
            ]
        ) if size else np.zeros((0, self.dim))
        self._output = np.zeros((size, self.dim))

        pairs = self._skipgram_pairs(sentences)
        if pairs.size == 0:
            return self

        probabilities = self.vocabulary.negative_sampling_probabilities()
        rng = np.random.default_rng(self.seed)
        # The vocabulary is tiny (one token per label combination), so a
        # large chunk would fold hundreds of same-token gradients into one
        # stale-point step and diverge; modest chunks plus the norm cap in
        # _train_chunk keep SGNS stable at any corpus size.
        chunk_size = 512
        for epoch in range(self.epochs):
            order = rng.permutation(len(pairs))
            rate = self.learning_rate * (1.0 - epoch / max(1, self.epochs))
            rate = max(rate, self.learning_rate * 0.1)
            for start in range(0, len(order), chunk_size):
                chunk = pairs[order[start : start + chunk_size]]
                self._train_chunk(chunk, probabilities, rng, rate)
        return self

    def _skipgram_pairs(self, sentences: Sequence[list[str]]) -> np.ndarray:
        pairs: list[tuple[int, int]] = []
        for sentence in sentences:
            indices = [
                self.vocabulary.index(token) for token in sentence if token
            ]
            indices = [i for i in indices if i is not None]
            for position, center in enumerate(indices):
                low = max(0, position - self.window)
                high = min(len(indices), position + self.window + 1)
                for other in range(low, high):
                    if other != position:
                        pairs.append((center, indices[other]))
        return np.array(pairs, dtype=np.int64) if pairs else np.zeros((0, 2), np.int64)

    def _train_chunk(
        self,
        chunk: np.ndarray,
        probabilities: np.ndarray,
        rng: np.random.Generator,
        rate: float,
    ) -> None:
        centers = chunk[:, 0]
        positives = chunk[:, 1]
        negatives = rng.choice(
            len(probabilities), size=(len(chunk), self.negative), p=probabilities
        )

        center_vectors = self._input[centers]  # (B, d)

        # Positive updates: maximise sigma(w . c_pos).
        pos_vectors = self._output[positives]
        pos_scores = _sigmoid(np.einsum("bd,bd->b", center_vectors, pos_vectors))
        pos_gradient = (1.0 - pos_scores)[:, None]  # (B, 1)
        input_gradient = pos_gradient * pos_vectors
        np.add.at(self._output, positives, rate * pos_gradient * center_vectors)

        # Negative updates: minimise sigma(w . c_neg).
        neg_vectors = self._output[negatives]  # (B, k, d)
        neg_scores = _sigmoid(
            np.einsum("bd,bkd->bk", center_vectors, neg_vectors)
        )
        neg_gradient = -neg_scores[:, :, None]  # (B, k, 1)
        input_gradient = input_gradient + np.einsum(
            "bkd,bk->bd", neg_vectors, neg_gradient[:, :, 0]
        )
        flat_negatives = negatives.reshape(-1)
        flat_updates = (
            rate * neg_gradient.reshape(-1, 1) * np.repeat(
                center_vectors, self.negative, axis=0
            )
        )
        np.add.at(self._output, flat_negatives, flat_updates)

        np.add.at(self._input, centers, rate * input_gradient)

        # Cap row norms: only directions matter downstream (vectors are
        # normalised before use), and the cap prevents the positive-feedback
        # blow-up a tiny vocabulary is prone to.
        for matrix in (self._input, self._output):
            norms = np.linalg.norm(matrix, axis=1)
            oversized = norms > _MAX_ROW_NORM
            if np.any(oversized):
                matrix[oversized] *= (_MAX_ROW_NORM / norms[oversized])[:, None]

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def vector(self, token: str) -> np.ndarray:
        """Embedding of ``token``.

        The empty token (unlabeled element) maps to the zero vector; a token
        never seen in training maps to its deterministic initial vector so
        unseen-but-identical label sets still agree across models.
        """
        if not token:
            return np.zeros(self.dim)
        index = self.vocabulary.index(token)
        if index is None or self._input is None:
            return _deterministic_init(token, self.dim, 0.5 / self.dim)
        return self._input[index].copy()

    def initial_vector(self, token: str) -> np.ndarray:
        """The deterministic content-derived init vector of ``token``.

        Useful as an *identity* component: distinct tokens get near-
        orthogonal vectors regardless of how training moved them, while
        identical tokens always agree (even across separately trained
        models, e.g. incremental batches).
        """
        if not token:
            return np.zeros(self.dim)
        return _deterministic_init(token, self.dim, 0.5 / self.dim)

    def vectors(self, tokens: Iterable[str]) -> np.ndarray:
        """Stacked embeddings for ``tokens`` (rows follow input order)."""
        return np.vstack([self.vector(token) for token in tokens])

    def similarity(self, left: str, right: str) -> float:
        """Cosine similarity between two tokens' embeddings."""
        u, v = self.vector(left), self.vector(right)
        norm = float(np.linalg.norm(u) * np.linalg.norm(v))
        if norm == 0.0:
            return 0.0
        return float(np.dot(u, v) / norm)

    def __contains__(self, token: str) -> bool:
        return token in self.vocabulary

"""Building the label-token corpus a discovery run trains Word2Vec on.

Section 4.1: "We train a Word2Vec model on the set of node and edge labels
observed in the dataset to ensure consistent semantic embeddings across
identical label sets."  The co-occurrence signal comes from the graph
structure itself: every edge contributes the sentence

    [source-label-token, edge-label-token, target-label-token]

so labels that appear in the same relationships end up with nearby
embeddings.  Unlabeled endpoints (empty tokens) are dropped from sentences;
isolated labelled nodes still register their token through single-token
sentences so every observed label set owns an embedding.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.graph.model import PropertyGraph

if TYPE_CHECKING:
    from repro.graph.columnar import ElementBatch


def build_label_corpus(
    graph: PropertyGraph,
    max_sentences: int | None = 50_000,
    seed: int = 0,
) -> list[list[str]]:
    """Label-token sentences for ``graph``.

    When the graph has more edges than ``max_sentences`` a uniform random
    subsample (deterministic under ``seed``) keeps training time bounded;
    the vocabulary still registers every node token via the single-token
    sentences, so no label set loses its embedding.
    """
    sentences: list[list[str]] = []
    seen_tokens: set[str] = set()
    for node in graph.nodes():
        token = node.token
        if token and token not in seen_tokens:
            seen_tokens.add(token)
            sentences.append([token])

    edge_sentences: list[list[str]] = []
    for edge in graph.edges():
        source_token = graph.node(edge.source_id).token
        target_token = graph.node(edge.target_id).token
        sentence = [t for t in (source_token, edge.token, target_token) if t]
        if len(sentence) >= 2:
            edge_sentences.append(sentence)
        elif len(sentence) == 1 and sentence[0] not in seen_tokens:
            seen_tokens.add(sentence[0])
            sentences.append(sentence)

    if max_sentences is not None and len(edge_sentences) > max_sentences:
        rng = np.random.default_rng(seed)
        chosen = rng.choice(len(edge_sentences), size=max_sentences, replace=False)
        edge_sentences = [edge_sentences[i] for i in sorted(chosen)]
    sentences.extend(edge_sentences)
    return sentences


def build_label_corpus_columnar(
    batch: "ElementBatch",
    max_sentences: int | None = 50_000,
    seed: int = 0,
) -> list[list[str]]:
    """Label-token sentences for a columnar :class:`ElementBatch`.

    Produces exactly the sentences :func:`build_label_corpus` yields for
    the materialised batch (same order, same subsample), reading interned
    token-id columns instead of walking element objects: node sentences
    come from the distinct token ids in first-appearance order, edge
    sentences from one object-array gather per endpoint column.
    """
    interner = batch.interner
    sentences: list[list[str]] = []
    seen_tokens: set[str] = set()
    node_sids = batch.nodes.token_sids
    if len(node_sids):
        distinct, first_row = np.unique(node_sids, return_index=True)
        for sid in distinct[np.argsort(first_row, kind="stable")].tolist():
            token = interner.string(int(sid))
            if token and token not in seen_tokens:
                seen_tokens.add(token)
                sentences.append([token])

    edge_sentences: list[list[str]] = []
    edges = batch.edges
    if len(edges):

        def strings_of(sids: np.ndarray) -> list[str]:
            distinct, inverse = np.unique(sids, return_inverse=True)
            table = np.array(
                [interner.string(int(sid)) for sid in distinct], dtype=object
            )
            return table[inverse].tolist()

        triples = zip(
            strings_of(edges.src_token_sids),
            strings_of(edges.token_sids),
            strings_of(edges.tgt_token_sids),
        )
        for source_token, edge_token, target_token in triples:
            sentence = [
                t for t in (source_token, edge_token, target_token) if t
            ]
            if len(sentence) >= 2:
                edge_sentences.append(sentence)
            elif len(sentence) == 1 and sentence[0] not in seen_tokens:
                seen_tokens.add(sentence[0])
                sentences.append(sentence)

    if max_sentences is not None and len(edge_sentences) > max_sentences:
        rng = np.random.default_rng(seed)
        chosen = rng.choice(len(edge_sentences), size=max_sentences, replace=False)
        edge_sentences = [edge_sentences[i] for i in sorted(chosen)]
    sentences.extend(edge_sentences)
    return sentences

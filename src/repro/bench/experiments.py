"""Experiment drivers for every paper table and figure.

Each function returns plain data (rows / dicts); the ``benchmarks/``
files format and print them.  Grids follow section 5: noise in
{0, 10, 20, 30, 40} %, label availability in {100, 50, 0} %, the four
methods, and the eight Table 2 datasets.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bench.harness import (
    AVAILABILITIES,
    NOISE_LEVELS,
    CaseResult,
    all_methods,
    evaluate_on,
)
from repro.core.config import AdaptiveOverrides, ClusteringMethod, PGHiveConfig
from repro.core.datatype_inference import sample_values
from repro.core.pipeline import PGHive
from repro.datasets.base import GeneratedDataset
from repro.datasets.noise import apply_noise
from repro.datasets.registry import load_all
from repro.eval.ranking import NemenyiResult, nemenyi_test
from repro.eval.sampling_error import bin_errors, sampling_error
from repro.graph.batching import split_into_batches
from repro.util import derive_seed


def load_bench_datasets(scale: float, seed: int = 0) -> list[GeneratedDataset]:
    """All eight datasets at bench scale."""
    return load_all(scale=scale, seed=seed)


# ----------------------------------------------------------------------
# Figures 3, 4, 5: the quality/efficiency grid
# ----------------------------------------------------------------------
@dataclass
class QualityGrid:
    """All case results of the section 5 grid."""

    cases: list[CaseResult] = field(default_factory=list)

    def select(
        self,
        dataset: str | None = None,
        noise: float | None = None,
        availability: float | None = None,
        method: str | None = None,
    ) -> list[CaseResult]:
        """Filter cases by any combination of coordinates."""
        picked = []
        for case in self.cases:
            if dataset is not None and case.dataset != dataset:
                continue
            if noise is not None and case.noise != noise:
                continue
            if availability is not None and case.availability != availability:
                continue
            if method is not None and case.method != method:
                continue
            picked.append(case)
        return picked

    def method_names(self) -> list[str]:
        """Distinct method names in first-seen order."""
        seen: dict[str, None] = {}
        for case in self.cases:
            seen.setdefault(case.method, None)
        return list(seen)


def run_quality_grid(
    datasets: list[GeneratedDataset],
    noise_levels: tuple[float, ...] = NOISE_LEVELS,
    availabilities: tuple[float, ...] = AVAILABILITIES,
    seed: int = 0,
) -> QualityGrid:
    """Run every method over the full noise x availability grid."""
    grid = QualityGrid()
    for dataset in datasets:
        for availability in availabilities:
            for noise in noise_levels:
                noisy = apply_noise(
                    dataset,
                    property_noise=noise,
                    label_availability=availability,
                    seed=derive_seed(seed, dataset.name, noise, availability),
                )
                for method in all_methods(seed=seed):
                    grid.cases.append(
                        evaluate_on(method, noisy, noise, availability)
                    )
    return grid


def figure3_ranking(grid: QualityGrid) -> tuple[NemenyiResult, NemenyiResult]:
    """Nemenyi analysis for nodes and edges (100 % labels, all noise).

    GMM is excluded from the edge analysis (it discovers no edge types),
    exactly as in the paper's Figure 3.
    """
    node_scores: dict[str, list[float]] = {}
    edge_scores: dict[str, list[float]] = {}
    for case in grid.select(availability=1.0):
        if case.node_f1 is not None:
            node_scores.setdefault(case.method, []).append(case.node_f1)
        if case.edge_f1 is not None:
            edge_scores.setdefault(case.method, []).append(case.edge_f1)
    return nemenyi_test(node_scores), nemenyi_test(edge_scores)


def figure4_series(
    grid: QualityGrid, kind: str = "nodes"
) -> list[tuple[str, float, str, list[float | None]]]:
    """(dataset, availability, method) -> F1 series over noise levels."""
    series = []
    datasets: dict[str, None] = {}
    for case in grid.cases:
        datasets.setdefault(case.dataset, None)
    for dataset in datasets:
        for availability in AVAILABILITIES:
            for method in grid.method_names():
                values: list[float | None] = []
                for noise in NOISE_LEVELS:
                    cases = grid.select(dataset, noise, availability, method)
                    if not cases or not cases[0].supported:
                        values.append(None)
                    else:
                        values.append(
                            cases[0].node_f1 if kind == "nodes" else cases[0].edge_f1
                        )
                if any(value is not None for value in values):
                    series.append((dataset, availability, method, values))
    return series


def figure5_series(
    grid: QualityGrid,
) -> list[tuple[str, str, list[float | None]]]:
    """(dataset, method) -> execution-seconds series over noise (100 % labels)."""
    series = []
    datasets: dict[str, None] = {}
    for case in grid.cases:
        datasets.setdefault(case.dataset, None)
    for dataset in datasets:
        for method in grid.method_names():
            values: list[float | None] = []
            for noise in NOISE_LEVELS:
                cases = grid.select(dataset, noise, 1.0, method)
                values.append(cases[0].seconds if cases and cases[0].supported else None)
            series.append((dataset, method, values))
    return series


def headline_summary(grid: QualityGrid) -> dict[str, float]:
    """The section 5 headline numbers derived from the grid."""
    def best_pg(case_list, attr):
        values = [
            getattr(c, attr)
            for c in case_list
            if c.method.startswith("PG-HIVE") and getattr(c, attr) is not None
        ]
        return max(values) if values else None

    node_gain, edge_gain = 0.0, 0.0
    speedup = 0.0
    datasets: dict[str, None] = {}
    for case in grid.cases:
        datasets.setdefault(case.dataset, None)
    for dataset in datasets:
        for noise in NOISE_LEVELS:
            cases = grid.select(dataset, noise, 1.0)
            pg_node = best_pg(cases, "node_f1")
            pg_edge = best_pg(cases, "edge_f1")
            for case in cases:
                if case.method.startswith("PG-HIVE") or not case.supported:
                    continue
                if pg_node is not None and case.node_f1 is not None:
                    node_gain = max(node_gain, pg_node - case.node_f1)
                if pg_edge is not None and case.edge_f1 is not None:
                    edge_gain = max(edge_gain, pg_edge - case.edge_f1)
                if case.method == "SchemI" and case.seconds:
                    pg_seconds = [
                        c.seconds
                        for c in cases
                        if c.method.startswith("PG-HIVE") and c.seconds
                    ]
                    if pg_seconds:
                        speedup = max(speedup, case.seconds / min(pg_seconds))
    return {
        "max_node_f1_gain": node_gain,
        "max_edge_f1_gain": edge_gain,
        "max_speedup_vs_schemi": speedup,
    }


# ----------------------------------------------------------------------
# Figure 6: parameter sensitivity vs the adaptive choice
# ----------------------------------------------------------------------
def figure6_heatmap(
    dataset: GeneratedDataset,
    table_counts: tuple[int, ...] = (5, 10, 20, 30, 40),
    alphas: tuple[float, ...] = (0.5, 1.0, 1.5, 2.0),
    kind: str = "nodes",
    seed: int = 0,
) -> dict:
    """F1 over a (T, alpha) grid plus the adaptive configuration's score."""
    from repro.eval.clustering_metrics import majority_f1

    truth = dataset.node_truth if kind == "nodes" else dataset.edge_truth

    def score(config: PGHiveConfig) -> float:
        result = PGHive(config).discover(dataset.graph)
        assignment = (
            result.node_assignments() if kind == "nodes" else result.edge_assignments()
        )
        return majority_f1(assignment, truth).macro_f1

    cells: dict[tuple[int, float], float] = {}
    for tables in table_counts:
        for alpha in alphas:
            overrides = AdaptiveOverrides(num_tables=tables, alpha=alpha)
            config = PGHiveConfig(
                method=ClusteringMethod.ELSH,
                post_processing=False,
                seed=seed,
                node_lsh=overrides,
                edge_lsh=overrides,
            )
            cells[(tables, alpha)] = score(config)

    adaptive_config = PGHiveConfig(
        method=ClusteringMethod.ELSH, post_processing=False, seed=seed
    )
    adaptive_result = PGHive(adaptive_config).discover(dataset.graph)
    adaptive_params = (
        adaptive_result.node_parameters
        if kind == "nodes"
        else adaptive_result.edge_parameters
    )
    assignment = (
        adaptive_result.node_assignments()
        if kind == "nodes"
        else adaptive_result.edge_assignments()
    )
    from repro.eval.clustering_metrics import majority_f1 as _f1

    return {
        "dataset": dataset.name,
        "cells": cells,
        "adaptive_f1": _f1(assignment, truth).macro_f1,
        "adaptive_T": adaptive_params.num_tables if adaptive_params else None,
        "adaptive_alpha": adaptive_params.alpha if adaptive_params else None,
        "adaptive_b": adaptive_params.bucket_length if adaptive_params else None,
    }


# ----------------------------------------------------------------------
# Figure 7: incremental execution time per batch
# ----------------------------------------------------------------------
def figure7_incremental(
    dataset: GeneratedDataset,
    method: ClusteringMethod,
    batch_count: int = 10,
    seed: int = 0,
) -> list[float]:
    """Per-batch processing seconds for a 10-batch random split."""
    from repro.core.incremental import IncrementalSchemaDiscovery

    batches = split_into_batches(dataset.graph, batch_count, seed=seed)
    config = PGHiveConfig(method=method, post_processing=False, seed=seed)
    engine = IncrementalSchemaDiscovery(config, schema_name=f"{dataset.name}-inc")
    seconds = []
    for batch in batches:
        report = engine.add_batch(batch)
        seconds.append(report.seconds)
    engine.finalize()
    return seconds


# ----------------------------------------------------------------------
# Figure 8: datatype-inference sampling error
# ----------------------------------------------------------------------
def figure8_sampling_errors(
    dataset: GeneratedDataset,
    method: ClusteringMethod,
    sample_fraction: float = 0.1,
    min_sample: int = 1000,
    seed: int = 0,
) -> dict[str, float]:
    """Figure 8 bins for one dataset under one clustering method.

    Discovery runs first (types gather their instances), then for every
    (type, property) the sampled inference is compared against the full
    scan with the section 5 error definition.
    """
    from repro.core.datatype_inference import collect_property_values

    config = PGHiveConfig(method=method, post_processing=False, seed=seed)
    result = PGHive(config).discover(dataset.graph)
    rng = np.random.default_rng(derive_seed(seed, "figure8", dataset.name))
    errors: list[float] = []
    for is_edge, types in (
        (False, result.schema.node_types()),
        (True, result.schema.edge_types()),
    ):
        for schema_type in types:
            for key in schema_type.properties:
                values = collect_property_values(
                    dataset.graph, schema_type, key, is_edge
                )
                if not values:
                    continue
                sampled = sample_values(values, sample_fraction, min_sample, rng)
                errors.append(sampling_error(values, sampled))
    return bin_errors(errors)

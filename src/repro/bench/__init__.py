"""Benchmark harness shared by the ``benchmarks/`` suite."""

from repro.bench.harness import (
    AVAILABILITIES,
    NOISE_LEVELS,
    CaseResult,
    PGHiveMethod,
    all_methods,
    bench_scale,
    evaluate_on,
    format_table,
)

__all__ = [
    "AVAILABILITIES",
    "CaseResult",
    "NOISE_LEVELS",
    "PGHiveMethod",
    "all_methods",
    "bench_scale",
    "evaluate_on",
    "format_table",
]

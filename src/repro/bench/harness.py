"""Shared bench harness: method adapters, grid runners, table formatting.

Every ``benchmarks/bench_*.py`` file drives one paper table or figure
through this module, so the benches stay declarative.  All experiment
sizes respect the ``PGHIVE_SCALE`` environment variable (a float
multiplier on dataset node counts; default keeps the full suite in the
low minutes on one machine).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.baselines.base import (
    MethodResult,
    SchemaDiscoveryMethod,
    UnsupportedGraphError,
)
from repro.baselines.gmm_schema import GMMSchema
from repro.baselines.schemi import SchemI
from repro.core.config import ClusteringMethod, PGHiveConfig
from repro.core.pipeline import PGHive
from repro.datasets.base import GeneratedDataset
from repro.eval.clustering_metrics import majority_f1
from repro.graph.model import PropertyGraph

#: Paper noise grid (section 5).
NOISE_LEVELS: tuple[float, ...] = (0.0, 0.1, 0.2, 0.3, 0.4)
#: Paper label-availability grid (section 5).
AVAILABILITIES: tuple[float, ...] = (1.0, 0.5, 0.0)


def bench_scale(default: float = 1.0) -> float:
    """Dataset scale multiplier from ``PGHIVE_SCALE`` (default 1.0)."""
    raw = os.environ.get("PGHIVE_SCALE", "")
    if not raw:
        return default
    try:
        value = float(raw)
    except ValueError:
        return default
    return value if value > 0 else default


class PGHiveMethod(SchemaDiscoveryMethod):
    """Adapter exposing PG-HIVE under the common method interface.

    Post-processing is disabled: the Figure 4/5 comparison measures "time
    until type discovery", and the baselines produce no constraints either.
    """

    requires_full_labels = False
    discovers_edges = True

    def __init__(self, method: ClusteringMethod, seed: int = 0, **overrides):
        self.name = f"PG-HIVE-{'ELSH' if method is ClusteringMethod.ELSH else 'MinHash'}"
        config_kwargs = {"method": method, "post_processing": False, "seed": seed}
        config_kwargs.update(overrides)
        self.config = PGHiveConfig(**config_kwargs)

    def _run(self, graph: PropertyGraph) -> MethodResult:
        result = PGHive(self.config).discover(graph)
        return MethodResult(
            method=self.name,
            node_assignment=result.node_assignments(),
            edge_assignment=result.edge_assignments(),
            seconds=0.0,
            extras={
                "node_clusters": result.node_cluster_count,
                "edge_clusters": result.edge_cluster_count,
                "node_parameters": result.node_parameters,
                "edge_parameters": result.edge_parameters,
            },
        )


def all_methods(seed: int = 0) -> list[SchemaDiscoveryMethod]:
    """The four compared methods in the paper's order of appearance."""
    return [
        PGHiveMethod(ClusteringMethod.ELSH, seed=seed),
        PGHiveMethod(ClusteringMethod.MINHASH, seed=seed),
        GMMSchema(seed=seed),
        SchemI(),
    ]


@dataclass
class CaseResult:
    """One (dataset, noise, availability, method) evaluation record."""

    dataset: str
    noise: float
    availability: float
    method: str
    node_f1: float | None
    edge_f1: float | None
    seconds: float | None
    supported: bool = True
    extras: dict = field(default_factory=dict)


def evaluate_on(
    method: SchemaDiscoveryMethod,
    dataset: GeneratedDataset,
    noise: float = 0.0,
    availability: float = 1.0,
) -> CaseResult:
    """Run one method on one (possibly noisy) dataset and score it."""
    try:
        outcome = method.run(dataset.graph)
    except UnsupportedGraphError:
        return CaseResult(
            dataset=dataset.name,
            noise=noise,
            availability=availability,
            method=method.name,
            node_f1=None,
            edge_f1=None,
            seconds=None,
            supported=False,
        )
    node_f1 = majority_f1(outcome.node_assignment, dataset.node_truth).macro_f1
    edge_f1 = None
    if method.discovers_edges and outcome.edge_assignment is not None:
        edge_f1 = majority_f1(outcome.edge_assignment, dataset.edge_truth).macro_f1
    return CaseResult(
        dataset=dataset.name,
        noise=noise,
        availability=availability,
        method=method.name,
        node_f1=node_f1,
        edge_f1=edge_f1,
        seconds=outcome.seconds,
        extras=outcome.extras,
    )


# ----------------------------------------------------------------------
# Table formatting
# ----------------------------------------------------------------------
def format_table(headers: list[str], rows: list[list], title: str = "") -> str:
    """Plain ASCII table (the shape the paper's tables/series print in)."""
    rendered = [[_cell(value) for value in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rendered), 1)
        if rendered
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in rendered:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _cell(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)

"""PG-HIVE: hybrid incremental schema discovery for property graphs.

Reproduction of Sideri et al., EDBT 2026 (arXiv:2512.01092).  The public
API in one import::

    from repro import ChangeSet, SchemaSession, PropertyGraph, Node, Edge

    session = SchemaSession()
    session.subscribe(lambda event: print(event.diff.summary()))
    session.apply(ChangeSet.inserts(nodes=[...], edges=[...]))
    print(session.schema().summary())       # mid-stream snapshot
    session.checkpoint("discovery.ckpt")    # resume later, anywhere

One-shot discovery stays one line (``PGHive().discover(graph)``); it and
every other historical entry point are adapters over the session.  For
partitioned/parallel ingestion, ``ShardedSchemaSession(n_shards=4)``
accepts the same change feed and serves the same snapshots from N
mergeable per-shard sessions (optionally in worker processes).
"""

from repro.core.config import AdaptiveOverrides, ClusteringMethod, PGHiveConfig
from repro.core.incremental import IncrementalSchemaDiscovery
from repro.core.maintenance import MaintainedSchema
from repro.core.pipeline import DiscoveryResult, PGHive
from repro.core.recovery import DurableSchemaSession, DurableShardedSchemaSession
from repro.core.session import ChangeReport, DiffEvent, SchemaSession
from repro.core.sharding import ShardedChangeReport, ShardedSchemaSession
from repro.core.state import DiscoveryState
from repro.graph.changes import ChangeSet, HashPartitioner, changesets_from_elements
from repro.errors import DegradedModeWarning
from repro.graph.model import Edge, Node, PropertyGraph, label_token
from repro.graph.store import GraphStore
from repro.lsh.base import GroupingRule
from repro.schema.cardinality import Cardinality
from repro.schema.datatypes import DataType
from repro.schema.diff import SchemaDiff, diff_schemas
from repro.schema.model import EdgeType, NodeType, SchemaGraph, schema_fingerprint
from repro.schema.validation import ValidationMode, validate_graph

__version__ = "1.2.0"

__all__ = [
    "AdaptiveOverrides",
    "Cardinality",
    "ChangeReport",
    "ChangeSet",
    "ClusteringMethod",
    "DataType",
    "DegradedModeWarning",
    "DiffEvent",
    "DiscoveryResult",
    "DiscoveryState",
    "DurableSchemaSession",
    "DurableShardedSchemaSession",
    "Edge",
    "EdgeType",
    "GraphStore",
    "GroupingRule",
    "HashPartitioner",
    "IncrementalSchemaDiscovery",
    "MaintainedSchema",
    "Node",
    "NodeType",
    "PGHive",
    "PGHiveConfig",
    "PropertyGraph",
    "SchemaDiff",
    "SchemaGraph",
    "SchemaSession",
    "ShardedChangeReport",
    "ShardedSchemaSession",
    "ValidationMode",
    "changesets_from_elements",
    "diff_schemas",
    "label_token",
    "schema_fingerprint",
    "validate_graph",
    "__version__",
]

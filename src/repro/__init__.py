"""PG-HIVE: hybrid incremental schema discovery for property graphs.

Reproduction of Sideri et al., EDBT 2026 (arXiv:2512.01092).  The public
API in one import::

    from repro import PGHive, PGHiveConfig, PropertyGraph, Node, Edge

    graph = PropertyGraph("example")
    ...
    result = PGHive().discover(graph)
    print(result.to_pg_schema())
"""

from repro.core.config import AdaptiveOverrides, ClusteringMethod, PGHiveConfig
from repro.core.incremental import IncrementalSchemaDiscovery
from repro.core.pipeline import DiscoveryResult, PGHive
from repro.graph.model import Edge, Node, PropertyGraph, label_token
from repro.graph.store import GraphStore
from repro.lsh.base import GroupingRule
from repro.schema.cardinality import Cardinality
from repro.schema.datatypes import DataType
from repro.schema.model import EdgeType, NodeType, SchemaGraph
from repro.schema.validation import ValidationMode, validate_graph

__version__ = "1.0.0"

__all__ = [
    "AdaptiveOverrides",
    "Cardinality",
    "ClusteringMethod",
    "DataType",
    "DiscoveryResult",
    "Edge",
    "EdgeType",
    "GraphStore",
    "GroupingRule",
    "IncrementalSchemaDiscovery",
    "Node",
    "NodeType",
    "PGHive",
    "PGHiveConfig",
    "PropertyGraph",
    "SchemaGraph",
    "ValidationMode",
    "label_token",
    "validate_graph",
    "__version__",
]

"""MinHash LSH over token sets (Broder [21, 22]; Leskovec et al. [64]).

The probability that one min-wise hash agrees on two sets equals their
Jaccard similarity, so signatures of ``T`` hash functions estimate J(A, B)
by their agreement rate (section 4.2).  Banding (``band_size`` rows per
band) gives the classic S-curve when combined with ``GroupingRule.OR``;
``GroupingRule.AND`` requires the full signature to agree.

Hash functions are universal hashes ``(a * x + b) mod p`` over token ids
drawn from a shared, process-wide stable token universe (tokens are hashed
by content, so the same token set signs identically in every batch).
"""

from __future__ import annotations

import hashlib
from collections.abc import Iterable, Sequence

import numpy as np

from repro.errors import ClusteringError, ConfigurationError
from repro.lsh.base import GroupingRule, group

_MERSENNE_PRIME = (1 << 61) - 1
#: Bucket value reserved for the empty set so all empty sets collide.
_EMPTY_SENTINEL = _MERSENNE_PRIME


def _token_id(token: str) -> int:
    """Stable 61-bit integer id of a token (content-derived)."""
    digest = hashlib.blake2b(token.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little") % _MERSENNE_PRIME


class MinHashLSH:
    """Min-wise hashing of token sets with optional banding."""

    def __init__(
        self,
        num_tables: int,
        band_size: int = 1,
        seed: int = 0,
    ) -> None:
        if num_tables < 1:
            raise ConfigurationError(f"num_tables must be >= 1, got {num_tables}")
        if band_size < 1:
            raise ConfigurationError(f"band_size must be >= 1, got {band_size}")
        self.num_tables = int(num_tables)
        self.band_size = int(band_size)
        self.seed = seed
        rng = np.random.default_rng(seed)
        total = self.num_tables * self.band_size
        self._a = rng.integers(1, _MERSENNE_PRIME, total, dtype=np.int64)
        self._b = rng.integers(0, _MERSENNE_PRIME, total, dtype=np.int64)

    @property
    def total_hashes(self) -> int:
        """Number of min-wise hash functions (tables * band size)."""
        return self.num_tables * self.band_size

    def signature(self, tokens: Iterable[str]) -> np.ndarray:
        """Raw minhash signature of one token set, shape ``(T*r,)``."""
        ids = np.array([_token_id(t) for t in set(tokens)], dtype=np.int64)
        if ids.size == 0:
            return np.full(self.total_hashes, _EMPTY_SENTINEL, dtype=np.int64)
        # (H, n): h_i(x) = (a_i * x + b_i) mod p, then min over the set.
        hashed = (
            self._a[:, None].astype(object) * ids[None, :].astype(object)
            + self._b[:, None].astype(object)
        ) % _MERSENNE_PRIME
        return np.min(hashed.astype(np.int64), axis=1)

    def signatures(self, token_sets: Sequence[Iterable[str]]) -> np.ndarray:
        """Banded signatures for many sets, shape ``(n, T)``.

        Each band's ``band_size`` minhashes are folded into a single stable
        value so grouping rules operate on one column per table.  Identical
        token sets share one signature computation: distinct structural
        patterns are few even when elements number in the millions.
        """
        if len(token_sets) == 0:
            return np.zeros((0, self.num_tables), dtype=np.int64)
        cache: dict[frozenset[str], np.ndarray] = {}
        rows: list[np.ndarray] = []
        for tokens in token_sets:
            key = frozenset(tokens)
            cached = cache.get(key)
            if cached is None:
                cached = self.signature(key)
                cache[key] = cached
            rows.append(cached)
        raw = np.vstack(rows)
        if self.band_size == 1:
            return raw
        count = raw.shape[0]
        bands = raw.reshape(count, self.num_tables, self.band_size)
        mixed = np.zeros((count, self.num_tables), dtype=np.int64)
        for position in range(self.band_size):
            mixed = (
                mixed * np.int64(1_000_003) + bands[:, :, position]
            ) % _MERSENNE_PRIME
        return mixed

    def cluster(
        self,
        token_sets: Sequence[Iterable[str]],
        rule: GroupingRule = GroupingRule.AND,
    ) -> list[list[int]]:
        """Group indices of ``token_sets`` under the chosen rule."""
        signatures = self.signatures(token_sets)
        if signatures.size == 0:
            return []
        return group(signatures, rule)

    def estimate_jaccard(
        self, left: Iterable[str], right: Iterable[str]
    ) -> float:
        """Signature-agreement estimate of J(left, right)."""
        left_signature = self.signature(left)
        right_signature = self.signature(right)
        return float(np.mean(left_signature == right_signature))

    def __repr__(self) -> str:
        return (
            f"MinHashLSH(T={self.num_tables}, r={self.band_size}, "
            f"H={self.total_hashes})"
        )


def exact_jaccard(left: Iterable[str], right: Iterable[str]) -> float:
    """Exact Jaccard similarity of two token iterables (for tests)."""
    left_set, right_set = set(left), set(right)
    if not left_set and not right_set:
        return 1.0
    return len(left_set & right_set) / len(left_set | right_set)

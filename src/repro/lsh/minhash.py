"""MinHash LSH over token sets (Broder [21, 22]; Leskovec et al. [64]).

The probability that one min-wise hash agrees on two sets equals their
Jaccard similarity, so signatures of ``T`` hash functions estimate J(A, B)
by their agreement rate (section 4.2).  Banding (``band_size`` rows per
band) gives the classic S-curve when combined with ``GroupingRule.OR``;
``GroupingRule.AND`` requires the full signature to agree.

Hash functions are universal hashes ``(a * x + b) mod p`` over token ids
drawn from a shared, process-wide stable token universe (tokens are hashed
by content, so the same token set signs identically in every batch).

The hot path is fully vectorized: the Mersenne-prime modular multiply runs
on ``uint64`` arrays via 32-bit limb decomposition (no Python big-int
objects), all distinct token sets of a batch are hashed in one NumPy pass
(:meth:`MinHashLSH.signatures_batch`), and two caches make incremental
streams cheap -- a process-wide token-id cache (token ids are content
derived, so they are valid across every instance) and a per-instance
signature cache keyed by frozen token set (signatures depend on the
instance's hash coefficients).  Both caches are bounded by the number of
*distinct* tokens / structural patterns, which stays small even when
elements number in the millions.
"""

from __future__ import annotations

import hashlib
import importlib.util
import threading
from collections.abc import Iterable, Sequence
from itertools import chain

import numpy as np

from repro.errors import ClusteringError, ConfigurationError  # noqa: F401 (re-export)
from repro.lsh.base import GroupingRule, group

_MERSENNE_PRIME = (1 << 61) - 1
#: Bucket value reserved for the empty set so all empty sets collide.
_EMPTY_SENTINEL = _MERSENNE_PRIME

#: Process-wide token -> 61-bit id cache (content-derived, instance-agnostic).
_TOKEN_ID_CACHE: dict[str, int] = {}

_P61 = np.uint64(_MERSENNE_PRIME)
_MASK29 = np.uint64((1 << 29) - 1)
_MASK32 = np.uint64((1 << 32) - 1)
#: Max elements per (hashes x token-occurrences) kernel chunk (~32 MiB).
_CHUNK_BUDGET = 1 << 22


def _token_id(token: str) -> int:
    """Stable 61-bit integer id of a token (content-derived, cached)."""
    cached = _TOKEN_ID_CACHE.get(token)
    if cached is None:
        digest = hashlib.blake2b(token.encode("utf-8"), digest_size=8).digest()
        cached = int.from_bytes(digest, "little") % _MERSENNE_PRIME
        _TOKEN_ID_CACHE[token] = cached
    return cached


def token_content_id(token: str) -> int:
    """Public alias of the process-wide content-derived token id.

    The columnar :class:`~repro.graph.columnar.Interner` shares this cache
    so pre-interned token-id arrays handed to
    :meth:`MinHashLSH.signatures_batch` sign bit-identically to the string
    path.
    """
    return _token_id(token)


def _affine_mod_p61(a: np.ndarray, x: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Exact ``(a * x + b) mod (2^61 - 1)`` on ``uint64`` arrays.

    The 128-bit product is assembled from 32-bit limbs and folded with
    ``2^61 === 1 (mod p)``: ``a*x = hh*2^64 + mid*2^32 + ll`` where
    ``hh < 2^58``, ``mid < 2^62`` and ``ll < 2^64``, so the pre-reduction
    sum stays below ``3 * 2^61 + 2^34``; adding ``b < 2^61`` keeps the
    total under ``2^63`` -- no overflow, no Python objects, and ``b``
    folds in before the single (expensive) modulo.
    """
    a_hi = a >> np.uint64(32)
    a_lo = a & _MASK32
    x_hi = x >> np.uint64(32)
    x_lo = x & _MASK32
    hh = a_hi * x_hi
    mid = a_hi * x_lo + a_lo * x_hi
    ll = a_lo * x_lo
    # 2^64 === 8, mid*2^32 === (mid >> 29) + (mid mod 2^29)*2^32 (mod p).
    total = (
        (hh << np.uint64(3))
        + (mid >> np.uint64(29))
        + ((mid & _MASK29) << np.uint64(32))
        + (ll >> np.uint64(61))
        + (ll & _P61)
        + b
    )
    return total % _P61


def _mulmod_p61(a: np.ndarray, x: np.ndarray) -> np.ndarray:
    """Exact ``(a * x) mod (2^61 - 1)``; thin wrapper over the kernel."""
    return _affine_mod_p61(a, x, np.uint64(0))


# ----------------------------------------------------------------------
# Kernel selection: pure-numpy (mandatory fallback) vs compiled (numba)
# ----------------------------------------------------------------------
# The hot path factors into two kernels -- build the (U, H) hash table
# over the distinct tokens, then gather+min-reduce it over the (S, L)
# member matrix of each equal-length run.  Both have a pure-numpy
# implementation (the historical vectorized path) and an optional
# numba-jitted one; the jitted kernels fuse the limb arithmetic and the
# gather/min into single passes with no intermediate arrays, and are
# bit-identical by construction (same limb decomposition, same fold,
# and every value stays below 2^61, so uint64/int64 casts are exact).
#
# Selection happens once at import ("auto": numba when importable,
# numpy otherwise) and can be overridden process-wide through
# :func:`configure_minhash_kernel` (wired to
# ``PGHiveConfig.minhash_kernel`` when a pipeline or session is built).
def _numpy_hash_table(
    a: np.ndarray, b: np.ndarray, ids: np.ndarray
) -> np.ndarray:
    """(U, H) table of ``(a_h * id_u + b_h) mod p`` -- numpy kernel."""
    return _affine_mod_p61(a[None, :], ids[:, None], b[None, :])


def _numpy_gather_min(hashed: np.ndarray, columns: np.ndarray) -> np.ndarray:
    """Min-reduce hash-table rows over one (S, L) member matrix.

    Gathers one member column at a time: each step copies contiguous
    (S, H) rows, never a (S, L, H) temporary.
    """
    mins = hashed[columns[:, 0]]
    for member in range(1, columns.shape[1]):
        np.minimum(mins, hashed[columns[:, member]], out=mins)
    return mins.astype(np.int64)


def numba_available() -> bool:
    """True when the optional numba dependency is importable."""
    return importlib.util.find_spec("numba") is not None


_NUMBA_KERNELS: tuple | None = None
_NUMBA_LOCK = threading.Lock()


def _load_numba_kernels() -> tuple:
    """Compile (lazily, once) the jitted hash-table and gather kernels.

    Every arithmetic constant is a typed ``np.uint64``: numba promotes
    ``uint64 op int64`` to ``float64``, which would silently destroy
    bit-identity -- typed constants keep the whole expression in uint64.
    """
    global _NUMBA_KERNELS
    with _NUMBA_LOCK:
        if _NUMBA_KERNELS is not None:
            return _NUMBA_KERNELS
        import numba

        p61 = np.uint64(_MERSENNE_PRIME)
        mask29 = np.uint64((1 << 29) - 1)
        mask32 = np.uint64((1 << 32) - 1)
        u3 = np.uint64(3)
        u29 = np.uint64(29)
        u32 = np.uint64(32)
        u61 = np.uint64(61)

        @numba.njit(nogil=True, cache=False)
        def hash_table(a, b, ids):
            count, hashes = ids.shape[0], a.shape[0]
            out = np.empty((count, hashes), dtype=np.uint64)
            for u in range(count):
                x = ids[u]
                x_hi = x >> u32
                x_lo = x & mask32
                for h in range(hashes):
                    a_hi = a[h] >> u32
                    a_lo = a[h] & mask32
                    hh = a_hi * x_hi
                    mid = a_hi * x_lo + a_lo * x_hi
                    ll = a_lo * x_lo
                    total = (
                        (hh << u3)
                        + (mid >> u29)
                        + ((mid & mask29) << u32)
                        + (ll >> u61)
                        + (ll & p61)
                        + b[h]
                    )
                    out[u, h] = total % p61
            return out

        @numba.njit(nogil=True, cache=False)
        def gather_min(hashed, columns):
            count, length = columns.shape
            hashes = hashed.shape[1]
            out = np.empty((count, hashes), dtype=np.int64)
            for s in range(count):
                row = hashed[columns[s, 0]]
                for h in range(hashes):
                    out[s, h] = np.int64(row[h])
                for member in range(1, length):
                    other = hashed[columns[s, member]]
                    for h in range(hashes):
                        value = np.int64(other[h])
                        if value < out[s, h]:
                            out[s, h] = value
            return out

        _NUMBA_KERNELS = (hash_table, gather_min)
    return _NUMBA_KERNELS


_KERNEL_CHOICES = ("auto", "numpy", "numba")
_ACTIVE_KERNEL = "numba" if numba_available() else "numpy"


def configure_minhash_kernel(choice: str = "auto") -> str:
    """Select the process-wide MinHash kernel; returns the active one.

    ``"auto"`` picks the compiled kernel when numba is importable and
    the pure-numpy fallback otherwise; ``"numpy"``/``"numba"`` force a
    path (forcing ``"numba"`` without numba raises
    :class:`ConfigurationError`).  Both kernels are bit-identical, so
    switching mid-process never invalidates cached signatures.
    """
    global _ACTIVE_KERNEL
    if choice not in _KERNEL_CHOICES:
        raise ConfigurationError(
            f"minhash kernel must be one of {_KERNEL_CHOICES}, got {choice!r}"
        )
    if choice == "auto":
        resolved = "numba" if numba_available() else "numpy"
    else:
        if choice == "numba" and not numba_available():
            raise ConfigurationError(
                "minhash_kernel='numba' requires the optional numba "
                "dependency, which is not importable; install numba or "
                "use 'auto'/'numpy'"
            )
        resolved = choice
    _ACTIVE_KERNEL = resolved
    return _ACTIVE_KERNEL


def active_minhash_kernel() -> str:
    """The kernel the next signature computation will use."""
    return _ACTIVE_KERNEL


def _hash_table(a: np.ndarray, b: np.ndarray, ids: np.ndarray) -> np.ndarray:
    if _ACTIVE_KERNEL == "numba":
        return _load_numba_kernels()[0](a, b, ids)
    return _numpy_hash_table(a, b, ids)


def _gather_min(hashed: np.ndarray, columns: np.ndarray) -> np.ndarray:
    if _ACTIVE_KERNEL == "numba":
        return _load_numba_kernels()[1](
            hashed, np.ascontiguousarray(columns)
        )
    return _numpy_gather_min(hashed, columns)


class MinHashLSH:
    """Min-wise hashing of token sets with optional banding."""

    def __init__(
        self,
        num_tables: int,
        band_size: int = 1,
        seed: int = 0,
    ) -> None:
        if num_tables < 1:
            raise ConfigurationError(f"num_tables must be >= 1, got {num_tables}")
        if band_size < 1:
            raise ConfigurationError(f"band_size must be >= 1, got {band_size}")
        self.num_tables = int(num_tables)
        self.band_size = int(band_size)
        self.seed = seed
        rng = np.random.default_rng(seed)
        total = self.num_tables * self.band_size
        self._a = rng.integers(1, _MERSENNE_PRIME, total, dtype=np.int64)
        self._b = rng.integers(0, _MERSENNE_PRIME, total, dtype=np.int64)
        self._a_u64 = self._a.astype(np.uint64)
        self._b_u64 = self._b.astype(np.uint64)
        #: raw signature per distinct token set seen by this instance.
        self._signature_cache: dict[frozenset[str], np.ndarray] = {}

    @property
    def total_hashes(self) -> int:
        """Number of min-wise hash functions (tables * band size)."""
        return self.num_tables * self.band_size

    # ------------------------------------------------------------------
    # Signatures
    # ------------------------------------------------------------------
    def _empty_signature(self) -> np.ndarray:
        return np.full(self.total_hashes, _EMPTY_SENTINEL, dtype=np.int64)

    def signature(self, tokens: Iterable[str]) -> np.ndarray:
        """Raw minhash signature of one token set, shape ``(T*r,)``."""
        key = tokens if isinstance(tokens, frozenset) else frozenset(tokens)
        cached = self._signature_cache.get(key)
        if cached is None:
            self._compute_signatures([key])
            cached = self._signature_cache[key]
        # Copy so no caller can mutate the cached row in place.
        return cached.copy()

    def signatures_batch(
        self,
        token_sets: Sequence[Iterable[str]],
        token_ids: Sequence[np.ndarray] | None = None,
    ) -> np.ndarray:
        """Raw signatures for many sets in one pass, shape ``(n, T*r)``.

        Every distinct token set is hashed exactly once per instance
        lifetime (results live in the signature cache, so a later batch
        containing a pattern seen earlier pays a dictionary lookup, not a
        hash computation), and all cache misses of the call are hashed in
        one vectorized kernel sweep.

        ``token_ids`` (columnar ingest fast path) supplies one pre-interned
        ``uint64`` id array per token set, aligned with ``token_sets``; the
        kernel then skips per-token re-tokenisation entirely.  Ids must be
        the content-derived 61-bit token ids of :func:`token_content_id`
        (the :class:`repro.graph.columnar.Interner` caches exactly these),
        so cached rows stay bit-identical to the string path.
        """
        keys = [
            tokens if isinstance(tokens, frozenset) else frozenset(tokens)
            for tokens in token_sets
        ]
        cache = self._signature_cache
        if token_ids is None:
            missing = [key for key in dict.fromkeys(keys) if key not in cache]
            ids_of_missing = None
        else:
            ids_by_key = dict(zip(keys, token_ids))
            missing = [key for key in ids_by_key if key not in cache]
            ids_of_missing = [ids_by_key[key] for key in missing]
        computed = (
            self._compute_signatures(missing, ids_of_missing)
            if missing
            else None
        )
        if computed is not None and len(missing) == len(keys):
            # Cold all-distinct batch: rows already in input order.
            return computed
        if not keys:
            return np.zeros((0, self.total_hashes), dtype=np.int64)
        return np.vstack([cache[key] for key in keys])

    def _compute_signatures(
        self,
        sets: list[frozenset[str]],
        ids_of: list[np.ndarray] | None = None,
    ) -> np.ndarray:
        """Hash ``sets`` (assumed distinct, uncached) into the cache.

        Returns the raw signatures in ``sets`` order, shape ``(n, T*r)``.
        ``ids_of``, when given, carries the pre-interned token ids of each
        set (skipping the per-token hash cache walk).
        """
        cache = self._signature_cache
        hashes = self.total_hashes
        out = np.empty((len(sets), hashes), dtype=np.int64)
        nonempty_positions = [
            position for position, token_set in enumerate(sets) if token_set
        ]
        if len(nonempty_positions) < len(sets):
            # All empty sets collide on the reserved sentinel row.
            out[
                [p for p, s in enumerate(sets) if not s]
            ] = _EMPTY_SENTINEL
            cache[frozenset()] = self._empty_signature()
        if not nonempty_positions:
            return out
        nonempty = [sets[position] for position in nonempty_positions]
        ids_nonempty = (
            None
            if ids_of is None
            else [ids_of[position] for position in nonempty_positions]
        )

        # Sort by set size so equal-length runs reshape into dense
        # (count, length) matrices -- the min then reduces one contiguous
        # axis with no per-set segment bookkeeping.
        if ids_nonempty is None:
            lengths = np.fromiter(
                map(len, nonempty), dtype=np.int64, count=len(nonempty)
            )
        else:
            lengths = np.fromiter(
                map(len, ids_nonempty), dtype=np.int64, count=len(ids_nonempty)
            )
        order = np.argsort(lengths, kind="stable")
        nonempty = [nonempty[i] for i in order]
        out_rows = np.asarray(nonempty_positions, dtype=np.intp)[order]
        sorted_lengths = lengths[order]

        if ids_nonempty is None:
            # Flatten once (in sorted order); map each occurrence to a
            # dense row of the distinct-token hash table (token ids come
            # from the process-wide cache, so blake2b runs once per
            # distinct token).
            tokens_flat = list(chain.from_iterable(nonempty))
            # Sorted: set iteration is hash-seed dependent; the min
            # reduction is order-insensitive but the dense row layout
            # should be reproducible run to run.
            distinct_tokens = sorted(set(tokens_flat))
            row_of = {token: row for row, token in enumerate(distinct_tokens)}
            unique_ids = np.fromiter(
                map(_token_id, distinct_tokens),
                dtype=np.uint64,
                count=len(distinct_tokens),
            )
            flat_rows = np.fromiter(
                map(row_of.__getitem__, tokens_flat),
                dtype=np.intp,
                count=len(tokens_flat),
            )
        else:
            # Pre-interned path: ids arrive as uint64 arrays, so the
            # distinct-token table falls out of one np.unique pass.
            flat_ids = np.concatenate(
                [
                    np.asarray(ids_nonempty[i], dtype=np.uint64)
                    for i in order
                ]
            )
            unique_ids, flat_rows = np.unique(flat_ids, return_inverse=True)

        # (U, H) table of h_i(x) over the distinct tokens, computed once;
        # row-major so every gather copies contiguous 8*H-byte rows.
        hashed_unique = _hash_table(self._a_u64, self._b_u64, unique_ids)
        occurrences_per_chunk = max(1, _CHUNK_BUDGET // hashes)

        run_starts = [
            0,
            *(np.flatnonzero(np.diff(sorted_lengths)) + 1),
            len(nonempty),
        ]
        flat_position = 0
        for run_index in range(len(run_starts) - 1):
            run_lo, run_hi = run_starts[run_index], run_starts[run_index + 1]
            length = int(sorted_lengths[run_lo])
            sets_per_chunk = max(1, occurrences_per_chunk // length)
            for lo in range(run_lo, run_hi, sets_per_chunk):
                hi = min(lo + sets_per_chunk, run_hi)
                span = (hi - lo) * length
                columns = flat_rows[
                    flat_position : flat_position + span
                ].reshape(hi - lo, length)
                flat_position += span
                mins = _gather_min(hashed_unique, columns)
                out[out_rows[lo:hi]] = mins
                cache.update(zip(nonempty[lo:hi], mins))
        return out

    def merge_cache_from(self, other: "MinHashLSH") -> "MinHashLSH":
        """Union ``other``'s signature cache into this instance's.

        Signatures are pure functions of the token set and the hash
        coefficients, and the coefficients are derived from
        ``(num_tables, band_size, seed)`` alone -- so two instances with
        equal parameters sign every set bit-identically and their caches
        can be unioned freely.  Rows already present are kept (they are
        equal by construction); ``other`` is not mutated.  Used by
        :meth:`repro.core.state.DiscoveryState.merge` to combine the
        per-shard pattern caches of a sharded session.
        """
        if (self.num_tables, self.band_size, self.seed) != (
            other.num_tables,
            other.band_size,
            other.seed,
        ):
            raise ConfigurationError(
                "cannot merge MinHash caches across parameter sets: "
                f"{self!r} (seed={self.seed}) vs {other!r} (seed={other.seed})"
            )
        for key, signature in other._signature_cache.items():
            self._signature_cache.setdefault(key, signature)
        return self

    @property
    def cache_size(self) -> int:
        """Number of distinct token sets in the signature cache."""
        return len(self._signature_cache)

    def fold_bands(self, raw: np.ndarray) -> np.ndarray:
        """Fold raw ``(n, T*r)`` signatures into banded ``(n, T)`` buckets.

        Each band's ``band_size`` minhashes are mixed into a single stable
        value so grouping rules operate on one column per table.
        """
        if self.band_size == 1:
            return raw
        count = raw.shape[0]
        bands = raw.reshape(count, self.num_tables, self.band_size)
        mixed = np.zeros((count, self.num_tables), dtype=np.int64)
        for position in range(self.band_size):
            mixed = (
                mixed * np.int64(1_000_003) + bands[:, :, position]
            ) % _MERSENNE_PRIME
        return mixed

    def signatures(
        self,
        token_sets: Sequence[Iterable[str]],
        token_ids: Sequence[np.ndarray] | None = None,
    ) -> np.ndarray:
        """Banded signatures for many sets, shape ``(n, T)``."""
        if len(token_sets) == 0:
            return np.zeros((0, self.num_tables), dtype=np.int64)
        return self.fold_bands(self.signatures_batch(token_sets, token_ids))

    # ------------------------------------------------------------------
    # Clustering and similarity
    # ------------------------------------------------------------------
    def cluster(
        self,
        token_sets: Sequence[Iterable[str]],
        rule: GroupingRule = GroupingRule.AND,
    ) -> list[list[int]]:
        """Group indices of ``token_sets`` under the chosen rule."""
        signatures = self.signatures(token_sets)
        if signatures.size == 0:
            return []
        return group(signatures, rule)

    def estimate_jaccard(
        self, left: Iterable[str], right: Iterable[str]
    ) -> float:
        """Signature-agreement estimate of J(left, right).

        Two empty sets both sign as the ``_EMPTY_SENTINEL`` row, so their
        estimate is 1.0, consistent with :func:`exact_jaccard`.
        """
        left_signature = self.signature(left)
        right_signature = self.signature(right)
        return float(np.mean(left_signature == right_signature))

    def __repr__(self) -> str:
        return (
            f"MinHashLSH(T={self.num_tables}, r={self.band_size}, "
            f"H={self.total_hashes})"
        )


def scalar_signature(lsh: MinHashLSH, tokens: Iterable[str]) -> np.ndarray:
    """Pre-vectorization reference signature (the seed implementation).

    Computes ``(a*x + b) mod p`` through object-dtype Python big-int
    arithmetic -- with an uncached blake2b per token, exactly as the
    original scalar hot path did.  Kept as the ground truth for
    equivalence tests and the throughput benchmark: the vectorized kernel
    must be bit-identical to this.
    """
    ids = np.array(
        [
            int.from_bytes(
                hashlib.blake2b(t.encode("utf-8"), digest_size=8).digest(),
                "little",
            )
            % _MERSENNE_PRIME
            for t in sorted(set(tokens))
        ],
        dtype=np.int64,
    )
    if ids.size == 0:
        return np.full(lsh.total_hashes, _EMPTY_SENTINEL, dtype=np.int64)
    hashed = (
        lsh._a[:, None].astype(object) * ids[None, :].astype(object)
        + lsh._b[:, None].astype(object)
    ) % _MERSENNE_PRIME
    return np.min(hashed.astype(np.int64), axis=1)


def exact_jaccard(left: Iterable[str], right: Iterable[str]) -> float:
    """Exact Jaccard similarity of two token iterables (for tests)."""
    left_set, right_set = set(left), set(right)
    if not left_set and not right_set:
        return 1.0
    return len(left_set & right_set) / len(left_set | right_set)

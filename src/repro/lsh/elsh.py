"""Euclidean LSH (ELSH): p-stable bucketed random projections.

Datar et al. [32] / Leskovec et al. [63]: each of the ``T`` tables hashes a
vector ``x`` to ``floor((a . x + offset) / b)`` with ``a ~ N(0, I)`` and
``offset ~ U[0, b)``.  The bucket length ``b`` controls granularity (larger
buckets -> more collisions, higher recall, lower precision); the table count
``T`` trades recall against runtime (section 4.2).

Optionally ``hashes_per_table > 1`` concatenates several projections per
table (the classic AND-within/OR-across construction) -- useful with
``GroupingRule.OR`` to keep transitive unions selective.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ClusteringError, ConfigurationError
from repro.lsh.base import GroupingRule, group, group_by_signature


class EuclideanLSH:
    """p-stable LSH for L2 distance over real vectors."""

    def __init__(
        self,
        bucket_length: float,
        num_tables: int,
        hashes_per_table: int = 1,
        seed: int = 0,
    ) -> None:
        if bucket_length <= 0:
            raise ConfigurationError(
                f"bucket_length must be > 0, got {bucket_length}"
            )
        if num_tables < 1:
            raise ConfigurationError(f"num_tables must be >= 1, got {num_tables}")
        if hashes_per_table < 1:
            raise ConfigurationError(
                f"hashes_per_table must be >= 1, got {hashes_per_table}"
            )
        self.bucket_length = float(bucket_length)
        self.num_tables = int(num_tables)
        self.hashes_per_table = int(hashes_per_table)
        self.seed = seed
        self._projections: np.ndarray | None = None  # (D, T*g)
        self._offsets: np.ndarray | None = None  # (T*g,)
        self._dimension: int | None = None

    @property
    def total_hashes(self) -> int:
        """Number of scalar hash functions (T * g)."""
        return self.num_tables * self.hashes_per_table

    def fit(self, dimension: int) -> "EuclideanLSH":
        """Draw the random projections for ``dimension``-sized vectors."""
        if dimension < 1:
            raise ConfigurationError(f"dimension must be >= 1, got {dimension}")
        rng = np.random.default_rng(self.seed)
        self._dimension = dimension
        self._projections = rng.standard_normal((dimension, self.total_hashes))
        self._offsets = rng.uniform(0.0, self.bucket_length, self.total_hashes)
        return self

    def _require_fitted(self, vectors: np.ndarray) -> np.ndarray:
        vectors = np.asarray(vectors, dtype=np.float64)
        if vectors.ndim != 2:
            raise ClusteringError(f"expected (n, D) matrix, got {vectors.shape}")
        if self._projections is None or self._dimension != vectors.shape[1]:
            self.fit(vectors.shape[1])
        return vectors

    def hash_values(self, vectors: np.ndarray) -> np.ndarray:
        """Raw per-hash bucket indices, shape ``(n, T*g)``."""
        vectors = self._require_fitted(vectors)
        projected = vectors @ self._projections + self._offsets
        return np.floor(projected / self.bucket_length).astype(np.int64)

    def signatures(self, vectors: np.ndarray) -> np.ndarray:
        """Per-table bucket identifiers, shape ``(n, T)``.

        With ``hashes_per_table == 1`` these are the raw bucket indices;
        otherwise each table's ``g`` values are folded into one stable
        64-bit identifier so the grouping rules see a single column per
        table.
        """
        raw = self.hash_values(vectors)
        if self.hashes_per_table == 1:
            return raw
        count = raw.shape[0]
        per_table = raw.reshape(count, self.num_tables, self.hashes_per_table)
        mixed = np.zeros((count, self.num_tables), dtype=np.int64)
        for position in range(self.hashes_per_table):
            mixed = mixed * np.int64(1_000_003) + per_table[:, :, position]
        return mixed

    def cluster(
        self, vectors: np.ndarray, rule: GroupingRule = GroupingRule.AND
    ) -> list[list[int]]:
        """Group row indices of ``vectors`` under the chosen rule."""
        return group(self.signatures(vectors), rule)

    def cluster_exact_buckets(self, vectors: np.ndarray) -> list[list[int]]:
        """AND-rule clusters (kept for symmetry with MinHashLSH)."""
        return group_by_signature(self.signatures(vectors))

    def __repr__(self) -> str:
        return (
            f"EuclideanLSH(b={self.bucket_length:.4g}, T={self.num_tables}, "
            f"g={self.hashes_per_table})"
        )

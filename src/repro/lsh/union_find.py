"""Disjoint-set forest used by the OR-rule LSH grouping."""

from __future__ import annotations


class UnionFind:
    """Union-find over the integers ``0..n-1`` with path compression."""

    def __init__(self, size: int) -> None:
        if size < 0:
            raise ValueError(f"size must be >= 0, got {size}")
        self._parent = list(range(size))
        self._rank = [0] * size
        self._components = size

    def __len__(self) -> int:
        return len(self._parent)

    @property
    def component_count(self) -> int:
        """Number of disjoint components."""
        return self._components

    def find(self, item: int) -> int:
        """Representative of ``item``'s component (with path compression)."""
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[item] != root:
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, left: int, right: int) -> bool:
        """Merge two components; True when a merge actually happened."""
        left_root, right_root = self.find(left), self.find(right)
        if left_root == right_root:
            return False
        if self._rank[left_root] < self._rank[right_root]:
            left_root, right_root = right_root, left_root
        self._parent[right_root] = left_root
        if self._rank[left_root] == self._rank[right_root]:
            self._rank[left_root] += 1
        self._components -= 1
        return True

    def connected(self, left: int, right: int) -> bool:
        """True when both items share a component."""
        return self.find(left) == self.find(right)

    def groups(self) -> list[list[int]]:
        """Members of each component, ordered by smallest member."""
        by_root: dict[int, list[int]] = {}
        for item in range(len(self._parent)):
            by_root.setdefault(self.find(item), []).append(item)
        return sorted(by_root.values(), key=lambda group: group[0])

"""Shared LSH machinery: grouping rules and collision-probability theory.

Both LSH families hash every element into ``T`` buckets (one per table).
Two rules turn bucket membership into clusters:

* ``GroupingRule.AND`` -- elements cluster together only when their *full*
  signature (all T buckets) agrees.  This over-fragments but never merges
  elements no table agrees on; PG-HIVE prefers it because Algorithm 2
  repairs fragmentation afterwards ("we prefer more separate types, as we
  are going to perform a merging step afterwards", section 4.2).
* ``GroupingRule.OR`` -- elements sharing a bucket in *any* table are
  unioned transitively (classic OR-construction).  Higher recall, but
  transitive unions can chain distinct types together.

The collision-probability helpers implement the formulas quoted in section
4.2 and back the Figure 6 discussion; they are exercised by tests rather
than by the pipeline itself.
"""

from __future__ import annotations

from enum import Enum

import numpy as np
from scipy import stats

from repro.lsh.union_find import UnionFind


class GroupingRule(Enum):
    """How per-table buckets combine into clusters."""

    AND = "and"
    OR = "or"


def group_by_signature(signatures: np.ndarray) -> list[list[int]]:
    """AND rule: rows with identical signatures form one cluster.

    Rows are keyed by their raw bytes in one ``tobytes`` pass -- hashing
    a fixed-size ``bytes`` object is several times cheaper than the seed
    path's per-row ``tuple(row.tolist())``.  The sort-based
    ``np.unique(axis=0, return_inverse=True)`` alternative loses to both
    at every scale measured (its void-dtype lexicographic sort dominates;
    see ``test_group_by_signature_throughput``, which pins contract and
    speed of all three).  Group order is by first member with members
    ascending, exactly like the original: first occurrences drive dict
    insertion order, so no final sort is needed.
    """
    count = len(signatures)
    if count == 0:
        return []
    data = np.ascontiguousarray(signatures)
    if data.dtype.kind == "f":
        # Collapse -0.0 onto +0.0 so byte equality matches the value
        # equality the tuple keys used (ELSH buckets are floats).
        data = data + 0.0
    raw = data.tobytes()
    stride = data.shape[1] * data.itemsize
    buckets: dict[bytes, list[int]] = {}
    setdefault = buckets.setdefault
    for index in range(count):
        setdefault(raw[index * stride : (index + 1) * stride], []).append(index)
    return list(buckets.values())


def group_by_any_table(signatures: np.ndarray) -> list[list[int]]:
    """OR rule: rows sharing any per-table bucket are unioned transitively."""
    count, tables = signatures.shape
    union = UnionFind(count)
    for table in range(tables):
        first_seen: dict = {}
        column = signatures[:, table]
        for row_index in range(count):
            key = column[row_index] if column.ndim == 1 else tuple(column[row_index])
            anchor = first_seen.setdefault(key, row_index)
            if anchor != row_index:
                union.union(anchor, row_index)
    return union.groups()


def group(signatures: np.ndarray, rule: GroupingRule) -> list[list[int]]:
    """Cluster rows of a ``(n, T)`` signature matrix under ``rule``."""
    if signatures.ndim != 2:
        raise ValueError(f"expected (n, T) signatures, got shape {signatures.shape}")
    if rule is GroupingRule.AND:
        return group_by_signature(signatures)
    return group_by_any_table(signatures)


def elsh_collision_probability(distance: float, bucket_length: float) -> float:
    """Single-table collision probability of p-stable Euclidean LSH.

    Datar et al. [32]: for Gaussian projections with bucket length ``b`` and
    points at distance ``d``,

        p_b(d) = 1 - 2 Phi(-b/d) - (2 d / (sqrt(2 pi) b)) (1 - exp(-b^2 / 2 d^2))

    ``p_b`` is 1 at distance 0 and strictly decreasing in ``d``.
    """
    if bucket_length <= 0:
        raise ValueError(f"bucket_length must be > 0, got {bucket_length}")
    if distance < 0:
        raise ValueError(f"distance must be >= 0, got {distance}")
    if distance == 0.0:
        return 1.0
    ratio = bucket_length / distance
    term_tail = 2.0 * stats.norm.cdf(-ratio)
    term_density = (
        2.0 / (np.sqrt(2.0 * np.pi) * ratio) * (1.0 - np.exp(-(ratio**2) / 2.0))
    )
    return float(1.0 - term_tail - term_density)


def or_rule_probability(single_table: float, tables: int) -> float:
    """P(collide in >= 1 of ``tables``) = 1 - (1 - p)^T (section 4.2)."""
    if not 0.0 <= single_table <= 1.0:
        raise ValueError(f"probability out of range: {single_table}")
    if tables < 1:
        raise ValueError(f"tables must be >= 1, got {tables}")
    return 1.0 - (1.0 - single_table) ** tables


def and_rule_probability(single_table: float, tables: int) -> float:
    """P(collide in all ``tables``) = p^T."""
    if not 0.0 <= single_table <= 1.0:
        raise ValueError(f"probability out of range: {single_table}")
    if tables < 1:
        raise ValueError(f"tables must be >= 1, got {tables}")
    return single_table**tables

"""Locality-Sensitive Hashing substrate: ELSH, MinHash, grouping rules."""

from repro.lsh.base import (
    GroupingRule,
    and_rule_probability,
    elsh_collision_probability,
    group,
    group_by_any_table,
    group_by_signature,
    or_rule_probability,
)
from repro.lsh.elsh import EuclideanLSH
from repro.lsh.minhash import MinHashLSH, exact_jaccard
from repro.lsh.union_find import UnionFind

__all__ = [
    "EuclideanLSH",
    "GroupingRule",
    "MinHashLSH",
    "UnionFind",
    "and_rule_probability",
    "elsh_collision_probability",
    "exact_jaccard",
    "group",
    "group_by_any_table",
    "group_by_signature",
    "or_rule_probability",
]

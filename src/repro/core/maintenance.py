"""Schema maintenance under deletions (extension; future work in the paper).

The published incremental step is insert-only: schemas grow monotonically
(section 4.6) and "handling updates and deletions is left for future work".
This extension implements the natural completion:

* :class:`MaintainedSchema` wraps an incremental engine and a union graph;
* deletions remove instances from their types, decrement the per-key
  counters, and drop types whose instance set becomes empty;
* post-processing flags (constraints, datatypes, cardinalities, keys) are
  recomputed over the surviving data, because deletion breaks monotonicity
  -- a property can *become* mandatory again once its violating instances
  leave, and cardinality upper bounds can tighten.

The monotone-chain guarantee of section 4.6 therefore holds between
deletions but deliberately not across them; tests pin both behaviours.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterable

from repro.core.cardinality_inference import compute_cardinalities
from repro.core.config import PGHiveConfig
from repro.core.constraints import infer_property_constraints
from repro.core.datatype_inference import infer_datatypes
from repro.core.incremental import IncrementalSchemaDiscovery
from repro.core.key_inference import infer_keys
from repro.errors import MissingElementError
from repro.graph.model import PropertyGraph
from repro.schema.model import SchemaGraph


class MaintainedSchema:
    """Incremental discovery plus deletion support."""

    def __init__(
        self,
        config: PGHiveConfig | None = None,
        schema_name: str = "maintained-schema",
        infer_key_constraints: bool = False,
    ) -> None:
        self.config = config or PGHiveConfig()
        # Deletions must re-read surviving values, and streaming
        # accumulators are insert-monotone, so this extension always keeps
        # the union graph and post-processes by full scan.
        self._engine = IncrementalSchemaDiscovery(
            dataclasses.replace(
                self.config, retain_union=True, streaming_postprocess=False
            ),
            schema_name=schema_name,
        )
        self.infer_key_constraints = infer_key_constraints

    @property
    def schema(self) -> SchemaGraph:
        """The live schema."""
        return self._engine.schema

    @property
    def graph(self) -> PropertyGraph:
        """The union of all inserted (and not yet deleted) data."""
        return self._engine.union_graph

    # ------------------------------------------------------------------
    # Inserts (delegated)
    # ------------------------------------------------------------------
    def insert_batch(self, batch: PropertyGraph) -> None:
        """Process one insert batch through the incremental engine."""
        self._engine.add_batch(batch)

    # ------------------------------------------------------------------
    # Deletions
    # ------------------------------------------------------------------
    def delete_nodes(self, node_ids: Iterable[str]) -> int:
        """Delete nodes (and their incident edges); returns removed count."""
        graph = self.graph
        removed = 0
        node_ids = [n for n in node_ids if graph.has_node(n)]
        # Incident edges go first so edge types update before node removal.
        incident: set[str] = set()
        for node_id in node_ids:
            incident.update(e.edge_id for e in graph.out_edges(node_id))
            incident.update(e.edge_id for e in graph.in_edges(node_id))
        self.delete_edges(incident)
        for node_id in node_ids:
            self._detach_instance(node_id, is_edge=False)
            graph.remove_node(node_id)
            removed += 1
        self._drop_empty_types()
        return removed

    def delete_edges(self, edge_ids: Iterable[str]) -> int:
        """Delete edges; returns removed count."""
        graph = self.graph
        removed = 0
        for edge_id in list(edge_ids):
            if not graph.has_edge(edge_id):
                continue
            self._detach_instance(edge_id, is_edge=True)
            graph.remove_edge(edge_id)
            removed += 1
        self._drop_empty_types()
        return removed

    def _detach_instance(self, instance_id: str, is_edge: bool) -> None:
        graph = self.graph
        try:
            element = graph.edge(instance_id) if is_edge else graph.node(instance_id)
        except MissingElementError:
            return
        types = self.schema.edge_types() if is_edge else self.schema.node_types()
        for schema_type in types:
            if instance_id not in schema_type.instance_ids:
                continue
            schema_type.instance_ids.discard(instance_id)
            schema_type.instance_count -= 1
            for key in element.properties:
                schema_type.property_counts[key] -= 1
                if schema_type.property_counts[key] <= 0:
                    del schema_type.property_counts[key]
            return

    def _drop_empty_types(self) -> None:
        for node_type in list(self.schema.node_types()):
            if node_type.instance_count <= 0:
                self.schema.remove_node_type(node_type.type_id)
        for edge_type in list(self.schema.edge_types()):
            if edge_type.instance_count <= 0:
                self.schema.remove_edge_type(edge_type.type_id)

    # ------------------------------------------------------------------
    # Post-processing (recomputed, not merged -- see module docstring)
    # ------------------------------------------------------------------
    def refresh(self) -> SchemaGraph:
        """Recompute constraints, datatypes, cardinalities (and keys)."""
        infer_property_constraints(self.schema)
        infer_datatypes(self.schema, self.graph, self.config)
        compute_cardinalities(self.schema, self.graph)
        if self.infer_key_constraints:
            infer_keys(self.schema, self.graph)
        return self.schema

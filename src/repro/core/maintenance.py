"""Schema maintenance under deletions (extension; future work in the paper).

The published incremental step is insert-only: schemas grow monotonically
(section 4.6) and "handling updates and deletions is left for future work".
This extension implements the natural completion, and since the
:class:`~repro.core.session.SchemaSession` redesign it is a thin adapter:
the session owns the delete path (detach instances, decrement per-key
counters, prune specs whose last carrier died, drop empty types, cascade
node deletions to incident edges) and
this class pins the historical configuration -- the union graph is always
retained and post-processing always re-reads the surviving data by full
scan, because deletion breaks monotonicity: a property can *become*
mandatory again once its violating instances leave, and cardinality upper
bounds can tighten.

The monotone-chain guarantee of section 4.6 therefore holds between
deletions but deliberately not across them; tests pin both behaviours.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.core.config import PGHiveConfig
from repro.core.session import SchemaSession
from repro.graph.changes import ChangeSet
from repro.graph.model import PropertyGraph
from repro.schema.model import SchemaGraph


class MaintainedSchema:
    """Incremental discovery plus deletion support (session adapter)."""

    def __init__(
        self,
        config: PGHiveConfig | None = None,
        schema_name: str = "maintained-schema",
        infer_key_constraints: bool = False,
    ) -> None:
        self.config = config or PGHiveConfig()
        # Deletions must re-read surviving values, and streaming
        # accumulators are insert-monotone, so this extension always keeps
        # the union graph and post-processes by full scan.
        self.session = SchemaSession(
            self.config,
            schema_name=schema_name,
            retain_union=True,
            streaming_postprocess=False,
            track_keys=infer_key_constraints,
        )
        self.infer_key_constraints = infer_key_constraints

    @property
    def schema(self) -> SchemaGraph:
        """The live schema."""
        return self.session.schema_graph

    @property
    def graph(self) -> PropertyGraph:
        """The union of all inserted (and not yet deleted) data."""
        return self.session.union_graph

    # ------------------------------------------------------------------
    # Inserts (delegated)
    # ------------------------------------------------------------------
    def insert_batch(self, batch: PropertyGraph) -> None:
        """Process one insert batch through the session."""
        self.session.add_batch(batch)

    # ------------------------------------------------------------------
    # Deletions (delegated to the session's delete path)
    # ------------------------------------------------------------------
    def delete_nodes(self, node_ids: Iterable[str]) -> int:
        """Delete nodes (and their incident edges); returns removed count."""
        report = self.session.apply(ChangeSet.deletions(nodes=list(node_ids)))
        return report.nodes_deleted

    def delete_edges(self, edge_ids: Iterable[str]) -> int:
        """Delete edges; returns removed count."""
        report = self.session.apply(ChangeSet.deletions(edges=list(edge_ids)))
        return report.edges_deleted

    # ------------------------------------------------------------------
    # Post-processing (recomputed, not merged -- see module docstring)
    # ------------------------------------------------------------------
    def refresh(self) -> SchemaGraph:
        """Recompute constraints, datatypes, cardinalities (and keys)."""
        return self.session.refresh()

"""Mandatory/optional property inference (section 4.4).

A property ``p`` is MANDATORY for type ``T`` when its frequency
``f_T(p) = |{i in I_T : p in P_i}| / |I_T|`` equals 1 -- it appears in
every instance -- and OPTIONAL otherwise.  Each type already accumulated
per-key occurrence counters while instances were recorded, so this pass is
a single walk over the schema with no graph access.

This makes constraint inference the model for the whole streaming
post-processing subsystem: ``property_counts`` / ``instance_count`` *are*
the mandatory/optional accumulators, maintained once per arriving element
and merged monotonically on type absorption.  The same function therefore
serves both the full-scan and the streaming paths -- there is no separate
``infer_property_constraints_streaming``.
"""

from __future__ import annotations

from repro.schema.model import SchemaGraph, _TypeBase


def property_frequency(schema_type: _TypeBase, key: str) -> float:
    """``f_T(p)``: fraction of instances of the type carrying ``key``."""
    if schema_type.instance_count == 0:
        return 0.0
    return schema_type.property_counts.get(key, 0) / schema_type.instance_count


def infer_type_constraints(schema_type: _TypeBase) -> None:
    """Flag every property spec of one type as mandatory or optional."""
    for key, spec in schema_type.properties.items():
        spec.mandatory = (
            schema_type.instance_count > 0
            and schema_type.property_counts.get(key, 0)
            == schema_type.instance_count
        )


def infer_property_constraints(schema: SchemaGraph) -> SchemaGraph:
    """Run constraint inference over every node and edge type."""
    for node_type in schema.node_types():
        infer_type_constraints(node_type)
    for edge_type in schema.edge_types():
        infer_type_constraints(edge_type)
    return schema

"""Property data-type inference (section 4.4).

For each (type, property) pair the observed values are reduced to the most
specific compatible :class:`~repro.schema.datatypes.DataType` through the
priority chain (integer, float, boolean, date/time regex, string).  Because
reconciliation generalises (int+float -> float, conflicts -> string), the
assigned type is always compatible with every observed value (section 4.7).

Full scans can be expensive, so the sampled mode draws
``max(fraction * |values|, min_sample)`` values uniformly at random; the
Figure 8 experiment measures how often sampling disagrees with a full scan.

The incremental path avoids value scans altogether:
:func:`infer_datatypes_streaming` reads the per-type
:class:`~repro.core.accumulators.DatatypeAccumulator`, which folded every
value once at arrival, so each call is O(|schema|) regardless of how much
data the stream has carried.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import PGHiveConfig
from repro.errors import SchemaError
from repro.graph.model import PropertyGraph
from repro.schema.datatypes import DataType, infer_type
from repro.schema.model import EdgeType, NodeType, SchemaGraph
from repro.util import derive_seed


def collect_property_values(
    graph: PropertyGraph,
    schema_type: NodeType | EdgeType,
    key: str,
    is_edge: bool,
) -> list:
    """All values of ``key`` across the type's instances present in ``graph``."""
    getter = graph.edge if is_edge else graph.node
    values = []
    # Sorted: instance_ids is a set, and the value order feeds the
    # sampling rng -- iteration must not depend on PYTHONHASHSEED.
    for instance_id in sorted(schema_type.instance_ids):
        if is_edge:
            if not graph.has_edge(instance_id):
                continue
        elif not graph.has_node(instance_id):
            continue
        element = getter(instance_id)
        if key in element.properties:
            values.append(element.properties[key])
    return values


def sample_values(
    values: list,
    fraction: float,
    min_sample: int,
    rng: np.random.Generator,
) -> list:
    """Uniform sample of ``values``: ``max(fraction*n, min_sample)`` items."""
    if not values:
        return []
    size = max(int(len(values) * fraction), min_sample)
    if size >= len(values):
        return list(values)
    indices = rng.choice(len(values), size=size, replace=False)
    return [values[i] for i in indices]


def infer_datatypes(
    schema: SchemaGraph,
    graph: PropertyGraph,
    config: PGHiveConfig | None = None,
) -> SchemaGraph:
    """Fill ``spec.data_type`` for every property of every type.

    With ``config.datatype_sampling`` enabled only a sample of the values is
    scanned (falling back to STRING-compatible generalisation as always);
    otherwise the full value set is used.
    """
    config = config or PGHiveConfig()
    rng = np.random.default_rng(derive_seed(config.seed, "datatype-sampling"))
    for node_type in schema.node_types():
        _infer_for_type(schema_type=node_type, graph=graph, is_edge=False,
                        config=config, rng=rng)
    for edge_type in schema.edge_types():
        _infer_for_type(schema_type=edge_type, graph=graph, is_edge=True,
                        config=config, rng=rng)
    return schema


def infer_datatypes_streaming(schema: SchemaGraph) -> SchemaGraph:
    """Fill ``spec.data_type`` from the streaming accumulators (O(|schema|)).

    Equivalent to the exact (non-sampled) full scan: the accumulator holds
    the lattice join of every value observed for the (type, property)
    pair, and the join is order invariant, so this read matches
    :func:`infer_datatypes` over the cumulative union graph bit for bit.
    Sampling settings are ignored -- the fold already paid O(1) per value
    at arrival, so there is nothing left to sample.
    """
    for schema_type in (*schema.node_types(), *schema.edge_types()):
        summaries = schema_type.summaries
        if summaries is None:
            raise SchemaError(
                f"type {schema_type.display_name!r} has no streaming "
                "summaries; use the full-scan infer_datatypes with a graph"
            )
        observed = summaries.datatypes.types
        for key, spec in schema_type.properties.items():
            spec.data_type = observed.get(key, DataType.STRING)
    return schema


def _infer_for_type(
    schema_type: NodeType | EdgeType,
    graph: PropertyGraph,
    is_edge: bool,
    config: PGHiveConfig,
    rng: np.random.Generator,
) -> None:
    for key, spec in schema_type.properties.items():
        values = collect_property_values(graph, schema_type, key, is_edge)
        if config.datatype_sampling:
            values = sample_values(
                values,
                config.datatype_sample_fraction,
                config.datatype_min_sample,
                rng,
            )
        spec.data_type = infer_type(values) if values else DataType.STRING

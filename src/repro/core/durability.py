"""Durability primitives: atomic artifacts and the changeset WAL.

Two on-disk building blocks back crash recovery (see DESIGN.md
"Durability & crash recovery"):

**Verifiable atomic artifacts** -- :func:`write_artifact` frames a bytes
payload with a single header line ``<magic> <version> <digest> <length>``
(blake2b-128 of the payload) and writes it via temp file + fsync +
``os.replace`` (:func:`atomic_write_bytes`), so a crash at any point
leaves either the previous file or the complete new one, never a torn
mix.  :func:`read_artifact` verifies length and digest and raises a
*typed* error per failure mode: :class:`~repro.errors.CheckpointFormatError`
(bad magic / malformed header), :class:`~repro.errors.CheckpointVersionError`
(version from the future), :class:`~repro.errors.CheckpointCorruptError`
(length or digest mismatch).  Legacy 2-token headers (pre-digest
checkpoint v1) stay readable but unverified.

**Write-ahead log** -- :class:`WriteAheadLog` is an append-only segment
log of ``(sequence, payload)`` records:

* segment files ``wal-<first_sequence>.seg``, each starting with the
  header line ``pghive-wal 1``; rotation at ``segment_bytes``;
* record framing ``<u64 sequence> <u32 length> <u32 crc32> <payload>``
  (little-endian; the crc covers sequence+length+payload), so any torn
  or bit-flipped record is detected;
* fsync policies ``always`` (every append), ``batch`` (every
  ``batch_every`` appends and at rotation/close), ``off`` (the OS
  decides);
* torn-tail tolerance: a bad record *at the tail of the last segment*
  is the expected signature of a crash mid-append -- :meth:`replay`
  stops cleanly before it and opening the log truncates it away.  A bad
  record anywhere else -- including one *followed by* CRC-valid records
  in the last segment, the signature of a mid-segment bit flip rather
  than a torn write -- is real corruption and raises
  :class:`~repro.errors.WALCorruptError` instead of silently dropping
  fsync-acknowledged data;
* :meth:`prune` drops segments made redundant by a checkpoint: a
  segment is deleted once the *next* segment already covers everything
  after the checkpointed sequence.

Failpoints (:func:`repro.core.faults.fire`) bracket every write and
fsync so the fault-injection tests can crash at exact byte positions.
"""

from __future__ import annotations

import hashlib
import os
import re
import struct
import zlib
from collections.abc import Iterator
from pathlib import Path

from repro.core.faults import fire
from repro.errors import (
    CheckpointCorruptError,
    CheckpointError,
    CheckpointFormatError,
    CheckpointVersionError,
    ConfigurationError,
    WALCorruptError,
    WALError,
)

# ----------------------------------------------------------------------
# Atomic artifact files
# ----------------------------------------------------------------------

#: blake2b digest size (bytes) recorded in artifact headers.
DIGEST_SIZE = 16

#: an artifact header line never legitimately exceeds this.
_MAX_HEADER = 256


def payload_digest(payload: bytes) -> str:
    """Hex blake2b-128 digest recorded in artifact headers."""
    return hashlib.blake2b(payload, digest_size=DIGEST_SIZE).hexdigest()


def atomic_write_bytes(path: str | Path, data: bytes) -> Path:
    """Write ``data`` to ``path`` atomically: temp + fsync + replace.

    The temp file is fsynced before the rename and the directory after
    it, so after a crash the target either holds its previous content or
    the complete new content.  The temp file is cleaned up on failure.
    """
    path = Path(path)
    temp = path.with_name(path.name + ".tmp")
    try:
        with open(temp, "wb") as handle:
            handle.write(data)
            handle.flush()
            fire("atomic.before_fsync", path=str(temp))
            os.fsync(handle.fileno())
        fire("atomic.before_replace", temp=str(temp), path=str(path))
        os.replace(temp, path)
        fire("atomic.after_replace", path=str(path))
        _fsync_directory(path.parent)
    finally:
        temp.unlink(missing_ok=True)
    return path


def _fsync_directory(directory: Path) -> None:
    """Flush a rename to disk (best effort on exotic filesystems)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def write_artifact(
    path: str | Path, magic: bytes, version: int, payload: bytes
) -> Path:
    """Atomically write a digest-framed artifact file."""
    header = b"%s %d %s %d\n" % (
        magic,
        version,
        payload_digest(payload).encode("ascii"),
        len(payload),
    )
    try:
        return atomic_write_bytes(path, header + payload)
    except OSError as error:
        raise CheckpointError(
            f"could not write artifact {path}: {error}"
        ) from error


def read_artifact(
    path: str | Path,
    magic: bytes,
    *,
    version: int,
    legacy_versions: tuple[int, ...] = (),
) -> tuple[int, bytes]:
    """Read and verify an artifact written by :func:`write_artifact`.

    Returns ``(version, payload)``.  Versions in ``legacy_versions``
    use the historical 2-token header (no digest) and return their
    payload unverified.  Failure modes raise distinct typed errors; see
    the module docstring.
    """
    path = Path(path)
    try:
        data = path.read_bytes()
    except OSError as error:
        raise CheckpointError(
            f"could not read artifact {path}: {error}"
        ) from error
    newline = data.find(b"\n", 0, _MAX_HEADER)
    if newline < 0:
        raise CheckpointFormatError(
            f"{path}: truncated artifact header (no newline in the first "
            f"{_MAX_HEADER} bytes)"
        )
    tokens = data[:newline].split()
    payload = data[newline + 1 :]
    if not tokens or tokens[0] != magic:
        raise CheckpointFormatError(
            f"{path} is not a {magic.decode('ascii')!r} artifact"
        )
    try:
        found_version = int(tokens[1])
    except (IndexError, ValueError):
        raise CheckpointFormatError(
            f"{path}: unparseable artifact version in header"
        ) from None
    if found_version in legacy_versions:
        if len(tokens) != 2:
            raise CheckpointFormatError(
                f"{path}: version-{found_version} header carries "
                f"{len(tokens)} fields, expected 2"
            )
        return found_version, payload
    if found_version != version:
        raise CheckpointVersionError(
            f"{path}: unsupported version {found_version} (this build "
            f"reads version {version}"
            + (f", legacy {sorted(legacy_versions)}" if legacy_versions else "")
            + ")"
        )
    if len(tokens) != 4:
        raise CheckpointFormatError(
            f"{path}: version-{found_version} header carries "
            f"{len(tokens)} fields, expected 4"
        )
    try:
        length = int(tokens[3])
    except ValueError:
        raise CheckpointFormatError(
            f"{path}: unparseable payload length in header"
        ) from None
    if len(payload) != length:
        raise CheckpointCorruptError(
            f"{path}: payload is {len(payload)} bytes, header promises "
            f"{length} (truncated or overwritten)"
        )
    digest = tokens[2].decode("ascii", "replace")
    if payload_digest(payload) != digest:
        raise CheckpointCorruptError(
            f"{path}: payload digest mismatch (file is corrupt)"
        )
    return found_version, payload


# ----------------------------------------------------------------------
# Write-ahead log
# ----------------------------------------------------------------------

WAL_MAGIC = b"pghive-wal"
WAL_VERSION = 1
_SEGMENT_HEADER = b"%s %d\n" % (WAL_MAGIC, WAL_VERSION)
_SEGMENT_RE = re.compile(r"^wal-(\d{12})\.seg$")

#: record head: little-endian u64 sequence + u32 payload length.
_HEAD = struct.Struct("<QI")
#: u32 crc32 over head+payload, stored between head and payload.
_CRC = struct.Struct("<I")

FSYNC_POLICIES = ("always", "batch", "off")

#: how far past the last good sequence the tail-repair resync scan will
#: believe a candidate record; garbage offsets rarely pass it, so the
#: crc is only computed for plausible frames.
_RESYNC_SEQ_WINDOW = 1 << 20


def _segment_name(first_sequence: int) -> str:
    return f"wal-{first_sequence:012d}.seg"


def _segment_first_sequence(path: Path) -> int:
    match = _SEGMENT_RE.match(path.name)
    if match is None:
        raise WALError(f"{path} is not a WAL segment file")
    return int(match.group(1))


def _scan_segment(data: bytes, path: Path) -> tuple[list[tuple[int, int, int]], int]:
    """Parse one segment's records.

    Returns ``(records, valid_end)`` where each record is
    ``(sequence, payload_start, payload_end)`` and ``valid_end`` is the
    byte offset after the last *valid* record.  Scanning stops at the
    first invalid record (torn tail or corruption -- the caller decides
    which, based on segment position).  A segment whose header itself is
    bad yields ``valid_end = -1``.
    """
    if not data.startswith(_SEGMENT_HEADER):
        return [], -1
    records: list[tuple[int, int, int]] = []
    offset = len(_SEGMENT_HEADER)
    size = len(data)
    while offset < size:
        head_end = offset + _HEAD.size
        crc_end = head_end + _CRC.size
        if crc_end > size:
            break  # torn mid-head
        sequence, length = _HEAD.unpack_from(data, offset)
        payload_end = crc_end + length
        if payload_end > size:
            break  # torn mid-payload
        (stored_crc,) = _CRC.unpack_from(data, head_end)
        crc = zlib.crc32(data[offset:head_end])
        crc = zlib.crc32(data[crc_end:payload_end], crc)
        if crc != stored_crc:
            break  # bit rot or torn overwrite
        records.append((sequence, crc_end, payload_end))
        offset = payload_end
    return records, offset


def _has_valid_record_after(
    data: bytes, offset: int, last_sequence: int
) -> bool:
    """True when a CRC-valid record frame parses at or after ``offset``.

    Distinguishes a torn tail (garbage runs to EOF) from a corrupted
    record *followed by* intact, possibly fsync-acknowledged records: the
    former may be truncated away, the latter must raise.  The scan tries
    every byte offset but only computes a crc for frames whose sequence
    lands in ``(last_sequence, last_sequence + _RESYNC_SEQ_WINDOW]`` and
    whose length fits the segment, which prunes nearly all garbage.
    """
    size = len(data)
    min_record = _HEAD.size + _CRC.size
    for start in range(offset, size - min_record + 1):
        sequence, length = _HEAD.unpack_from(data, start)
        if (
            sequence <= last_sequence
            or sequence > last_sequence + _RESYNC_SEQ_WINDOW
        ):
            continue
        payload_end = start + min_record + length
        if payload_end > size:
            continue
        (stored_crc,) = _CRC.unpack_from(data, start + _HEAD.size)
        crc = zlib.crc32(data[start : start + _HEAD.size])
        crc = zlib.crc32(data[start + min_record : payload_end], crc)
        if crc == stored_crc:
            return True
    return False


class WriteAheadLog:
    """Append-only, checksummed, segmented changeset log.

    One instance owns one directory.  Appends must carry strictly
    increasing sequence numbers (the session's stream position), which
    is what lets :meth:`replay` hand back exactly the records after a
    checkpointed position and :meth:`prune` drop segments a checkpoint
    made redundant.
    """

    def __init__(
        self,
        directory: str | Path,
        *,
        fsync: str = "batch",
        batch_every: int = 8,
        segment_bytes: int = 8 * 1024 * 1024,
    ) -> None:
        if fsync not in FSYNC_POLICIES:
            raise ConfigurationError(
                f"fsync policy must be one of {FSYNC_POLICIES}, got {fsync!r}"
            )
        if batch_every < 1:
            raise ConfigurationError(
                f"batch_every must be >= 1, got {batch_every}"
            )
        if segment_bytes < len(_SEGMENT_HEADER) + _HEAD.size + _CRC.size:
            raise ConfigurationError(
                f"segment_bytes={segment_bytes} cannot hold a single record"
            )
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.fsync = fsync
        self.batch_every = int(batch_every)
        self.segment_bytes = int(segment_bytes)
        self._handle = None
        self._handle_path: Path | None = None
        self._size = 0
        self._unsynced = 0
        self._last_sequence = 0
        self._tail_record_start: int | None = None
        self._tail_prev_sequence = 0
        self._repair_tail()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def last_sequence(self) -> int:
        """Sequence of the newest durable record (0 when empty)."""
        return self._last_sequence

    def segment_paths(self) -> list[Path]:
        """All segment files, oldest first."""
        return sorted(
            p for p in self.directory.iterdir() if _SEGMENT_RE.match(p.name)
        )

    # ------------------------------------------------------------------
    # Open-time tail repair
    # ------------------------------------------------------------------
    def _repair_tail(self) -> None:
        """Drop the torn tail (if any) of the last segment and learn the
        durable stream position.

        Truncation is only a *tail* repair: an invalid record (or
        segment header) followed by CRC-valid records is a mid-segment
        bit flip, and truncating there would silently discard records
        that may have been fsync-acknowledged -- that raises
        :class:`WALCorruptError` instead.
        """
        segments = self.segment_paths()
        tail_tolerated = False
        while segments:
            last = segments[-1]
            data = last.read_bytes()
            records, valid_end = _scan_segment(data, last)
            if valid_end < 0:
                # Crash during rotation: the new segment's header itself
                # is torn, so it cannot hold any record -- drop the file.
                # Only the newest segment may look like this; deeper in
                # the log it is real corruption.
                if tail_tolerated:
                    raise WALCorruptError(
                        f"{last}: segment header is corrupt in a sealed "
                        "segment"
                    )
                if _has_valid_record_after(
                    data, 1, _segment_first_sequence(last) - 1
                ):
                    raise WALCorruptError(
                        f"{last}: segment header is corrupt but the "
                        "segment still holds valid records (mid-segment "
                        "corruption, not a torn rotation)"
                    )
                last.unlink()
                segments.pop()
                tail_tolerated = True
                continue
            if valid_end < len(data):
                base = (
                    records[-1][0]
                    if records
                    else _segment_first_sequence(last) - 1
                )
                if _has_valid_record_after(data, valid_end + 1, base):
                    raise WALCorruptError(
                        f"{last}: invalid record at offset {valid_end} is "
                        "followed by valid records (mid-segment corruption, "
                        "not a torn tail)"
                    )
                with open(last, "r+b") as handle:
                    handle.truncate(valid_end)
                    handle.flush()
                    os.fsync(handle.fileno())
            if not records:
                # Every record was torn away, leaving a bare header.
                # Unlink the file so a future rotation can reuse the
                # name, and keep looking for the newest durable record.
                last.unlink()
                segments.pop()
                tail_tolerated = True
                continue
            self._last_sequence = records[-1][0]
            return

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------
    def append(self, sequence: int, payload: bytes) -> None:
        """Durably (per policy) log one record."""
        if sequence <= self._last_sequence:
            raise WALError(
                f"WAL sequences must be strictly increasing: got {sequence} "
                f"after {self._last_sequence}"
            )
        if self._handle is None or self._size >= self.segment_bytes:
            self._rotate(sequence)
        head = _HEAD.pack(sequence, len(payload))
        crc = zlib.crc32(payload, zlib.crc32(head))
        record = head + _CRC.pack(crc) + payload
        fire(
            "wal.before_append",
            path=str(self._handle_path),
            sequence=sequence,
        )
        record_start = self._size
        self._handle.write(record)
        self._handle.flush()
        self._size += len(record)
        self._unsynced += 1
        fire(
            "wal.after_append",
            path=str(self._handle_path),
            sequence=sequence,
            record_start=record_start,
            record_end=self._size,
        )
        if self.fsync == "always" or (
            self.fsync == "batch" and self._unsynced >= self.batch_every
        ):
            self._fsync()
        self._tail_record_start = record_start
        self._tail_prev_sequence = self._last_sequence
        self._last_sequence = sequence

    def rollback_last(self) -> None:
        """Physically remove the record appended by the latest ``append``.

        Compensation for write-ahead ordering: when the session rejects
        a change-set *after* it was logged (a validation error), the
        record must not persist -- a later replay would re-raise the
        rejection and a later append would violate sequence monotonicity.
        Only the immediately preceding append can be rolled back.
        """
        if self._handle is None or self._tail_record_start is None:
            raise WALError("no just-appended record to roll back")
        self._handle.truncate(self._tail_record_start)
        self._handle.flush()
        if self.fsync != "off":
            os.fsync(self._handle.fileno())
            self._unsynced = 0
        self._size = self._tail_record_start
        self._last_sequence = self._tail_prev_sequence
        self._tail_record_start = None

    def drop_tail_record(self, sequence: int) -> None:
        """Remove the newest durable record (it must carry ``sequence``).

        The recovery-time twin of :meth:`rollback_last`: a crash between
        a WAL append and the rollback of a rejected change-set leaves a
        poisoned final record that was never acknowledged -- replay drops
        it here instead of bricking the directory.  Refuses anything but
        the current tail record.
        """
        if self._handle is not None:
            raise WALError(
                "drop_tail_record operates on a quiescent log (no open "
                "append segment); use rollback_last after a live append"
            )
        if sequence != self._last_sequence:
            raise WALError(
                f"cannot drop record {sequence}: the tail record is "
                f"{self._last_sequence}"
            )
        segments = self.segment_paths()
        if not segments:
            raise WALError("cannot drop a record from an empty log")
        last = segments[-1]
        data = last.read_bytes()
        records, _valid_end = _scan_segment(data, last)
        if not records or records[-1][0] != sequence:
            raise WALError(
                f"{last}: tail segment does not end with record {sequence}"
            )
        start = records[-1][1] - _HEAD.size - _CRC.size
        with open(last, "r+b") as handle:
            handle.truncate(start)
            handle.flush()
            os.fsync(handle.fileno())
        self._last_sequence = 0
        self._repair_tail()

    def _rotate(self, first_sequence: int) -> None:
        """Seal the current segment and start a new one."""
        self._close_handle()
        path = self.directory / _segment_name(first_sequence)
        if path.exists():
            raise WALError(f"refusing to overwrite existing segment {path}")
        self._handle = open(path, "ab")
        self._handle_path = path
        self._handle.write(_SEGMENT_HEADER)
        self._handle.flush()
        self._size = len(_SEGMENT_HEADER)
        self._unsynced = 0
        if self.fsync != "off":
            self._fsync()

    def _fsync(self) -> None:
        fire("wal.before_fsync", path=str(self._handle_path))
        os.fsync(self._handle.fileno())
        self._unsynced = 0
        fire("wal.after_fsync", path=str(self._handle_path))

    def sync(self) -> None:
        """Force an fsync of the open segment regardless of policy."""
        if self._handle is not None:
            self._fsync()

    def _close_handle(self) -> None:
        if self._handle is not None:
            self._handle.flush()
            if self.fsync != "off":
                os.fsync(self._handle.fileno())
            self._handle.close()
            self._handle = None
            self._handle_path = None
            self._size = 0

    def close(self) -> None:
        """Seal the log (flush + fsync the open segment)."""
        self._close_handle()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------
    def replay(self, after: int = 0) -> Iterator[tuple[int, bytes]]:
        """Yield ``(sequence, payload)`` for every record after ``after``.

        A torn record at the tail of the *last* segment ends the replay
        cleanly (crash mid-append); a bad record anywhere else raises
        :class:`WALCorruptError`.  Sequences must increase strictly
        across the whole log.
        """
        segments = self.segment_paths()
        previous = None
        for position, path in enumerate(segments):
            data = path.read_bytes()
            records, valid_end = _scan_segment(data, path)
            is_last = position == len(segments) - 1
            if valid_end < 0:
                if is_last:
                    return  # torn rotation; nothing durable in here
                raise WALCorruptError(
                    f"{path}: segment header is corrupt in a sealed segment"
                )
            if valid_end < len(data) and not is_last:
                raise WALCorruptError(
                    f"{path}: invalid record at offset {valid_end} of a "
                    "sealed segment (mid-history corruption)"
                )
            for sequence, start, end in records:
                if previous is not None and sequence <= previous:
                    raise WALCorruptError(
                        f"{path}: sequence {sequence} follows {previous}; "
                        "the log is not strictly increasing"
                    )
                previous = sequence
                if sequence > after:
                    yield sequence, data[start:end]

    # ------------------------------------------------------------------
    # Pruning
    # ------------------------------------------------------------------
    def prune(self, up_to: int) -> int:
        """Delete segments fully covered by a checkpoint at ``up_to``.

        A segment is redundant when the *next* segment starts at or
        before ``up_to + 1`` -- every record the recovery would need is
        then in later segments.  The newest segment is always kept (it
        holds the live append position).  Returns segments deleted.
        """
        segments = self.segment_paths()
        deleted = 0
        for position in range(len(segments) - 1):
            next_first = _segment_first_sequence(segments[position + 1])
            if next_first <= up_to + 1:
                if segments[position] == self._handle_path:
                    continue
                segments[position].unlink()
                deleted += 1
            else:
                break
        return deleted

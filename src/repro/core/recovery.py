"""Durable sessions: WAL-ahead logging and crash recovery.

The incremental-view-maintenance framing makes recovery exact: a
discovery state is (last consistent snapshot) + (replayed delta log), so

    ``recover == checkpoint restore + WAL replay``

and a recovered session is *fingerprint-identical* to one that never
crashed (the crash-recovery oracle pins this at every record boundary).

:class:`DurableSchemaSession` wraps :class:`~repro.core.session.SchemaSession`
with a directory layout::

    <dir>/wal/wal-<first_sequence>.seg   append-only changeset log
    <dir>/checkpoint-<sequence>.ckpt     atomic digest-verified snapshots

Every :meth:`apply`/:meth:`add_batch` first appends the change-set's
wire encoding (:meth:`~repro.graph.changes.ChangeSet.to_wire`) to the
WAL under the sequence number the apply will get, *then* mutates state
-- so after a crash the log is always at least as new as memory ever
was.  :meth:`checkpoint` snapshots the full state, keeps the
``keep_checkpoints`` newest snapshots so a corrupt newest checkpoint
still leaves an older one to fall back to (with correspondingly more
WAL to replay), and prunes only WAL segments that even the *oldest
retained* snapshot no longer needs -- pruning to the newest snapshot
would leave a replay gap under exactly the fallback the retention
bound exists for.

:meth:`DurableSchemaSession.recover` (also reachable as
``SchemaSession.recover``) walks checkpoints newest-first, restores the
first one that verifies, replays the WAL strictly after the restored
stream position, and resumes logging.  A torn final WAL record is
dropped by the log itself; the half-applied change-set it belonged to
was never acknowledged, so the producer re-feeds it and the outcome
matches the uncrashed run.

:class:`DurableShardedSchemaSession` is the same construction over
:class:`~repro.core.sharding.ShardedSchemaSession`: one parent-level WAL
(workers never log) and one manifest-checkpoint *directory* per
snapshot.  Combined with the sharded session's worker fault tolerance
this survives both whole-process crashes (WAL) and individual worker
deaths (retry/degrade).
"""

from __future__ import annotations

import re
import shutil
from pathlib import Path

from repro.core.config import PGHiveConfig
from repro.core.durability import WriteAheadLog
from repro.core.session import ChangeReport, SchemaSession
from repro.core.sharding import ShardedChangeReport, ShardedSchemaSession
from repro.errors import (
    CheckpointError,
    ConfigurationError,
    ReproError,
    WALCorruptError,
    WALError,
)
from repro.graph.changes import ChangeSet
from repro.graph.model import PropertyGraph

#: WAL payload kind prefix: a change-set applied via ``apply``.
_KIND_CHANGESET = b"C"
#: WAL payload kind prefix: an insert batch applied via ``add_batch``
#: (replayed through ``add_batch`` to keep its empty-batch semantics --
#: an empty first batch still fits the preprocessor).
_KIND_BATCH = b"B"

_CHECKPOINT_FILE_RE = re.compile(r"^checkpoint-(\d{12})\.ckpt$")
_CHECKPOINT_DIR_RE = re.compile(r"^checkpoint-(\d{12})$")
_WAL_DIR = "wal"


def _checkpoint_candidates(
    directory: Path, pattern: re.Pattern, want_dir: bool
) -> list[Path]:
    """Internal checkpoint paths under ``directory``, newest first."""
    found = [
        path
        for path in directory.iterdir()
        if pattern.match(path.name) and path.is_dir() == want_dir
    ]
    return sorted(found, reverse=True)


def _has_durable_state(
    directory: Path, pattern: re.Pattern, want_dir: bool
) -> bool:
    if not directory.is_dir():
        return False
    if _checkpoint_candidates(directory, pattern, want_dir):
        return True
    wal_dir = directory / _WAL_DIR
    return wal_dir.is_dir() and any(wal_dir.glob("wal-*.seg"))


def _oldest_retained_sequence(
    directory: Path, pattern: re.Pattern, want_dir: bool
) -> int:
    """Sequence of the oldest internal checkpoint still on disk.

    This is the WAL pruning horizon: recovery may fall back past a
    corrupt newer checkpoint all the way to this one, so every record
    after it must stay replayable.
    """
    candidates = _checkpoint_candidates(directory, pattern, want_dir)
    return int(pattern.match(candidates[-1].name).group(1))


def _logged_apply(session, kind: bytes, change_set: ChangeSet, run):
    """Append to the WAL, run the in-memory apply, compensate rejection.

    Write-ahead ordering logs the record before ``run`` mutates state;
    if ``run`` is rejected without advancing the stream position (a
    validation error such as deletions without ``retain_union``), the
    record is rolled back so the log never holds a change-set the
    session refused -- otherwise the next append would violate sequence
    monotonicity and a later recovery would replay the rejection.
    """
    sequence = session._sequence + 1
    session._wal.append(sequence, kind + change_set.to_wire())
    try:
        return run()
    except Exception:
        if session._sequence < sequence:
            session._wal.rollback_last()
        raise


def _replay_wal_records(session) -> None:
    """Apply every WAL record strictly after the restored position.

    A record the session *rejects* (a :class:`ReproError` that is not a
    WAL failure) is tolerated only as the final record of the log: that
    is the signature of a crash between the append and its rollback,
    and the change-set was never acknowledged, so it is dropped.  The
    same rejection earlier in the log is real divergence and re-raises.
    """
    session._replaying = True
    try:
        expected = session._sequence
        for sequence, payload in session._wal.replay(after=session._sequence):
            if sequence != expected + 1:
                raise WALCorruptError(
                    f"WAL replay expected sequence {expected + 1}, "
                    f"found {sequence} (segments missing?)"
                )
            try:
                _replay_record(session, payload)
            except WALError:
                raise
            except ReproError:
                if sequence == session._wal.last_sequence:
                    session._wal.drop_tail_record(sequence)
                    break
                raise
            expected = sequence
    finally:
        session._replaying = False


class DurableSchemaSession(SchemaSession):
    """A :class:`SchemaSession` whose change feed survives crashes.

    ``fsync`` picks the WAL durability policy (``"always"``/``"batch"``/
    ``"off"``); ``keep_checkpoints`` bounds how many snapshots stay on
    disk (>= 1; more snapshots mean more corruption fallback depth at
    more disk cost).  Construct on a *fresh* directory; for one that
    already holds durable state use :meth:`recover`.
    """

    def __init__(
        self,
        directory: str | Path,
        config: PGHiveConfig | None = None,
        schema_name: str = "session-schema",
        *,
        fsync: str = "batch",
        wal_batch_every: int = 8,
        wal_segment_bytes: int = 8 * 1024 * 1024,
        keep_checkpoints: int = 2,
        retain_union: bool | None = None,
        streaming_postprocess: bool | None = None,
        track_keys: bool | None = None,
        _resume: bool = False,
    ) -> None:
        if keep_checkpoints < 1:
            raise ConfigurationError(
                f"keep_checkpoints must be >= 1, got {keep_checkpoints}"
            )
        directory = Path(directory)
        if not _resume and _has_durable_state(
            directory, _CHECKPOINT_FILE_RE, want_dir=False
        ):
            raise ConfigurationError(
                f"{directory} already holds durable session state; resume "
                "it with SchemaSession.recover(...) instead of constructing "
                "a fresh session over it"
            )
        directory.mkdir(parents=True, exist_ok=True)
        super().__init__(
            config,
            schema_name=schema_name,
            retain_union=retain_union,
            streaming_postprocess=streaming_postprocess,
            track_keys=track_keys,
        )
        self.directory = directory
        self.keep_checkpoints = int(keep_checkpoints)
        self._replaying = False
        self._wal = WriteAheadLog(
            directory / _WAL_DIR,
            fsync=fsync,
            batch_every=wal_batch_every,
            segment_bytes=wal_segment_bytes,
        )

    # ------------------------------------------------------------------
    # Logged change feed
    # ------------------------------------------------------------------
    @property
    def wal(self) -> WriteAheadLog:
        """The session's write-ahead log (benchmarks introspect this)."""
        return self._wal

    def apply(self, change_set: ChangeSet) -> ChangeReport:
        if self._replaying:
            return super().apply(change_set)
        return _logged_apply(
            self,
            _KIND_CHANGESET,
            change_set,
            lambda: super(DurableSchemaSession, self).apply(change_set),
        )

    def add_batch(self, batch: PropertyGraph) -> ChangeReport:
        if self._replaying:
            return super().add_batch(batch)
        return _logged_apply(
            self,
            _KIND_BATCH,
            ChangeSet.from_graph(batch),
            lambda: super(DurableSchemaSession, self).add_batch(batch),
        )

    # ------------------------------------------------------------------
    # Checkpoints (pruning variants of the base implementation)
    # ------------------------------------------------------------------
    def checkpoint(self, path: str | Path | None = None) -> Path:
        """Snapshot state; prune the WAL and old snapshots it obsoletes.

        Without ``path`` the snapshot lands in the session directory as
        ``checkpoint-<sequence>.ckpt`` and participates in recovery,
        WAL pruning, and the ``keep_checkpoints`` retention bound.  The
        WAL is pruned only up to the *oldest retained* snapshot, so
        falling back past a corrupt newer one always finds its replay
        suffix intact.  An explicit external ``path`` writes a plain
        portable checkpoint and prunes nothing.
        """
        self._wal.sync()  # never prune segments ahead of the disk state
        if path is None:
            target = self.directory / f"checkpoint-{self._sequence:012d}.ckpt"
            super().checkpoint(target)
            self._prune_checkpoints()
            self._wal.prune(
                _oldest_retained_sequence(
                    self.directory, _CHECKPOINT_FILE_RE, want_dir=False
                )
            )
            return target
        return super().checkpoint(Path(path))

    def _prune_checkpoints(self) -> None:
        candidates = _checkpoint_candidates(
            self.directory, _CHECKPOINT_FILE_RE, want_dir=False
        )
        for stale in candidates[self.keep_checkpoints :]:
            stale.unlink(missing_ok=True)

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    @classmethod
    def recover(
        cls,
        directory: str | Path,
        *,
        fsync: str = "batch",
        wal_batch_every: int = 8,
        wal_segment_bytes: int = 8 * 1024 * 1024,
        keep_checkpoints: int = 2,
        config: PGHiveConfig | None = None,
        schema_name: str = "session-schema",
        retain_union: bool | None = None,
        streaming_postprocess: bool | None = None,
        track_keys: bool | None = None,
    ) -> "DurableSchemaSession":
        """Resume a durable session: newest valid checkpoint + WAL replay.

        Checkpoints are tried newest-first; a corrupt one is skipped in
        favour of an older one (the WAL then replays further back).  If
        every existing checkpoint fails verification, a
        :class:`CheckpointError` aggregating the failures is raised --
        recovery never silently restarts from scratch when snapshots
        exist.  ``config``/``schema_name``/feature flags apply only when
        the directory has no checkpoint at all (WAL-only recovery of a
        session that never checkpointed).
        """
        directory = Path(directory)
        if not directory.is_dir():
            raise CheckpointError(
                f"cannot recover from {directory}: no such directory"
            )
        base = None
        failures: list[str] = []
        for candidate in _checkpoint_candidates(
            directory, _CHECKPOINT_FILE_RE, want_dir=False
        ):
            try:
                base = SchemaSession.restore(candidate)
                break
            except CheckpointError as error:
                failures.append(f"{candidate.name}: {error}")
        if base is None and failures:
            raise CheckpointError(
                "no checkpoint under "
                f"{directory} could be restored: " + "; ".join(failures)
            )
        if base is not None:
            session = cls(
                directory,
                base.config,
                schema_name=base.schema_name,
                fsync=fsync,
                wal_batch_every=wal_batch_every,
                wal_segment_bytes=wal_segment_bytes,
                keep_checkpoints=keep_checkpoints,
                retain_union=base._retain_union,
                streaming_postprocess=base._streaming,
                track_keys=base._track_keys,
                _resume=True,
            )
            session._adopt_state(base._dstate)
            session.reports = base.reports
            session._timer = base._timer
            session._result = base._result
        else:
            session = cls(
                directory,
                config,
                schema_name=schema_name,
                fsync=fsync,
                wal_batch_every=wal_batch_every,
                wal_segment_bytes=wal_segment_bytes,
                keep_checkpoints=keep_checkpoints,
                retain_union=retain_union,
                streaming_postprocess=streaming_postprocess,
                track_keys=track_keys,
                _resume=True,
            )
        session._replay_wal()
        return session

    def _replay_wal(self) -> None:
        """Apply every WAL record strictly after the restored position."""
        _replay_wal_records(self)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Seal the WAL (flush + fsync its open segment)."""
        self._wal.close()

    def __enter__(self) -> "DurableSchemaSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _replay_record(session, payload: bytes) -> None:
    """Re-apply one WAL record through the session's own feed methods."""
    kind, body = payload[:1], payload[1:]
    change_set = ChangeSet.from_wire(body)
    if kind == _KIND_BATCH:
        graph = PropertyGraph(f"{session.schema_name}-replay")
        for node in change_set.nodes:
            graph.put_node(node)
        for edge in change_set.edges:
            graph.add_edge(edge)
        session.add_batch(graph)
    elif kind == _KIND_CHANGESET:
        session.apply(change_set)
    else:
        raise WALCorruptError(
            f"unknown WAL record kind {kind!r} (payload of a newer build?)"
        )


class DurableShardedSchemaSession(ShardedSchemaSession):
    """A :class:`ShardedSchemaSession` with a parent-level WAL.

    Change-sets are logged once, *before* partitioning, in the parent
    process; workers never touch the log.  Checkpoints are manifest
    directories ``checkpoint-<sequence>/`` under the session directory.
    Worker deaths are handled by the base class's retry/degrade
    machinery; this class adds whole-process crash recovery on top.
    """

    def __init__(
        self,
        directory: str | Path,
        config: PGHiveConfig | None = None,
        schema_name: str = "sharded-schema",
        *,
        n_shards: int = 4,
        parallel: bool = False,
        fsync: str = "batch",
        wal_batch_every: int = 8,
        wal_segment_bytes: int = 8 * 1024 * 1024,
        keep_checkpoints: int = 2,
        retain_union: bool | None = None,
        streaming_postprocess: bool | None = None,
        track_keys: bool | None = None,
        max_shard_retries: int = 2,
        retry_backoff: float = 0.05,
        resync_every: int = 64,
        _resume: bool = False,
    ) -> None:
        if keep_checkpoints < 1:
            raise ConfigurationError(
                f"keep_checkpoints must be >= 1, got {keep_checkpoints}"
            )
        directory = Path(directory)
        if not _resume and _has_durable_state(
            directory, _CHECKPOINT_DIR_RE, want_dir=True
        ):
            raise ConfigurationError(
                f"{directory} already holds durable session state; resume "
                "it with DurableShardedSchemaSession.recover(...) instead "
                "of constructing a fresh session over it"
            )
        directory.mkdir(parents=True, exist_ok=True)
        super().__init__(
            config,
            schema_name=schema_name,
            n_shards=n_shards,
            parallel=parallel,
            retain_union=retain_union,
            streaming_postprocess=streaming_postprocess,
            track_keys=track_keys,
            max_shard_retries=max_shard_retries,
            retry_backoff=retry_backoff,
            resync_every=resync_every,
        )
        self.directory = directory
        self.keep_checkpoints = int(keep_checkpoints)
        self._replaying = False
        self._wal = WriteAheadLog(
            directory / _WAL_DIR,
            fsync=fsync,
            batch_every=wal_batch_every,
            segment_bytes=wal_segment_bytes,
        )

    # ------------------------------------------------------------------
    # Logged change feed (add_batch routes through apply in the base)
    # ------------------------------------------------------------------
    @property
    def wal(self) -> WriteAheadLog:
        """The session's write-ahead log."""
        return self._wal

    def apply(self, change_set: ChangeSet) -> ShardedChangeReport:
        if self._replaying:
            return super().apply(change_set)
        return _logged_apply(
            self,
            _KIND_CHANGESET,
            change_set,
            lambda: super(DurableShardedSchemaSession, self).apply(change_set),
        )

    # ------------------------------------------------------------------
    # Checkpoints
    # ------------------------------------------------------------------
    def checkpoint(self, directory: str | Path | None = None) -> Path:
        """Write a manifest checkpoint; prune WAL and stale snapshots.

        Same contract as the single-session variant: no argument means
        an internal ``checkpoint-<sequence>/`` directory that recovery,
        WAL pruning, and retention manage (pruning stops at the oldest
        retained manifest so fallback replay never hits a gap); an
        explicit path writes a plain portable manifest checkpoint.
        """
        self._wal.sync()
        if directory is None:
            target = self.directory / f"checkpoint-{self._sequence:012d}"
            super().checkpoint(target)
            self._prune_checkpoints()
            self._wal.prune(
                _oldest_retained_sequence(
                    self.directory, _CHECKPOINT_DIR_RE, want_dir=True
                )
            )
            return target
        return super().checkpoint(Path(directory))

    def _prune_checkpoints(self) -> None:
        candidates = _checkpoint_candidates(
            self.directory, _CHECKPOINT_DIR_RE, want_dir=True
        )
        for stale in candidates[self.keep_checkpoints :]:
            shutil.rmtree(stale, ignore_errors=True)

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    @classmethod
    def recover(
        cls,
        directory: str | Path,
        *,
        parallel: bool | None = None,
        fsync: str = "batch",
        wal_batch_every: int = 8,
        wal_segment_bytes: int = 8 * 1024 * 1024,
        keep_checkpoints: int = 2,
        config: PGHiveConfig | None = None,
        schema_name: str = "sharded-schema",
        n_shards: int = 4,
        retain_union: bool | None = None,
        streaming_postprocess: bool | None = None,
        track_keys: bool | None = None,
        max_shard_retries: int = 2,
        retry_backoff: float = 0.05,
        resync_every: int = 64,
    ) -> "DurableShardedSchemaSession":
        """Sharded analogue of :meth:`DurableSchemaSession.recover`.

        ``parallel`` overrides the restored execution mode; the shape
        parameters (``config``/``n_shards``/flags) apply only when no
        checkpoint exists yet (WAL-only recovery).
        """
        directory = Path(directory)
        if not directory.is_dir():
            raise CheckpointError(
                f"cannot recover from {directory}: no such directory"
            )
        base = None
        failures: list[str] = []
        for candidate in _checkpoint_candidates(
            directory, _CHECKPOINT_DIR_RE, want_dir=True
        ):
            try:
                base = ShardedSchemaSession.restore(
                    candidate, parallel=parallel
                )
                break
            except CheckpointError as error:
                failures.append(f"{candidate.name}: {error}")
        if base is None and failures:
            raise CheckpointError(
                "no checkpoint under "
                f"{directory} could be restored: " + "; ".join(failures)
            )
        if base is not None:
            session = cls(
                directory,
                base.config,
                schema_name=base.schema_name,
                n_shards=base.n_shards,
                parallel=base.parallel,
                fsync=fsync,
                wal_batch_every=wal_batch_every,
                wal_segment_bytes=wal_segment_bytes,
                keep_checkpoints=keep_checkpoints,
                retain_union=base._retain_union,
                streaming_postprocess=base._streaming,
                track_keys=base._track_keys,
                max_shard_retries=max_shard_retries,
                retry_backoff=retry_backoff,
                resync_every=resync_every,
                _resume=True,
            )
            session._adopt_restored(base)
        else:
            session = cls(
                directory,
                config,
                schema_name=schema_name,
                n_shards=n_shards,
                parallel=bool(parallel),
                fsync=fsync,
                wal_batch_every=wal_batch_every,
                wal_segment_bytes=wal_segment_bytes,
                keep_checkpoints=keep_checkpoints,
                retain_union=retain_union,
                streaming_postprocess=streaming_postprocess,
                track_keys=track_keys,
                max_shard_retries=max_shard_retries,
                retry_backoff=retry_backoff,
                resync_every=resync_every,
                _resume=True,
            )
        session._replay_wal()
        return session

    def _adopt_restored(self, base: ShardedSchemaSession) -> None:
        """Transplant a restored base session's live innards.

        The donor is neutralised afterwards (its pools and shard
        sessions now belong to this session); do not keep using it.
        """
        self._registry = base._registry
        self._interner = base._interner
        self._interner_pinned = base._interner_pinned
        self._signatures = base._signatures
        self._sequence = base._sequence
        self.reports = base.reports
        self._shards = base._shards
        self._pools = base._pools
        self._shard_states = base._shard_states
        self._shard_dirty = base._shard_dirty
        self._merged_state = base._merged_state
        self._pending = base._pending
        self._degraded = base._degraded
        base._pools = None
        base._shards = None

    def _replay_wal(self) -> None:
        """Apply every WAL record strictly after the restored position."""
        _replay_wal_records(self)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Seal the WAL and shut down worker pools."""
        self._wal.close()
        super().close()

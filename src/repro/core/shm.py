"""Zero-copy shared-memory handoff for columnar change-sets.

The parallel sharded session historically shipped every per-shard
change-set through ``ProcessPoolExecutor`` as a pickle -- the payload was
copied four times (pickle, pipe write, pipe read, unpickle) before a
worker saw a single row.  This module packs the columnar
:class:`~repro.graph.columnar.ElementBatch` of a change-set into one
``multiprocessing.shared_memory`` block instead, so the executor hop
carries only a small picklable :class:`ShmChangeSet` descriptor (block
name + layout + content side tables) and workers map the numeric columns
in place as read-only numpy views.

Block layout
------------

One block per change-set, packed as 8-byte-aligned segments described by
the descriptor's ``meta`` dict:

* dense *code* columns (``int64``): per-row indices into batch-local side
  tables for label sets, key sets, structural signatures, and endpoint
  label tokens.  Interner ids are process-local and never cross the
  process boundary; the side tables carry content (sorted labels, key
  tuples, shape strings, token strings) exactly like the WAL wire
  encoding, and the decoder re-interns each distinct entry once --
  O(distinct structures) -- then remaps the code columns through small
  lookup-table arrays in one vectorised gather.
* variable-width string columns (element/source/target ids) as an
  ``int64`` offset array plus a UTF-8 data blob.
* property value columns as a raw row-index array plus a typed value
  segment: ``i8``/``f8``/``bool`` payloads pack natively, ``str`` packs
  offsets+blob, anything mixed falls back to a pickled list (``obj``).
  Decoded values are materialised as Python scalars so datatype-shape
  classification (exact ``type()`` lookups) is unaffected.

Lifecycle
---------

Blocks are owned by a :class:`ShmBlockRegistry`: ``create`` registers a
``weakref.finalize`` callback that closes *and* unlinks the block, so
even an abandoned registry (interpreter exit, crashed coordinator) never
leaks ``/dev/shm`` entries; ``multiprocessing``'s resource tracker is a
second net behind that.  Consumers attach by name, read, and ``close()``
in a ``finally`` -- they never unlink.  Reference counts let pipelined
dispatch hold one block across several in-flight futures.
"""

from __future__ import annotations

import pickle
import secrets
import threading
import weakref
from dataclasses import dataclass, field
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from repro.graph.changes import ChangeSet
from repro.graph.columnar import (
    ColumnarElements,
    ElementBatch,
    Interner,
    ValueColumn,
    _empty_block,
    _object_array,
    global_interner,
)

#: every block this module creates carries this name prefix, so leak
#: checks (and humans inspecting ``/dev/shm``) can attribute entries.
SHM_NAME_PREFIX = "pghive-"

_ALIGN = 8

#: names created by THIS process (any registry).  ``_attach`` must not
#: unregister those from the resource tracker -- the creator's own
#: registration is the crash-safety net that ``unlink`` retires.
_CREATED_NAMES: set[str] = set()
_CREATED_LOCK = threading.Lock()


def _tracker_pid() -> int | None:
    """Pid of this process's resource-tracker daemon (None if unstarted)."""
    return getattr(resource_tracker._resource_tracker, "_pid", None)


def _fresh_name() -> str:
    # Block names only need process-level uniqueness; they never feed
    # discovery state, so an entropy source is fine here.
    return SHM_NAME_PREFIX + secrets.token_hex(8)


def _reclaim_block(block: shared_memory.SharedMemory) -> None:
    """Close and unlink one owned block, tolerating repeats/races."""
    try:
        block.close()
    except OSError:
        pass
    try:
        block.unlink()
    except FileNotFoundError:
        pass


@dataclass
class _BlockEntry:
    block: shared_memory.SharedMemory
    finalizer: weakref.finalize
    refs: int = 1


class ShmBlockRegistry:
    """Ref-counted owner of created shared-memory blocks.

    ``create`` hands out a block whose reclamation (``close`` +
    ``unlink``) is guaranteed by a finalizer tied to the registry, so
    blocks are reclaimed at the latest when the registry is collected or
    the interpreter exits -- even if ``release`` is never called (a
    coordinator that died mid-dispatch).  ``acquire``/``release`` adjust
    the reference count; the block is reclaimed when it reaches zero.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._entries: dict[str, _BlockEntry] = {}

    def create(self, nbytes: int) -> shared_memory.SharedMemory:
        """A fresh owned block of at least ``nbytes`` bytes (refcount 1)."""
        block = shared_memory.SharedMemory(
            name=_fresh_name(), create=True, size=max(int(nbytes), 1)
        )
        finalizer = weakref.finalize(self, _reclaim_block, block)
        with _CREATED_LOCK:
            _CREATED_NAMES.add(block.name)
        with self._lock:
            self._entries[block.name] = _BlockEntry(block, finalizer)
        return block

    def acquire(self, name: str) -> None:
        """Add one reference to an owned block."""
        with self._lock:
            entry = self._entries.get(name)
            if entry is None:
                raise KeyError(f"unknown shared-memory block {name!r}")
            entry.refs += 1

    def release(self, name: str) -> None:
        """Drop one reference; reclaims the block at zero.  Idempotent
        for names already reclaimed (recovery paths may release twice).
        """
        with self._lock:
            entry = self._entries.get(name)
            if entry is None:
                return
            entry.refs -= 1
            if entry.refs > 0:
                return
            del self._entries[name]
        # Reclaim outside the lock: unlink hits the filesystem.
        entry.finalizer()

    def release_all(self) -> None:
        """Force-reclaim every owned block regardless of refcounts."""
        with self._lock:
            entries = list(self._entries.values())
            self._entries.clear()
        for entry in entries:
            entry.finalizer()

    def live_blocks(self) -> tuple[str, ...]:
        """Names of currently owned (unreclaimed) blocks, sorted."""
        with self._lock:
            return tuple(sorted(self._entries))

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


_GLOBAL_REGISTRY = ShmBlockRegistry()


def global_registry() -> ShmBlockRegistry:
    """The process-wide block registry (coordinator side)."""
    return _GLOBAL_REGISTRY


_AVAILABLE: bool | None = None
_AVAILABLE_LOCK = threading.Lock()


def shm_available() -> bool:
    """True when POSIX shared memory actually works on this host.

    Probed once per process by creating and immediately reclaiming a
    minimal block; platforms without ``/dev/shm`` (or with it mounted
    read-only) degrade to the pickle handoff.
    """
    global _AVAILABLE
    if _AVAILABLE is None:
        with _AVAILABLE_LOCK:
            if _AVAILABLE is None:
                try:
                    probe = shared_memory.SharedMemory(
                        name=_fresh_name(), create=True, size=_ALIGN
                    )
                except OSError:
                    _AVAILABLE = False
                else:
                    _reclaim_block(probe)
                    _AVAILABLE = True
    return _AVAILABLE


# ----------------------------------------------------------------------
# Descriptor + segment plumbing
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ShmChangeSet:
    """Picklable handle to one change-set packed in shared memory.

    ``block`` names the shared-memory block, ``nbytes`` is the logical
    payload size, ``meta`` holds the segment layout plus the batch-local
    content side tables.  The descriptor is what actually crosses the
    executor pipe -- typically a few hundred bytes regardless of row
    count.
    """

    block: str
    nbytes: int
    meta: dict = field(repr=False)
    #: pid of the creator's resource-tracker daemon.  Fork-started
    #: workers share that daemon; they must then *keep* the creator's
    #: registration on attach (see :func:`_attach`).
    tracker_pid: int | None = None

    def wire_nbytes(self) -> int:
        """Bytes this descriptor itself costs on the executor hop."""
        return len(pickle.dumps(self, protocol=pickle.HIGHEST_PROTOCOL))


class _BlockWriter:
    """Two-phase segment packer: reserve layout first, copy once."""

    def __init__(self) -> None:
        self._parts: list[tuple[int, np.ndarray]] = []
        self.size = 0

    def reserve(self, array: np.ndarray) -> dict:
        array = np.ascontiguousarray(array)
        offset = self.size
        self._parts.append((offset, array))
        self.size = -(-(offset + array.nbytes) // _ALIGN) * _ALIGN
        return {
            "off": offset,
            "n": int(array.size),
            "dtype": array.dtype.str,
        }

    def write_into(self, buf) -> None:
        for offset, array in self._parts:
            if array.size:
                np.frombuffer(
                    buf, dtype=array.dtype, count=array.size, offset=offset
                )[:] = array


def _segment_view(buf, segment: dict) -> np.ndarray:
    """Read-only numpy view of one packed segment (no copy)."""
    view = np.frombuffer(
        buf,
        dtype=np.dtype(segment["dtype"]),
        count=segment["n"],
        offset=segment["off"],
    )
    view.flags.writeable = False
    return view


def _reserve_strings(writer: _BlockWriter, items: list[str]) -> dict:
    encoded = [item.encode("utf-8") for item in items]
    offsets = np.zeros(len(encoded) + 1, dtype=np.int64)
    if encoded:
        np.cumsum([len(blob) for blob in encoded], out=offsets[1:])
    data = b"".join(encoded)
    return {
        "offsets": writer.reserve(offsets),
        "data": writer.reserve(np.frombuffer(data, dtype=np.uint8)),
    }


def _read_strings(buf, segment: dict) -> list[str]:
    bounds = _segment_view(buf, segment["offsets"]).tolist()
    raw = _segment_view(buf, segment["data"]).tobytes()
    return [
        raw[bounds[index] : bounds[index + 1]].decode("utf-8")
        for index in range(len(bounds) - 1)
    ]


def _reserve_values(writer: _BlockWriter, values: list) -> dict:
    """Typed packing of one value column (Python scalars in)."""
    kinds = set(map(type, values))
    if kinds == {bool}:
        return {
            "tag": "bool",
            "data": writer.reserve(np.asarray(values, dtype=np.uint8)),
        }
    if kinds == {int}:
        try:
            packed = np.asarray(values, dtype=np.int64)
        except OverflowError:
            pass
        else:
            return {"tag": "i8", "data": writer.reserve(packed)}
    elif kinds == {float}:
        return {
            "tag": "f8",
            "data": writer.reserve(np.asarray(values, dtype=np.float64)),
        }
    elif kinds == {str}:
        return {"tag": "str", **_reserve_strings(writer, values)}
    blob = pickle.dumps(values, protocol=pickle.HIGHEST_PROTOCOL)
    return {
        "tag": "obj",
        "data": writer.reserve(np.frombuffer(blob, dtype=np.uint8)),
    }


def _read_values(buf, column_meta: dict) -> list:
    tag = column_meta["tag"]
    if tag == "str":
        return _read_strings(buf, column_meta)
    view = _segment_view(buf, column_meta["data"])
    if tag == "bool":
        return [value != 0 for value in view.tolist()]
    if tag in ("i8", "f8"):
        # .tolist() materialises Python int/float scalars: shape
        # classification does exact type() lookups downstream.
        return view.tolist()
    return pickle.loads(view.tobytes())


# ----------------------------------------------------------------------
# Encoding (coordinator side)
# ----------------------------------------------------------------------
def _encode_block(
    writer: _BlockWriter,
    block: ColumnarElements,
    interner: Interner,
    token_code,
) -> dict:
    count = len(block)
    meta: dict = {"count": count}
    if count == 0:
        return meta
    meta["ids"] = _reserve_strings(writer, block.ids)

    unique_labelsets, labelset_codes = np.unique(
        block.labelset_ids, return_inverse=True
    )
    labelset_index = {
        int(lid): code for code, lid in enumerate(unique_labelsets.tolist())
    }
    meta["labelsets"] = [
        sorted(interner.labelset(int(lid)).labels)
        for lid in unique_labelsets.tolist()
    ]
    meta["labelset_codes"] = writer.reserve(labelset_codes.astype(np.int64))

    unique_keysets, keyset_codes = np.unique(
        block.keyset_ids, return_inverse=True
    )
    keyset_index = {
        int(kid): code for code, kid in enumerate(unique_keysets.tolist())
    }
    meta["keysets"] = [
        interner.keyset(int(kid)).keys for kid in unique_keysets.tolist()
    ]
    meta["keyset_codes"] = writer.reserve(keyset_codes.astype(np.int64))

    unique_signatures, signature_codes = np.unique(
        block.signature_ids, return_inverse=True
    )
    entries = []
    for sid in unique_signatures.tolist():
        signature = interner.element_signature(int(sid))
        entries.append(
            (
                labelset_index[signature.labelset_id],
                keyset_index[signature.keyset_id],
                signature.shape,
                token_code(interner.string(signature.src_sid))
                if signature.src_sid >= 0
                else -1,
                token_code(interner.string(signature.tgt_sid))
                if signature.tgt_sid >= 0
                else -1,
            )
        )
    meta["signatures"] = entries
    meta["signature_codes"] = writer.reserve(signature_codes.astype(np.int64))

    columns: dict[str, dict] = {}
    for key, column in block.columns.items():
        columns[key] = {
            "rows": writer.reserve(column.rows.astype(np.int64)),
            **_reserve_values(writer, column.values.tolist()),
        }
    meta["columns"] = columns

    if block.is_edges:
        meta["source_ids"] = _reserve_strings(writer, block.source_ids)
        meta["target_ids"] = _reserve_strings(writer, block.target_ids)
        for field_name, sids in (
            ("src", block.src_token_sids),
            ("tgt", block.tgt_token_sids),
        ):
            unique_sids, codes = np.unique(sids, return_inverse=True)
            meta[f"{field_name}_tokens"] = [
                token_code(interner.string(int(sid)))
                for sid in unique_sids.tolist()
            ]
            meta[f"{field_name}_token_codes"] = writer.reserve(
                codes.astype(np.int64)
            )
    return meta


def _pack_changeset(change_set: ChangeSet, writer: _BlockWriter) -> dict:
    """Reserve every segment of ``change_set`` and build its meta dict."""
    batch = change_set.columnar
    tokens: list[str] = []
    token_index: dict[str, int] = {}

    def token_code(text: str) -> int:
        code = token_index.get(text)
        if code is None:
            code = token_index[text] = len(tokens)
            tokens.append(text)
        return code

    meta = {
        "delete_nodes": list(change_set.delete_nodes),
        "delete_edges": list(change_set.delete_edges),
        "stubs": sorted(change_set.stub_node_ids),
        "nodes": _encode_block(writer, batch.nodes, batch.interner, token_code),
        "edges": _encode_block(writer, batch.edges, batch.interner, token_code),
    }
    meta["tokens"] = tokens
    return meta


def encode_changeset_shm(
    change_set: ChangeSet,
    registry: ShmBlockRegistry | None = None,
) -> ShmChangeSet:
    """Pack a columnar change-set into one owned shared-memory block.

    The returned descriptor is what crosses the executor pipe; the
    caller (or the registry's finalizers) must eventually ``release``
    the named block.  Element-wise change-sets have no columnar payload
    to map and must keep the pickle handoff.
    """
    batch = change_set.columnar
    if batch is None:
        raise ValueError(
            "change-set has no columnar payload; use the pickle handoff"
        )
    # Explicit None check: an *empty* registry is falsy (``__len__``),
    # and silently swapping it for the global one would strand the
    # caller's release() calls on the wrong owner.
    registry = _GLOBAL_REGISTRY if registry is None else registry
    writer = _BlockWriter()
    meta = _pack_changeset(change_set, writer)
    block = registry.create(writer.size)
    try:
        writer.write_into(block.buf)
    except BaseException:
        registry.release(block.name)
        raise
    return ShmChangeSet(
        block=block.name,
        nbytes=writer.size,
        meta=meta,
        tracker_pid=_tracker_pid(),
    )


# ----------------------------------------------------------------------
# Decoding (worker side)
# ----------------------------------------------------------------------
def _attach(
    name: str, creator_tracker_pid: int | None = None
) -> shared_memory.SharedMemory:
    """Attach to an existing block without adopting ownership.

    Attaching registers the segment with this process's resource
    tracker, which would try to unlink it again at interpreter exit --
    wrong process: only the creating registry unlinks.  Unregister right
    away (Python 3.13's ``track=False`` made this official) -- *unless*
    this process shares the creator's tracker daemon (we created the
    block, or we are a fork-started worker): there the attach-side
    registration was a duplicate add into the creator's own entry, and
    unregistering would strip the crash-safety net out from under the
    creator's eventual ``unlink``.
    """
    block = shared_memory.SharedMemory(name=name)
    with _CREATED_LOCK:
        created_here = name in _CREATED_NAMES
    shared_tracker = (
        creator_tracker_pid is not None
        and creator_tracker_pid == _tracker_pid()
    )
    if not created_here and not shared_tracker:
        try:
            resource_tracker.unregister(block._name, "shared_memory")
        except Exception:  # pragma: no cover - tracker internals vary
            pass
    return block


def _decode_block(
    buf,
    meta: dict,
    kind: str,
    interner: Interner,
    token_sids: list[int],
) -> ColumnarElements:
    if meta["count"] == 0:
        return _empty_block(kind)
    ids = _read_strings(buf, meta["ids"])

    labelset_lut = np.fromiter(
        (
            interner.intern_labels(frozenset(labels))
            for labels in meta["labelsets"]
        ),
        dtype=np.intp,
        count=len(meta["labelsets"]),
    )
    token_lut = np.fromiter(
        (
            interner.labelset(int(lid)).token_sid
            for lid in labelset_lut.tolist()
        ),
        dtype=np.intp,
        count=len(labelset_lut),
    )
    keyset_lut = np.fromiter(
        (interner.intern_keys(keys) for keys in meta["keysets"]),
        dtype=np.intp,
        count=len(meta["keysets"]),
    )
    signature_lut = np.fromiter(
        (
            interner.intern_element_signature(
                int(labelset_lut[labelset_code]),
                int(keyset_lut[keyset_code]),
                shape,
                token_sids[src] if src >= 0 else -1,
                token_sids[tgt] if tgt >= 0 else -1,
            )
            for labelset_code, keyset_code, shape, src, tgt in meta[
                "signatures"
            ]
        ),
        dtype=np.intp,
        count=len(meta["signatures"]),
    )

    # The code columns are zero-copy views into the block; the fancy
    # LUT gathers below produce fresh owned arrays, so nothing keeps a
    # reference into the buffer once this function returns.
    labelset_codes = _segment_view(buf, meta["labelset_codes"])
    labelset_ids = labelset_lut[labelset_codes]
    row_token_sids = token_lut[labelset_codes]
    keyset_ids = keyset_lut[_segment_view(buf, meta["keyset_codes"])]
    signature_ids = signature_lut[_segment_view(buf, meta["signature_codes"])]

    columns: dict[str, ValueColumn] = {}
    for key, column_meta in meta["columns"].items():
        rows = _segment_view(buf, column_meta["rows"]).astype(np.intp)
        columns[key] = ValueColumn(rows, _object_array(_read_values(buf, column_meta)))

    source_ids = target_ids = None
    src_token = tgt_token = None
    if kind == "edges":
        source_ids = _read_strings(buf, meta["source_ids"])
        target_ids = _read_strings(buf, meta["target_ids"])
        src_lut = np.fromiter(
            (token_sids[code] for code in meta["src_tokens"]),
            dtype=np.intp,
            count=len(meta["src_tokens"]),
        )
        tgt_lut = np.fromiter(
            (token_sids[code] for code in meta["tgt_tokens"]),
            dtype=np.intp,
            count=len(meta["tgt_tokens"]),
        )
        src_token = src_lut[_segment_view(buf, meta["src_token_codes"])]
        tgt_token = tgt_lut[_segment_view(buf, meta["tgt_token_codes"])]

    return ColumnarElements(
        kind,
        ids,
        labelset_ids,
        row_token_sids,
        keyset_ids,
        columns,
        source_ids,
        target_ids,
        src_token,
        tgt_token,
        signature_ids,
    )


def _unpack_changeset(buf, meta: dict, interner: Interner) -> ChangeSet:
    """Rebuild a change-set from any packed buffer (shm block or bytes)."""
    token_sids = [interner.intern_string(token) for token in meta["tokens"]]
    nodes = _decode_block(buf, meta["nodes"], "nodes", interner, token_sids)
    edges = _decode_block(buf, meta["edges"], "edges", interner, token_sids)
    return ChangeSet(
        delete_nodes=list(meta["delete_nodes"]),
        delete_edges=list(meta["delete_edges"]),
        stub_node_ids=frozenset(meta["stubs"]),
        columnar=ElementBatch(nodes, edges, interner),
    )


def decode_changeset_shm(
    descriptor: ShmChangeSet, interner: Interner | None = None
) -> ChangeSet:
    """Rebuild a change-set from its shared-memory descriptor.

    Attaches to the named block, re-interns the content side tables
    against ``interner`` (the process-wide one by default), remaps the
    code columns through LUT gathers, and detaches.  The returned batch
    owns all of its arrays -- the block can be unlinked immediately
    after this returns.
    """
    interner = interner or global_interner()
    block = _attach(descriptor.block, descriptor.tracker_pid)
    try:
        return _unpack_changeset(block.buf, descriptor.meta, interner)
    finally:
        block.close()


def rebase_changeset(change_set: ChangeSet, interner: Interner) -> ChangeSet:
    """Rebuild a columnar change-set's batch against ``interner``.

    Same content pack/unpack as the shared-memory handoff, through a
    plain in-process buffer: every label set, key set, signature, and
    token is re-interned by content so the returned batch's ids live in
    ``interner``'s lineage.  Change-sets that already share ``interner``
    (or carry no columnar payload) come back unchanged.  Recovery paths
    use this to replay coordinator-lineage parts into a session whose
    interner has a different id history.
    """
    batch = change_set.columnar
    if batch is None or batch.interner is interner:
        return change_set
    writer = _BlockWriter()
    meta = _pack_changeset(change_set, writer)
    buffer = bytearray(writer.size)
    writer.write_into(buffer)
    return _unpack_changeset(buffer, meta, interner)

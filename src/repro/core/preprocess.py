"""Preprocessing: representation vectors of section 4.1.

Every node becomes ``f_v in R^(d+K)``: a Word2Vec embedding of its label
token concatenated with a binary indicator over the dataset's distinct node
property keys.  Every edge becomes ``f_e in R^(3d+Q)``: embeddings of the
edge token and both endpoint tokens, plus a binary indicator over the edge
property keys.  Unlabeled elements embed as the zero vector (Example 3).

For the MinHash variant, the same information is exposed as token *sets*:
the element's label token (plus role-tagged endpoint tokens for edges)
together with its property keys.  This keeps the approach hybrid in both
variants; the label contribution disappears automatically when labels are
absent, leaving the pure property-set behaviour the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import PGHiveConfig
from repro.embedding.corpus import build_label_corpus
from repro.embedding.word2vec import Word2Vec
from repro.graph.model import PropertyGraph
from repro.util import derive_seed


@dataclass
class ElementRecord:
    """Per-element metadata flowing from preprocessing into type extraction."""

    element_id: str
    token: str
    labels: frozenset[str]
    property_keys: frozenset[str]
    source_token: str | None = None
    target_token: str | None = None

    @property
    def is_labeled(self) -> bool:
        """True when the element carries at least one label."""
        return bool(self.labels)


@dataclass
class FeatureMatrix:
    """Clustering input for one element kind (nodes or edges)."""

    records: list[ElementRecord]
    vectors: np.ndarray
    token_sets: list[frozenset[str]]
    property_keys: list[str] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.records)


class Preprocessor:
    """Trains the shared Word2Vec model and vectorises nodes and edges.

    Label embeddings are L2-normalised and scaled by ``config.label_weight``
    before concatenation with the binary property block, so a label
    disagreement moves a vector by a distance comparable to a few property
    flips -- without this, raw Word2Vec magnitudes (which start near zero)
    would let structurally identical elements of different types collide.
    The zero vector of unlabeled elements is preserved by normalisation.
    """

    def __init__(self, config: PGHiveConfig) -> None:
        self.config = config
        self.model: Word2Vec | None = None

    def _scaled_embedding(self, model: Word2Vec, token: str) -> np.ndarray:
        """Blend of trained-semantic and deterministic-identity directions.

        Skip-gram training can collapse distinct labels that share contexts
        onto nearly identical directions; blending in the content-derived
        identity vector guarantees distinct tokens stay separated (the
        hybrid vectors must "prevent semantically different nodes from
        being merged", section 4.1) while identical label sets still map to
        identical embeddings everywhere.
        """
        if not token:
            return np.zeros(self.config.embedding_dim)
        blend = np.zeros(self.config.embedding_dim)
        for component in (model.vector(token), model.initial_vector(token)):
            norm = float(np.linalg.norm(component))
            if norm > 0.0:
                blend += component / norm
        norm = float(np.linalg.norm(blend))
        if norm == 0.0:
            blend = model.initial_vector(token)
            norm = float(np.linalg.norm(blend)) or 1.0
        return blend * (self.config.label_weight / norm)

    def fit(self, graph: PropertyGraph) -> "Preprocessor":
        """Train the label-token Word2Vec model on ``graph``."""
        corpus = build_label_corpus(
            graph,
            max_sentences=self.config.max_corpus_sentences,
            seed=derive_seed(self.config.seed, "corpus"),
        )
        self.model = Word2Vec(
            dim=self.config.embedding_dim,
            window=self.config.embedding_window,
            negative=self.config.embedding_negative,
            epochs=self.config.embedding_epochs,
            seed=derive_seed(self.config.seed, "word2vec"),
        ).fit(corpus)
        return self

    def _require_model(self) -> Word2Vec:
        if self.model is None:
            raise RuntimeError("Preprocessor.fit must run before transforming")
        return self.model

    def node_features(self, graph: PropertyGraph) -> FeatureMatrix:
        """Vectorise every node of ``graph``."""
        model = self._require_model()
        keys = graph.all_node_property_keys()
        key_index = {key: position for position, key in enumerate(keys)}
        dim = model.dim

        records: list[ElementRecord] = []
        token_sets: list[frozenset[str]] = []
        vectors = np.zeros((graph.node_count, dim + len(keys)))
        token_cache: dict[str, np.ndarray] = {}
        for row, node in enumerate(graph.nodes()):
            token = node.token
            embedding = token_cache.get(token)
            if embedding is None:
                embedding = self._scaled_embedding(model, token)
                token_cache[token] = embedding
            vectors[row, :dim] = embedding
            for key in node.properties:
                vectors[row, dim + key_index[key]] = 1.0
            records.append(
                ElementRecord(node.node_id, token, node.labels, node.property_keys)
            )
            tokens = set(node.properties)
            if token:
                tokens.add(f"label:{token}")
            token_sets.append(frozenset(tokens))
        return FeatureMatrix(records, vectors, token_sets, keys)

    def edge_features(self, graph: PropertyGraph) -> FeatureMatrix:
        """Vectorise every edge of ``graph`` (3 embeddings + binary props)."""
        model = self._require_model()
        keys = graph.all_edge_property_keys()
        key_index = {key: position for position, key in enumerate(keys)}
        dim = model.dim

        records: list[ElementRecord] = []
        token_sets: list[frozenset[str]] = []
        vectors = np.zeros((graph.edge_count, 3 * dim + len(keys)))
        token_cache: dict[str, np.ndarray] = {}

        def embed(token: str) -> np.ndarray:
            cached = token_cache.get(token)
            if cached is None:
                cached = self._scaled_embedding(model, token)
                token_cache[token] = cached
            return cached

        for row, edge in enumerate(graph.edges()):
            source_token = graph.node(edge.source_id).token
            target_token = graph.node(edge.target_id).token
            vectors[row, :dim] = embed(edge.token)
            vectors[row, dim : 2 * dim] = embed(source_token)
            vectors[row, 2 * dim : 3 * dim] = embed(target_token)
            for key in edge.properties:
                vectors[row, 3 * dim + key_index[key]] = 1.0
            records.append(
                ElementRecord(
                    edge.edge_id,
                    edge.token,
                    edge.labels,
                    edge.property_keys,
                    source_token=source_token,
                    target_token=target_token,
                )
            )
            tokens = set(edge.properties)
            if edge.token:
                tokens.add(f"label:{edge.token}")
            if source_token:
                tokens.add(f"src:{source_token}")
            if target_token:
                tokens.add(f"tgt:{target_token}")
            token_sets.append(frozenset(tokens))
        return FeatureMatrix(records, vectors, token_sets, keys)

"""Preprocessing: representation vectors of section 4.1.

Every node becomes ``f_v in R^(d+K)``: a Word2Vec embedding of its label
token concatenated with a binary indicator over the dataset's distinct node
property keys.  Every edge becomes ``f_e in R^(3d+Q)``: embeddings of the
edge token and both endpoint tokens, plus a binary indicator over the edge
property keys.  Unlabeled elements embed as the zero vector (Example 3).

For the MinHash variant, the same information is exposed as token *sets*:
the element's label token (plus role-tagged endpoint tokens for edges)
together with its property keys.  This keeps the approach hybrid in both
variants; the label contribution disappears automatically when labels are
absent, leaving the pure property-set behaviour the paper describes.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field

import numpy as np

from repro.core.config import PGHiveConfig
from repro.embedding.corpus import build_label_corpus, build_label_corpus_columnar
from repro.embedding.word2vec import Word2Vec
from repro.graph.columnar import ColumnarElements, ElementBatch, Interner
from repro.graph.model import PropertyGraph
from repro.util import derive_seed


@dataclass
class ElementRecord:
    """Per-element metadata flowing from preprocessing into type extraction."""

    element_id: str
    token: str
    labels: frozenset[str]
    property_keys: frozenset[str]
    source_token: str | None = None
    target_token: str | None = None
    #: full property map (shared reference, not copied); the streaming
    #: post-processing accumulators fold these values at arrival.
    properties: Mapping[str, object] = field(default_factory=dict)
    #: endpoint node ids (edges only) for distinct-endpoint counters.
    source_id: str | None = None
    target_id: str | None = None

    @property
    def is_labeled(self) -> bool:
        """True when the element carries at least one label."""
        return bool(self.labels)


@dataclass
class FeatureMatrix:
    """Clustering input for one element kind (nodes or edges)."""

    records: list[ElementRecord]
    vectors: np.ndarray
    token_sets: list[frozenset[str]]
    property_keys: list[str] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.records)


@dataclass
class ColumnarFeatures:
    """Clustering input assembled straight from a columnar block.

    Carries the representation vectors (bit-identical to the
    :class:`FeatureMatrix` the element path would build) plus the block
    itself: clustering reads interned id columns instead of per-element
    records, and type extraction records members by row index.
    """

    block: ColumnarElements
    interner: Interner
    vectors: np.ndarray

    def __len__(self) -> int:
        return len(self.block)


class Preprocessor:
    """Trains the shared Word2Vec model and vectorises nodes and edges.

    Label embeddings are L2-normalised and scaled by ``config.label_weight``
    before concatenation with the binary property block, so a label
    disagreement moves a vector by a distance comparable to a few property
    flips -- without this, raw Word2Vec magnitudes (which start near zero)
    would let structurally identical elements of different types collide.
    The zero vector of unlabeled elements is preserved by normalisation.
    """

    def __init__(self, config: PGHiveConfig) -> None:
        self.config = config
        self.model: Word2Vec | None = None
        #: token -> scaled embedding, valid for the current model; survives
        #: across batches so an incremental stream embeds each distinct
        #: token once, not once per batch.
        self._embedding_cache: dict[str, np.ndarray] = {}

    def _scaled_embedding(self, model: Word2Vec, token: str) -> np.ndarray:
        """Blend of trained-semantic and deterministic-identity directions.

        Skip-gram training can collapse distinct labels that share contexts
        onto nearly identical directions; blending in the content-derived
        identity vector guarantees distinct tokens stay separated (the
        hybrid vectors must "prevent semantically different nodes from
        being merged", section 4.1) while identical label sets still map to
        identical embeddings everywhere.
        """
        if not token:
            return np.zeros(self.config.embedding_dim)
        blend = np.zeros(self.config.embedding_dim)
        for component in (model.vector(token), model.initial_vector(token)):
            norm = float(np.linalg.norm(component))
            if norm > 0.0:
                blend += component / norm
        norm = float(np.linalg.norm(blend))
        if norm == 0.0:
            blend = model.initial_vector(token)
            norm = float(np.linalg.norm(blend)) or 1.0
        return blend * (self.config.label_weight / norm)

    def fit(self, graph: PropertyGraph) -> "Preprocessor":
        """Train the label-token Word2Vec model on ``graph``."""
        corpus = build_label_corpus(
            graph,
            max_sentences=self.config.max_corpus_sentences,
            seed=derive_seed(self.config.seed, "corpus"),
        )
        return self._fit_corpus(corpus)

    def fit_batch(self, batch: ElementBatch) -> "Preprocessor":
        """Train on a columnar batch; equivalent to :meth:`fit` on the
        materialised graph (the corpus builders emit identical sentences)."""
        corpus = build_label_corpus_columnar(
            batch,
            max_sentences=self.config.max_corpus_sentences,
            seed=derive_seed(self.config.seed, "corpus"),
        )
        return self._fit_corpus(corpus)

    def _fit_corpus(self, corpus: list[list[str]]) -> "Preprocessor":
        self.model = Word2Vec(
            dim=self.config.embedding_dim,
            window=self.config.embedding_window,
            negative=self.config.embedding_negative,
            epochs=self.config.embedding_epochs,
            seed=derive_seed(self.config.seed, "word2vec"),
        ).fit(corpus)
        self._embedding_cache.clear()
        return self

    def _require_model(self) -> Word2Vec:
        if self.model is None:
            raise RuntimeError("Preprocessor.fit must run before transforming")
        return self.model

    def _embedding_table(self, tokens: list[str]) -> tuple[np.ndarray, np.ndarray]:
        """Embeddings for ``tokens`` as ``(table, row_of_token)``.

        ``table`` holds one scaled embedding per *distinct* token (computed
        at most once per model lifetime, via the persistent cache) and
        ``row_of_token[i]`` indexes the table row of ``tokens[i]``, so the
        caller gathers all element embeddings in one fancy-indexing pass.
        """
        model = self._require_model()
        cache = self._embedding_cache
        table_index: dict[str, int] = {}
        table_rows: list[np.ndarray] = []
        row_of_token = np.empty(len(tokens), dtype=np.intp)
        for position, token in enumerate(tokens):
            row = table_index.get(token)
            if row is None:
                embedding = cache.get(token)
                if embedding is None:
                    embedding = self._scaled_embedding(model, token)
                    cache[token] = embedding
                row = len(table_rows)
                table_index[token] = row
                table_rows.append(embedding)
            row_of_token[position] = row
        if not table_rows:
            return np.zeros((0, self.config.embedding_dim)), row_of_token
        return np.vstack(table_rows), row_of_token

    @staticmethod
    def _indicator_block(
        vectors: np.ndarray,
        offset: int,
        key_index: dict[str, int],
        keys_per_row: list[Iterable[str]],
    ) -> None:
        """Set the binary property-indicator block via index arrays."""
        rows = np.fromiter(
            (
                row
                for row, row_keys in enumerate(keys_per_row)
                for _ in row_keys
            ),
            dtype=np.intp,
        )
        columns = np.fromiter(
            (key_index[key] for row_keys in keys_per_row for key in row_keys),
            dtype=np.intp,
            count=rows.size,
        )
        vectors[rows, offset + columns] = 1.0

    def node_features(self, graph: PropertyGraph) -> FeatureMatrix:
        """Vectorise every node of ``graph``."""
        model = self._require_model()
        keys = graph.all_node_property_keys()
        key_index = {key: position for position, key in enumerate(keys)}
        dim = model.dim

        records: list[ElementRecord] = []
        token_sets: list[frozenset[str]] = []
        tokens_per_row: list[str] = []
        keys_per_row: list[Iterable[str]] = []
        for node in graph.nodes():
            token = node.token
            tokens_per_row.append(token)
            keys_per_row.append(node.properties)
            records.append(
                ElementRecord(
                    node.node_id,
                    token,
                    node.labels,
                    node.property_keys,
                    properties=node.properties,
                )
            )
            tokens = set(node.properties)
            if token:
                tokens.add(f"label:{token}")
            token_sets.append(frozenset(tokens))

        vectors = np.zeros((graph.node_count, dim + len(keys)))
        table, row_of_token = self._embedding_table(tokens_per_row)
        if table.size:
            vectors[:, :dim] = table[row_of_token]
        self._indicator_block(vectors, dim, key_index, keys_per_row)
        return FeatureMatrix(records, vectors, token_sets, keys)

    def edge_features(self, graph: PropertyGraph) -> FeatureMatrix:
        """Vectorise every edge of ``graph`` (3 embeddings + binary props)."""
        model = self._require_model()
        keys = graph.all_edge_property_keys()
        key_index = {key: position for position, key in enumerate(keys)}
        dim = model.dim

        records: list[ElementRecord] = []
        token_sets: list[frozenset[str]] = []
        edge_tokens: list[str] = []
        source_tokens: list[str] = []
        target_tokens: list[str] = []
        keys_per_row: list[Iterable[str]] = []
        for edge in graph.edges():
            source_token = graph.node(edge.source_id).token
            target_token = graph.node(edge.target_id).token
            edge_tokens.append(edge.token)
            source_tokens.append(source_token)
            target_tokens.append(target_token)
            keys_per_row.append(edge.properties)
            records.append(
                ElementRecord(
                    edge.edge_id,
                    edge.token,
                    edge.labels,
                    edge.property_keys,
                    source_token=source_token,
                    target_token=target_token,
                    properties=edge.properties,
                    source_id=edge.source_id,
                    target_id=edge.target_id,
                )
            )
            tokens = set(edge.properties)
            if edge.token:
                tokens.add(f"label:{edge.token}")
            if source_token:
                tokens.add(f"src:{source_token}")
            if target_token:
                tokens.add(f"tgt:{target_token}")
            token_sets.append(frozenset(tokens))

        vectors = np.zeros((graph.edge_count, 3 * dim + len(keys)))
        table, row_of_token = self._embedding_table(
            edge_tokens + source_tokens + target_tokens
        )
        if table.size:
            count = graph.edge_count
            vectors[:, :dim] = table[row_of_token[:count]]
            vectors[:, dim : 2 * dim] = table[row_of_token[count : 2 * count]]
            vectors[:, 2 * dim : 3 * dim] = table[row_of_token[2 * count :]]
        self._indicator_block(vectors, 3 * dim, key_index, keys_per_row)
        return FeatureMatrix(records, vectors, token_sets, keys)

    # ------------------------------------------------------------------
    # Columnar fast path (same vectors, no per-element records)
    # ------------------------------------------------------------------
    def _embedding_rows(
        self, token_sids: np.ndarray, interner: Interner
    ) -> tuple[np.ndarray, np.ndarray]:
        """Embedding table + row index over an interned token-id column.

        One scaled embedding per *distinct* token id (served from the
        persistent string-keyed cache, so the columnar and element paths
        embed identical tokens identically), gathered per element by one
        fancy-indexing pass.
        """
        model = self._require_model()
        cache = self._embedding_cache
        distinct, inverse = np.unique(token_sids, return_inverse=True)
        rows: list[np.ndarray] = []
        for sid in distinct.tolist():
            token = interner.string(int(sid))
            embedding = cache.get(token)
            if embedding is None:
                embedding = self._scaled_embedding(model, token)
                cache[token] = embedding
            rows.append(embedding)
        if not rows:
            return np.zeros((0, self.config.embedding_dim)), inverse
        return np.vstack(rows), inverse

    @staticmethod
    def _indicator_from_columns(
        vectors: np.ndarray,
        offset: int,
        key_index: dict[str, int],
        block: ColumnarElements,
    ) -> None:
        """Set the binary indicator block, one fancy index per column."""
        for key, column in block.columns.items():
            vectors[column.rows, offset + key_index[key]] = 1.0

    def node_features_columnar(self, batch: ElementBatch) -> ColumnarFeatures:
        """Vectorise the node section of a columnar batch."""
        model = self._require_model()
        block = batch.nodes
        keys = sorted(block.columns)
        key_index = {key: position for position, key in enumerate(keys)}
        dim = model.dim
        vectors = np.zeros((len(block), dim + len(keys)))
        if len(block):
            table, inverse = self._embedding_rows(
                block.token_sids, batch.interner
            )
            if table.size:
                vectors[:, :dim] = table[inverse]
            self._indicator_from_columns(vectors, dim, key_index, block)
        return ColumnarFeatures(block, batch.interner, vectors)

    def edge_features_columnar(self, batch: ElementBatch) -> ColumnarFeatures:
        """Vectorise the edge section of a columnar batch."""
        model = self._require_model()
        block = batch.edges
        keys = sorted(block.columns)
        key_index = {key: position for position, key in enumerate(keys)}
        dim = model.dim
        vectors = np.zeros((len(block), 3 * dim + len(keys)))
        if len(block):
            segments = (
                block.token_sids,
                block.src_token_sids,
                block.tgt_token_sids,
            )
            for segment, sids in enumerate(segments):
                table, inverse = self._embedding_rows(sids, batch.interner)
                if table.size:
                    vectors[:, segment * dim : (segment + 1) * dim] = table[
                        inverse
                    ]
            self._indicator_from_columns(vectors, 3 * dim, key_index, block)
        return ColumnarFeatures(block, batch.interner, vectors)

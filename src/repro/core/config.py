"""Configuration for a PG-HIVE discovery run.

Defaults follow the paper: adaptive LSH parameters (section 4.2), Jaccard
merge threshold ``theta = 0.9`` (section 4.3), full post-processing with
exact (non-sampled) datatype inference (section 4.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.core.accumulators import DEFAULT_PAIR_CAP
from repro.errors import ConfigurationError
from repro.lsh.base import GroupingRule


class ClusteringMethod(Enum):
    """Which LSH family clusters the representation vectors."""

    ELSH = "elsh"
    MINHASH = "minhash"


@dataclass
class AdaptiveOverrides:
    """Manual LSH parameters; ``None`` fields fall back to the adaptive rule.

    "Regardless of the adaptive approach, users can always provide their own
    LSH parameters" (section 4.2).
    """

    bucket_length: float | None = None
    num_tables: int | None = None
    alpha: float | None = None

    def __post_init__(self) -> None:
        if self.bucket_length is not None and self.bucket_length <= 0:
            raise ConfigurationError(
                f"bucket_length must be > 0, got {self.bucket_length}"
            )
        if self.num_tables is not None and self.num_tables < 1:
            raise ConfigurationError(
                f"num_tables must be >= 1, got {self.num_tables}"
            )
        if self.alpha is not None and self.alpha <= 0:
            raise ConfigurationError(f"alpha must be > 0, got {self.alpha}")


@dataclass
class PGHiveConfig:
    """Everything a :class:`~repro.core.pipeline.PGHive` run can tune."""

    method: ClusteringMethod = ClusteringMethod.ELSH
    #: Jaccard threshold of Algorithm 2 (theta).
    theta: float = 0.9
    #: Word2Vec embedding dimension d of section 4.1.
    embedding_dim: int = 16
    #: Scale of the (unit-normalised) label embedding relative to one binary
    #: property flag.  Values >= 1 keep differently-labelled elements apart
    #: even when their property structure coincides (the "hybrid" property
    #: of section 4.1).
    label_weight: float = 2.0
    embedding_epochs: int = 3
    embedding_window: int = 2
    embedding_negative: int = 5
    #: Cap on training sentences (edge triples) for the label corpus.
    max_corpus_sentences: int = 50_000
    #: How per-table buckets combine into clusters (DESIGN.md section 4).
    grouping_rule: GroupingRule = GroupingRule.AND
    #: ELSH AND-within-table width (classic g); 1 matches Spark MLlib.
    hashes_per_table: int = 1
    #: MinHash band size r (minhashes folded per table).
    minhash_band_size: int = 2
    #: Manual LSH parameter overrides for nodes and edges.
    node_lsh: AdaptiveOverrides = field(default_factory=AdaptiveOverrides)
    edge_lsh: AdaptiveOverrides = field(default_factory=AdaptiveOverrides)
    #: Run constraint/datatype/cardinality inference (h-f-g of Figure 2).
    post_processing: bool = True
    #: Also infer candidate keys (PG-Keys extension; see
    #: repro.core.key_inference).  Off by default: it is an extension
    #: beyond the paper's published pipeline and costs an extra value scan.
    infer_keys: bool = False
    #: Apply post-processing after every incremental batch instead of only
    #: after the final one (the ``postProcessing`` flag of Algorithm 1).
    post_process_each_batch: bool = False
    #: Incremental post-processing reads the per-type streaming
    #: accumulators (O(|schema|) per pass) instead of re-scanning a
    #: cumulative union graph.  Disable (debug/oracle mode) to restore the
    #: pre-accumulator full-scan behaviour; requires ``retain_union``.
    streaming_postprocess: bool = True
    #: Keep the cumulative union graph inside the incremental engine.  Off
    #: by default -- the union grows without bound and exists only for
    #: debugging, the full-scan oracle, and deletion maintenance.
    retain_union: bool = False
    #: Composite-key tracking cap: pair trackers are only created while a
    #: type's first instance has at most this many property keys.
    key_pair_tracking_cap: int = DEFAULT_PAIR_CAP
    #: Content-addressable structural dedup: columnar rows whose interned
    #: element signature has a live refcount skip preprocessing and LSH
    #: clustering, folding only the streaming accumulators.  Engages for
    #: exact-grouping clustering (MinHash + AND); other configurations
    #: keep the full per-row pipeline.  Schema output is identical either
    #: way (DESIGN.md "Structural dedup").
    structural_dedup: bool = True
    #: MinHash hashing kernel: ``"auto"`` selects the compiled (numba)
    #: kernel when importable and falls back to pure numpy, ``"numpy"``
    #: and ``"numba"`` force one path.  Both kernels are bit-identical;
    #: forcing ``"numba"`` without numba installed is a configuration
    #: error.  Applied process-wide when a pipeline/session is built.
    minhash_kernel: str = "auto"
    #: Parallel shard handoff: ``"auto"`` ships columnar change-sets
    #: through shared-memory blocks when the platform supports them and
    #: falls back to pickling, ``"pickle"``/``"shm"`` force one path.
    #: Serial sessions ignore this (no process hop to optimise).
    shard_handoff: str = "auto"
    #: Datatype inference by sampling (section 4.4): fraction + floor.
    datatype_sampling: bool = False
    datatype_sample_fraction: float = 0.1
    datatype_min_sample: int = 1000
    #: Master seed; every random component derives a stable sub-seed.
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.theta <= 1.0:
            raise ConfigurationError(f"theta must be in [0, 1], got {self.theta}")
        if self.embedding_dim < 1:
            raise ConfigurationError(
                f"embedding_dim must be >= 1, got {self.embedding_dim}"
            )
        if self.label_weight <= 0:
            raise ConfigurationError(
                f"label_weight must be > 0, got {self.label_weight}"
            )
        if not 0.0 < self.datatype_sample_fraction <= 1.0:
            raise ConfigurationError(
                "datatype_sample_fraction must be in (0, 1], got "
                f"{self.datatype_sample_fraction}"
            )
        if self.datatype_min_sample < 1:
            raise ConfigurationError(
                f"datatype_min_sample must be >= 1, got {self.datatype_min_sample}"
            )
        if self.minhash_band_size < 1:
            raise ConfigurationError(
                f"minhash_band_size must be >= 1, got {self.minhash_band_size}"
            )
        if self.hashes_per_table < 1:
            raise ConfigurationError(
                f"hashes_per_table must be >= 1, got {self.hashes_per_table}"
            )
        if not self.streaming_postprocess and not self.retain_union:
            raise ConfigurationError(
                "streaming_postprocess=False re-scans the union graph and "
                "therefore requires retain_union=True"
            )
        if self.key_pair_tracking_cap < 0:
            raise ConfigurationError(
                "key_pair_tracking_cap must be >= 0, got "
                f"{self.key_pair_tracking_cap}"
            )
        if self.minhash_kernel not in ("auto", "numpy", "numba"):
            raise ConfigurationError(
                "minhash_kernel must be one of 'auto', 'numpy', 'numba', "
                f"got {self.minhash_kernel!r}"
            )
        if self.shard_handoff not in ("auto", "pickle", "shm"):
            raise ConfigurationError(
                "shard_handoff must be one of 'auto', 'pickle', 'shm', "
                f"got {self.shard_handoff!r}"
            )

"""Edge-type cardinality inference (section 4.4).

For each edge type we count, per source node, the distinct targets reached
through instances of that type (and symmetrically per target), then take
maxima:

    max_out(rho) = max_s |{t : (s -> t) in E, type(s -> t) = rho}|
    max_in(rho)  = max_t |{s : (s -> t) in E, type(s -> t) = rho}|

The pair classifies into 0:1 / N:1 / 0:N / M:N.  Note the paper's Example 8
(WORKS_AT: each person one organisation, organisations many employees =>
N:1) fixes the orientation used here; see DESIGN.md for the discrepancy
with the paper's inline table.
"""

from __future__ import annotations

from collections import defaultdict

from repro.errors import SchemaError
from repro.graph.model import PropertyGraph
from repro.schema.cardinality import CardinalityBounds
from repro.schema.model import EdgeType, SchemaGraph


def bounds_for_edge_type(
    graph: PropertyGraph, edge_type: EdgeType
) -> CardinalityBounds:
    """Compute (max-out, max-in) distinct-endpoint counts for one type."""
    targets_per_source: dict[str, set[str]] = defaultdict(set)
    sources_per_target: dict[str, set[str]] = defaultdict(set)
    for instance_id in edge_type.instance_ids:
        if not graph.has_edge(instance_id):
            continue
        edge = graph.edge(instance_id)
        targets_per_source[edge.source_id].add(edge.target_id)
        sources_per_target[edge.target_id].add(edge.source_id)
    max_out = max((len(v) for v in targets_per_source.values()), default=0)
    max_in = max((len(v) for v in sources_per_target.values()), default=0)
    return CardinalityBounds(max_out, max_in)


def compute_cardinalities(schema: SchemaGraph, graph: PropertyGraph) -> SchemaGraph:
    """Fill cardinality bounds and classes for every edge type."""
    for edge_type in schema.edge_types():
        bounds = bounds_for_edge_type(graph, edge_type)
        edge_type.cardinality_bounds = bounds
        edge_type.cardinality = bounds.classify()
    return schema


def compute_cardinalities_streaming(schema: SchemaGraph) -> SchemaGraph:
    """Fill cardinality bounds from the per-type endpoint accumulators.

    The :class:`~repro.core.accumulators.EndpointAccumulator` maintains
    the distinct-endpoint sets and their maxima per batch, so this read is
    O(|schema|) -- the maxima equal what :func:`bounds_for_edge_type`
    would recount over the cumulative union graph.
    """
    for edge_type in schema.edge_types():
        summaries = edge_type.summaries
        if summaries is None or summaries.endpoints is None:
            raise SchemaError(
                f"edge type {edge_type.display_name!r} has no endpoint "
                "accumulator; use the full-scan compute_cardinalities"
            )
        bounds = summaries.endpoints.bounds()
        edge_type.cardinality_bounds = bounds
        edge_type.cardinality = bounds.classify()
    return schema

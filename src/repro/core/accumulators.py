"""Streaming post-processing accumulators (incremental steps (e)-(g)).

The static pipeline computes constraints, datatypes, cardinalities, and
keys by re-scanning every instance of every type -- O(cumulative graph)
per invocation, which is exactly the cost Algorithm 1 promises to avoid
("never revisits earlier batches").  This module provides per-type
incremental summaries that consume each element **once, at arrival**, so
the post-processing passes become pure reads over O(|schema|) state:

* :class:`DatatypeAccumulator` -- one datatype-lattice element per
  property key, folded through ``generalize``.  The lattice
  (INT < FLOAT < STRING, DATE < DATETIME < STRING, BOOLEAN < STRING) is a
  join-semilattice: the fold is associative, commutative, and idempotent,
  so results are batch-order invariant and replay-safe.
* :class:`EndpointAccumulator` -- per edge type, the distinct targets per
  source and sources per target, with running maxima, yielding the same
  :class:`~repro.schema.cardinality.CardinalityBounds` a full re-scan
  would produce.
* :class:`KeyAccumulator` -- distinct-value/null trackers per property
  (and per capped property pair) for PG-Keys candidate-key inference.
  Trackers record one *witness* instance per value so that merging two
  types with overlapping instance sets (batch streams replay endpoint
  stubs) does not manufacture false duplicates.

Mandatory/optional tallies need no new state: ``_TypeBase`` already
maintains ``property_counts`` / ``instance_count`` incrementally and
:mod:`repro.core.constraints` reads only those.

Summaries attach to schema types as the duck-typed ``summaries``
attribute; :meth:`repro.schema.model._TypeBase._absorb_base` merges them
monotonically when Algorithm 2 collapses two types, so the streaming
reads stay equal to the full-scan oracle across arbitrary merge orders.
"""

from __future__ import annotations

from collections.abc import Sequence
from collections.abc import Mapping
from dataclasses import dataclass
from itertools import combinations
from typing import Any

import numpy as np

from repro.schema.cardinality import CardinalityBounds
from repro.schema.datatypes import DataType, generalize, infer_value_type

#: Pair trackers are only created while a type's first instance carries at
#: most this many property keys (C(cap, 2) trackers); wider types skip
#: composite-key tracking and flag ``pair_overflow``.
DEFAULT_PAIR_CAP = 24


def hashable_value(value: Any) -> object:
    """Normalise a property value for set membership (lists -> repr)."""
    if isinstance(value, (list, dict, set)):
        return repr(value)
    return value


@dataclass(frozen=True, slots=True)
class SummaryOptions:
    """What the per-type summaries should track."""

    track_keys: bool = False
    pair_cap: int = DEFAULT_PAIR_CAP


DEFAULT_OPTIONS = SummaryOptions()


def _column_value_type(values: Sequence[Any]) -> DataType:
    """The lattice join of ``infer_value_type`` over one value column.

    Homogeneous columns short-circuit: all-``int`` is INTEGER, all-``bool``
    BOOLEAN, all-``float`` reduces with one vectorised integrality check,
    and all-``str`` folds distinct values only (the per-value regexes are
    the expensive part).  Heterogeneous columns fall back to the scalar
    fold; every path stops at the absorbing STRING element.
    """
    if isinstance(values, list):
        vals = values
    elif isinstance(values, np.ndarray):
        vals = values.tolist()
    else:
        vals = list(values)
    kinds = set(map(type, vals))
    if kinds == {int}:
        return DataType.INTEGER
    if kinds == {bool}:
        return DataType.BOOLEAN
    if kinds == {float}:
        arr = np.asarray(vals, dtype=float)
        integral = np.isfinite(arr) & (arr == np.floor(arr))
        return DataType.INTEGER if bool(np.all(integral)) else DataType.FLOAT
    if kinds == {str}:
        seen: set[str] = set()
        result: DataType | None = None
        for value in vals:
            if value in seen:
                continue
            seen.add(value)
            value_type = infer_value_type(value)
            result = (
                value_type if result is None else generalize(result, value_type)
            )
            if result is DataType.STRING:
                return result
        return DataType.STRING if result is None else result
    result = None
    for value in vals:
        value_type = infer_value_type(value)
        result = value_type if result is None else generalize(result, value_type)
        if result is DataType.STRING:
            return result
    return DataType.STRING if result is None else result


class DatatypeAccumulator:
    """Per-property datatype lattice state: ``key -> join of value types``."""

    __slots__ = ("types",)

    def __init__(self) -> None:
        self.types: dict[str, DataType] = {}

    def observe(self, key: str, value: Any) -> None:
        """Fold one observed value into the lattice element for ``key``."""
        current = self.types.get(key)
        if current is DataType.STRING:
            return  # STRING is the absorbing top element.
        value_type = infer_value_type(value)
        self.types[key] = (
            value_type if current is None else generalize(current, value_type)
        )

    def observe_all(self, properties: Mapping[str, Any]) -> None:
        """Fold every property of one element."""
        for key, value in properties.items():
            self.observe(key, value)

    def observe_column(self, key: str, values: Sequence[Any]) -> None:
        """Fold one whole value column for ``key`` (columnar ingest path).

        Equivalent to calling :meth:`observe` per cell -- the lattice join
        is associative, commutative, and idempotent -- but vectorised:
        homogeneous numeric/bool columns resolve with one type check,
        string columns fold *distinct* values only, and every path stops
        as soon as the join reaches the absorbing STRING element.
        """
        current = self.types.get(key)
        if current is DataType.STRING or not len(values):
            return
        column_type = _column_value_type(values)
        self.types[key] = (
            column_type
            if current is None
            else generalize(current, column_type)
        )

    def observe_repeat(
        self, key: str, shape_code: str, values: Sequence[Any]
    ) -> None:
        """Fold one column of a structural-repeat group (dedup fast path).

        ``shape_code`` is the column's signature shape character (see
        :func:`repro.graph.columnar.value_shapes`): when it already
        proves the column cannot move the lattice element for ``key``
        -- every value is ``bool`` and the key is BOOLEAN, every value
        is ``int`` and the key is INTEGER, or the key is FLOAT and the
        values are numeric -- the per-value scan is skipped entirely.
        Ambiguous shapes (strings may parse as dates, floats may be
        integral) fall back to :meth:`observe_column`, so the result is
        always exactly the generic fold.
        """
        current = self.types.get(key)
        if current is DataType.STRING:
            return
        if current is DataType.BOOLEAN:
            if shape_code == "b":
                return
        elif current is DataType.INTEGER:
            if shape_code == "i":
                return
        elif current is DataType.FLOAT:
            # generalize(FLOAT, INTEGER) == generalize(FLOAT, FLOAT)
            # == FLOAT: numeric columns cannot move a FLOAT key.
            if shape_code in ("i", "f"):
                return
        self.observe_column(key, values)

    def merge_from(self, other: "DatatypeAccumulator") -> None:
        """Lattice join with another accumulator (type merge)."""
        for key, value_type in other.types.items():
            current = self.types.get(key)
            self.types[key] = (
                value_type if current is None else generalize(current, value_type)
            )

    def copy(self) -> "DatatypeAccumulator":
        clone = DatatypeAccumulator()
        clone.types = dict(self.types)
        return clone


class EndpointAccumulator:
    """Distinct-endpoint counters for one edge type, with running maxima."""

    __slots__ = ("targets_per_source", "sources_per_target", "max_out", "max_in")

    def __init__(self) -> None:
        self.targets_per_source: dict[str, set[str]] = {}
        self.sources_per_target: dict[str, set[str]] = {}
        self.max_out = 0
        self.max_in = 0

    def observe(self, source_id: str, target_id: str) -> None:
        """Fold one edge instance's endpoints."""
        targets = self.targets_per_source.setdefault(source_id, set())
        targets.add(target_id)
        if len(targets) > self.max_out:
            self.max_out = len(targets)
        sources = self.sources_per_target.setdefault(target_id, set())
        sources.add(source_id)
        if len(sources) > self.max_in:
            self.max_in = len(sources)

    def observe_pairs(
        self, source_ids: Sequence[str], target_ids: Sequence[str]
    ) -> None:
        """Fold many edge endpoint pairs at once (columnar ingest path).

        Equivalent to :meth:`observe` per pair -- endpoint sets only grow,
        so the running maxima are order-invariant -- with the per-pair
        bookkeeping flattened into local bindings (this is the hottest
        per-edge loop left on the columnar path).
        """
        targets_per_source = self.targets_per_source
        sources_per_target = self.sources_per_target
        max_out, max_in = self.max_out, self.max_in
        get_targets = targets_per_source.get
        get_sources = sources_per_target.get
        for source_id, target_id in zip(source_ids, target_ids):
            targets = get_targets(source_id)
            if targets is None:
                targets_per_source[source_id] = {target_id}
                if max_out < 1:
                    max_out = 1
            else:
                targets.add(target_id)
                size = len(targets)
                if size > max_out:
                    max_out = size
            sources = get_sources(target_id)
            if sources is None:
                sources_per_target[target_id] = {source_id}
                if max_in < 1:
                    max_in = 1
            else:
                sources.add(source_id)
                size = len(sources)
                if size > max_in:
                    max_in = size
        self.max_out, self.max_in = max_out, max_in

    def observe_repeat(
        self, source_ids: Sequence[str], target_ids: Sequence[str]
    ) -> None:
        """Fold a structural-repeat group's endpoints (dedup fast path).

        Cardinality depends on the concrete endpoint *ids*, which repeat
        structures do not share, so this is exactly
        :meth:`observe_pairs` -- named separately so the repeat recording
        path stays explicit about which folds it performs.
        """
        self.observe_pairs(source_ids, target_ids)

    def merge_from(self, other: "EndpointAccumulator") -> None:
        """Union endpoint sets and re-establish the maxima."""
        for source_id, targets in other.targets_per_source.items():
            mine = self.targets_per_source.setdefault(source_id, set())
            mine |= targets
            if len(mine) > self.max_out:
                self.max_out = len(mine)
        for target_id, sources in other.sources_per_target.items():
            mine = self.sources_per_target.setdefault(target_id, set())
            mine |= sources
            if len(mine) > self.max_in:
                self.max_in = len(mine)

    def bounds(self) -> CardinalityBounds:
        """The (max-out, max-in) pair a full endpoint re-scan would yield."""
        return CardinalityBounds(self.max_out, self.max_in)

    def copy(self) -> "EndpointAccumulator":
        clone = EndpointAccumulator()
        clone.targets_per_source = {
            k: set(v) for k, v in self.targets_per_source.items()
        }
        clone.sources_per_target = {
            k: set(v) for k, v in self.sources_per_target.items()
        }
        clone.max_out = self.max_out
        clone.max_in = self.max_in
        return clone


class DistinctTracker:
    """Are all observed values pairwise distinct across instances?

    ``witnesses`` maps each value to the instance that first produced it;
    a second *distinct* instance producing the same value collapses the
    tracker to the terminal duplicated state (``witnesses = None``) and
    frees the map -- duplication is monotone under inserts and merges.
    The witness identity makes merges of types with overlapping instance
    sets exact: the same instance replayed on both sides is not a
    duplicate, mirroring the full scan over the deduplicated instance set.
    """

    __slots__ = ("witnesses", "count")

    def __init__(self) -> None:
        self.witnesses: dict[object, str] | None = {}
        self.count = 0

    @property
    def distinct(self) -> bool:
        """True while no two distinct instances shared a value."""
        return self.witnesses is not None

    def observe(self, value: object, instance_id: str) -> None:
        """Fold one (value, instance) observation."""
        self.count += 1
        witnesses = self.witnesses
        if witnesses is None:
            return
        prior = witnesses.setdefault(value, instance_id)
        if prior != instance_id:
            self.witnesses = None

    def observe_column(
        self, values: Sequence[Any], instance_ids: Sequence[str]
    ) -> None:
        """Fold one value column (columnar ingest path).

        Equivalent to per-cell :meth:`observe` calls: the duplicated
        outcome is order-invariant, and a dead tracker skips the whole
        column in O(1).
        """
        self.count += len(instance_ids)
        witnesses = self.witnesses
        if witnesses is None:
            return
        setdefault = witnesses.setdefault
        for value, instance_id in zip(values, instance_ids):
            if isinstance(value, (list, dict, set)):
                value = repr(value)
            if setdefault(value, instance_id) != instance_id:
                self.witnesses = None
                return

    def observe_pair_column(
        self,
        left_values: Sequence[Any],
        right_values: Sequence[Any],
        instance_ids: Sequence[str],
    ) -> None:
        """Fold one aligned pair of value columns (composite-key tracking)."""
        self.count += len(instance_ids)
        witnesses = self.witnesses
        if witnesses is None:
            return
        setdefault = witnesses.setdefault
        for left, right, instance_id in zip(
            left_values, right_values, instance_ids
        ):
            if isinstance(left, (list, dict, set)):
                left = repr(left)
            if isinstance(right, (list, dict, set)):
                right = repr(right)
            if setdefault((left, right), instance_id) != instance_id:
                self.witnesses = None
                return

    def merge_from(self, other: "DistinctTracker") -> None:
        """Union two trackers; cross-side value collisions mean duplicates."""
        self.count += other.count
        if self.witnesses is None:
            return
        if other.witnesses is None:
            self.witnesses = None
            return
        witnesses = self.witnesses
        for value, witness in other.witnesses.items():
            prior = witnesses.setdefault(value, witness)
            if prior != witness:
                self.witnesses = None
                return

    def copy(self) -> "DistinctTracker":
        clone = DistinctTracker()
        clone.witnesses = None if self.witnesses is None else dict(self.witnesses)
        clone.count = self.count
        return clone


class KeyAccumulator:
    """Distinct-value state backing streaming candidate-key inference.

    ``singles`` holds one :class:`DistinctTracker` per property key ever
    observed with a value; ``pairs`` holds trackers for the property pairs
    of the type's *first* instance (a pair can only be a composite key
    when both keys are mandatory, i.e. present from the very first
    instance onward), pruned the moment an instance misses either key.
    ``instances`` counts folded elements so reads can require that a
    tracker covered every instance.
    """

    __slots__ = ("singles", "pairs", "pair_overflow", "pair_cap", "instances")

    def __init__(self, pair_cap: int = DEFAULT_PAIR_CAP) -> None:
        self.singles: dict[str, DistinctTracker] = {}
        self.pairs: dict[tuple[str, str], DistinctTracker] = {}
        self.pair_overflow = False
        self.pair_cap = pair_cap  # repro-lint: ignore[PGL201] -- construction-time config shared by both merge sides, not accumulated state
        self.instances = 0

    def observe(self, instance_id: str, properties: Mapping[str, Any]) -> None:
        """Fold one instance's property map."""
        first_instance = self.instances == 0
        self.instances += 1
        for key, value in properties.items():
            tracker = self.singles.get(key)
            if tracker is None:
                tracker = self.singles[key] = DistinctTracker()
            tracker.observe(hashable_value(value), instance_id)
        if first_instance:
            keys = sorted(properties)
            if len(keys) > self.pair_cap:
                self.pair_overflow = True
                return
            for left, right in combinations(keys, 2):
                tracker = DistinctTracker()
                tracker.observe(
                    (
                        hashable_value(properties[left]),
                        hashable_value(properties[right]),
                    ),
                    instance_id,
                )
                self.pairs[(left, right)] = tracker
            return
        dead: list[tuple[str, str]] = []
        for pair, tracker in self.pairs.items():
            left, right = pair
            if left in properties and right in properties:
                tracker.observe(
                    (
                        hashable_value(properties[left]),
                        hashable_value(properties[right]),
                    ),
                    instance_id,
                )
            else:
                # One key absent on one instance: neither key can be
                # mandatory over this instance set, so the pair is dead.
                dead.append(pair)
        for pair in dead:
            del self.pairs[pair]

    def observe_group(
        self,
        instance_ids: Sequence[str],
        keys: tuple[str, ...],
        columns: Mapping[str, Sequence[Any]],
    ) -> None:
        """Fold a group of instances sharing one property-key set.

        Columnar ingest groups instances by interned key-set, so presence
        checks and pair pruning run once per group and trackers consume
        whole columns.  ``keys`` must be sorted (key-set interning
        guarantees it) and ``columns[key]`` aligned with ``instance_ids``.
        Equivalent to per-instance :meth:`observe` calls in group order.
        """
        count = len(instance_ids)
        if count == 0:
            return
        first_instance = self.instances == 0
        self.instances += count
        for key in keys:
            tracker = self.singles.get(key)
            if tracker is None:
                tracker = self.singles[key] = DistinctTracker()
            tracker.observe_column(columns[key], instance_ids)
        if first_instance:
            if len(keys) > self.pair_cap:
                self.pair_overflow = True
                return
            for left, right in combinations(keys, 2):
                tracker = self.pairs[(left, right)] = DistinctTracker()
                tracker.observe_pair_column(
                    columns[left], columns[right], instance_ids
                )
            return
        if not self.pairs:
            return
        present = set(keys)
        dead = [
            pair
            for pair in self.pairs
            if pair[0] not in present or pair[1] not in present
        ]
        for pair in dead:
            del self.pairs[pair]
        for (left, right), tracker in self.pairs.items():
            tracker.observe_pair_column(
                columns[left], columns[right], instance_ids
            )

    def observe_repeat(
        self,
        instance_ids: Sequence[str],
        keys: tuple[str, ...],
        columns: Mapping[str, Sequence[Any]],
    ) -> None:
        """Fold a structural-repeat group (dedup fast path).

        Exactly :meth:`observe_group` minus the first-instance
        pair-candidate branch, which is unreachable for repeats: a live
        signature refcount means an instance with this structure was
        already recorded into the type.  The ``instances == 0`` guard
        keeps the fold exact even if a caller ever misclassifies.
        """
        count = len(instance_ids)
        if count == 0:
            return
        if self.instances == 0:
            self.observe_group(instance_ids, keys, columns)
            return
        self.instances += count
        for key in keys:
            tracker = self.singles.get(key)
            if tracker is None:
                tracker = self.singles[key] = DistinctTracker()
            tracker.observe_column(columns[key], instance_ids)
        if not self.pairs:
            return
        present = set(keys)
        dead = [
            pair
            for pair in self.pairs
            if pair[0] not in present or pair[1] not in present
        ]
        for pair in dead:
            del self.pairs[pair]
        for (left, right), tracker in self.pairs.items():
            tracker.observe_pair_column(
                columns[left], columns[right], instance_ids
            )

    def merge_from(self, other: "KeyAccumulator") -> None:
        """Merge on type absorption: pairs survive only on both sides."""
        self.instances += other.instances
        for key, tracker in other.singles.items():
            mine = self.singles.get(key)
            if mine is None:
                self.singles[key] = tracker.copy()
            else:
                mine.merge_from(tracker)
        self.pair_overflow = self.pair_overflow or other.pair_overflow
        if self.pair_overflow:
            self.pairs.clear()
            return
        merged: dict[tuple[str, str], DistinctTracker] = {}
        for pair, tracker in self.pairs.items():
            theirs = other.pairs.get(pair)
            if theirs is not None:
                tracker.merge_from(theirs)
                merged[pair] = tracker
        self.pairs = merged

    def copy(self) -> "KeyAccumulator":
        clone = KeyAccumulator(self.pair_cap)
        clone.singles = {k: t.copy() for k, t in self.singles.items()}
        clone.pairs = {p: t.copy() for p, t in self.pairs.items()}
        clone.pair_overflow = self.pair_overflow
        clone.instances = self.instances
        return clone


class TypeSummaries:
    """The bundle of accumulators attached to one schema type."""

    __slots__ = ("datatypes", "endpoints", "keys")

    def __init__(
        self,
        is_edge: bool,
        options: SummaryOptions = DEFAULT_OPTIONS,
    ) -> None:
        self.datatypes = DatatypeAccumulator()
        self.endpoints = EndpointAccumulator() if is_edge else None
        self.keys = KeyAccumulator(options.pair_cap) if options.track_keys else None

    def observe(
        self,
        instance_id: str,
        properties: Mapping[str, Any],
        endpoints: tuple[str, str] | None = None,
    ) -> None:
        """Fold one newly recorded instance (exactly once per type)."""
        self.datatypes.observe_all(properties)
        if self.endpoints is not None and endpoints is not None:
            self.endpoints.observe(*endpoints)
        if self.keys is not None:
            self.keys.observe(instance_id, properties)

    def merge_from(self, other: "TypeSummaries") -> None:
        """Monotone merge for type absorption (Lemmas 1-2 extended)."""
        self.datatypes.merge_from(other.datatypes)
        if self.endpoints is not None and other.endpoints is not None:
            self.endpoints.merge_from(other.endpoints)
        elif other.endpoints is not None:
            self.endpoints = other.endpoints.copy()
        if self.keys is not None and other.keys is not None:
            self.keys.merge_from(other.keys)
        elif self.keys is not None or other.keys is not None:
            # One side never tracked keys: the union's key state is unknown.
            self.keys = None

    def copy(self) -> "TypeSummaries":
        clone = TypeSummaries(is_edge=False)
        clone.datatypes = self.datatypes.copy()
        clone.endpoints = None if self.endpoints is None else self.endpoints.copy()
        clone.keys = None if self.keys is None else self.keys.copy()
        return clone


def ensure_summaries(
    schema_type,
    is_edge: bool,
    options: SummaryOptions = DEFAULT_OPTIONS,
) -> TypeSummaries:
    """Get-or-create the :class:`TypeSummaries` of ``schema_type``."""
    summaries = schema_type.summaries
    if summaries is None:
        summaries = schema_type.summaries = TypeSummaries(is_edge, options)
    return summaries

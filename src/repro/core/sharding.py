"""`ShardedSchemaSession`: partitioned, parallel discovery over N shards.

The incremental-view-maintenance literature's standard route to parallel
maintenance -- partition the change feed, keep mergeable per-partition
state, combine on read -- applied to PG-HIVE:

* A :class:`~repro.graph.changes.HashPartitioner` routes every node and
  edge of an incoming :class:`~repro.graph.changes.ChangeSet` to one of
  ``n_shards`` per-shard :class:`~repro.core.session.SchemaSession`\\ s by
  stable content hashing.  Edges travel with full *stub* copies of
  endpoints owned by other shards (resolved from the session's node
  registry), flagged so the receiving shard clusters them for context but
  never records them -- each element is counted by exactly one shard,
  which is what makes the per-shard states mergeable without
  double-counting.  Node deletions broadcast to every shard (stub copies
  and their incident edges must cascade everywhere); edge deletions route
  to the owning shard.
* Shards run serially in-process by default, or -- with
  ``parallel=True`` -- each shard gets a dedicated single-worker
  ``ProcessPoolExecutor`` so its session lives in a pinned OS process and
  change-sets for different shards are ingested concurrently.
* :meth:`schema` merges the per-shard
  :class:`~repro.core.state.DiscoveryState` values through
  ``DiscoveryState.merged`` and post-processes the combined schema
  (streaming-accumulator reads, or a full scan of the merged union once
  any deletion occurred).  Dirty tracking makes the read lazy: states of
  untouched shards are served from the parent's snapshot cache instead of
  being re-fetched (in parallel mode a fetch is a pickle round-trip), and
  a read on a quiet feed returns the cached merged schema outright.
* :meth:`checkpoint` extends the session checkpoint format with a
  per-shard manifest: one versioned manifest file plus one ordinary
  session checkpoint per shard, so shards restore independently (and, in
  parallel mode, write/load their own files inside their worker
  processes).
* **Worker fault tolerance** (parallel mode): a dead worker process
  never surfaces a raw ``BrokenProcessPool``.  The shard's pool is
  restarted with bounded exponential backoff, its last fetched
  :class:`DiscoveryState` is resubmitted and the change-sets applied
  since are replayed (``_pending``), and the failed operation is
  retried.  After ``max_shard_retries`` failed restarts the shard
  *degrades* to an in-process serial session -- correct but no longer
  parallel -- surfaced through a
  :class:`~repro.errors.DegradedModeWarning` and a structured
  :class:`ShardFaultEvent` journal (``fault_events``), never silently.

Determinism: shard states fold in shard order, the schema merge processes
types in canonical content order, and the merged schema gets canonical
type names -- so for label-mergeable feeds the merged schema is
fingerprint-identical to a single :class:`SchemaSession` over the same
change-sets, for every shard count (the sharding oracle pins this).
Abstract-type Jaccard absorption remains order-sensitive, exactly as it
is between batches of a single session.
"""

from __future__ import annotations

import os
import pickle
import time
import warnings
from collections import deque
from collections.abc import Iterable
from concurrent.futures import Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace
from pathlib import Path

from repro.core.config import PGHiveConfig
from repro.core.durability import read_artifact, write_artifact
from repro.core.pipeline import PGHive
from repro.core.session import ChangeReport, SchemaSession
from repro.core.shm import (
    ShmChangeSet,
    decode_changeset_shm,
    encode_changeset_shm,
    global_registry as global_shm_registry,
    rebase_changeset,
    shm_available,
)
from repro.core.state import DiscoveryState
from repro.errors import (
    CheckpointCorruptError,
    ConfigurationError,
    DegradedModeWarning,
)
from repro.graph.changes import ChangeSet, HashPartitioner
from repro.graph.columnar import (
    Interner,
    SignatureStore,
    global_interner,
    partition_columnar,
    value_shapes,
)
from repro.graph.model import Node, PropertyGraph
from repro.schema.model import SchemaGraph

#: First line of every sharded-checkpoint manifest (digest-framed since
#: v2; see repro.core.durability).
MANIFEST_MAGIC = b"pghive-sharded-checkpoint"
MANIFEST_VERSION = 2
#: Digest-free pre-durability versions that stay readable (unverified).
MANIFEST_LEGACY_VERSIONS = (1,)
MANIFEST_NAME = "manifest.ckpt"


@dataclass(frozen=True)
class ShardedChangeReport:
    """Diagnostics for one change-set applied across shards.

    Insert counts are the producer's (stubs excluded); deletion counts
    are global -- a node removed from three shards (owner plus two stub
    copies) counts once.  ``shard_reports`` carries the per-shard
    :class:`~repro.core.session.ChangeReport` of every shard that
    received a non-empty sub-change-set.
    """

    sequence: int
    nodes_inserted: int
    edges_inserted: int
    nodes_deleted: int
    edges_deleted: int
    seconds: float
    shard_reports: tuple[tuple[int, ChangeReport], ...]

    @property
    def shards_touched(self) -> int:
        """Number of shards that received work from this change-set."""
        return len(self.shard_reports)


@dataclass(frozen=True)
class ShardFaultEvent:
    """One structured entry of a sharded session's fault journal.

    ``kind`` is ``"retry"`` (the worker pool died and is being
    restarted) or ``"degraded"`` (retries exhausted; the shard fell back
    to in-process serial execution).  ``attempt`` counts restarts of the
    same operation; ``detail`` carries the triggering error text.
    """

    kind: str
    shard: int
    attempt: int
    detail: str


# ----------------------------------------------------------------------
# Worker-process plumbing (parallel mode).  Each shard owns a dedicated
# single-worker ProcessPoolExecutor, so one module-level session per
# worker process is exactly one session per shard.
# ----------------------------------------------------------------------
_WORKER_SESSION: SchemaSession | None = None


# ----------------------------------------------------------------------
# Registry entries: legacy feeds register :class:`Node` objects, columnar
# feeds register compact ``(labelset_id, keyset_id, values)`` records.
# The two views below decode whichever is stored into whatever the
# active partition path needs, so mixed feeds stay correct.
# ----------------------------------------------------------------------
def _entry_to_node(node_id: str, entry, interner: Interner) -> Node:
    if isinstance(entry, Node):
        return entry
    labelset_id, keyset_id, values = entry
    keys = interner.keyset(keyset_id).keys
    return Node(
        node_id,
        interner.labelset(labelset_id).labels,
        dict(zip(keys, values)),
    )


def _entry_to_record(entry, interner: Interner):
    if not isinstance(entry, Node):
        return entry
    labelset_id = interner.intern_labels(entry.labels)
    keyset_id = interner.intern_keys(entry.properties)
    keys = interner.keyset(keyset_id).keys
    return (
        labelset_id,
        keyset_id,
        tuple(entry.properties[key] for key in keys),
    )


class _RegistryView:
    """Read-only registry adapter decoding entries for one partition path."""

    __slots__ = ("_registry", "_interner", "_as_record")

    def __init__(
        self, registry: dict, interner: Interner, as_record: bool
    ) -> None:
        self._registry = registry
        self._interner = interner
        self._as_record = as_record

    def get(self, node_id: str):
        entry = self._registry.get(node_id)
        if entry is None:
            return None
        if self._as_record:
            return _entry_to_record(entry, self._interner)
        return _entry_to_node(node_id, entry, self._interner)


def _worker_init(config, schema_name, retain_union, streaming, track_keys):
    global _WORKER_SESSION
    _WORKER_SESSION = SchemaSession(
        config,
        schema_name=schema_name,
        retain_union=retain_union,
        streaming_postprocess=streaming,
        track_keys=track_keys,
    )


def _worker_apply(change_set: ChangeSet) -> ChangeReport:
    return _WORKER_SESSION.apply(change_set)


def _worker_apply_shm(descriptor: ShmChangeSet) -> ChangeReport:
    """Apply one shared-memory change-set inside the shard worker.

    Decodes against the session's *current* interner, so every batch of
    one worker lifetime shares a single grow-only id lineage -- the
    invariant the session's signature refcounts rely on.  (Pickled
    batches satisfy it differently: each carries a copy of the
    coordinator's interner, and successive copies are id-compatible
    supersets.)
    """
    session = _WORKER_SESSION
    interner = session.discovery_state.interner or global_interner()
    return session.apply(decode_changeset_shm(descriptor, interner))


def _worker_state() -> DiscoveryState:
    return _WORKER_SESSION.discovery_state


def _worker_checkpoint(path: str) -> str:
    return str(_WORKER_SESSION.checkpoint(path))


def _worker_restore(path: str) -> int:
    global _WORKER_SESSION
    _WORKER_SESSION = SchemaSession.restore(path)
    return _WORKER_SESSION.sequence


def _worker_adopt(
    state: DiscoveryState, config, schema_name, streaming, track_keys
) -> int:
    """Replace the worker's session with one resumed from ``state``.

    Pool-restart recovery ships the shard's last fetched state back into
    the fresh worker; the parent then replays the change-sets applied
    since that fetch, reproducing the pre-crash session bit for bit.
    """
    global _WORKER_SESSION
    _WORKER_SESSION = SchemaSession.from_state(
        state,
        config,
        schema_name=schema_name,
        streaming_postprocess=streaming,
        track_keys=track_keys,
    )
    return _WORKER_SESSION.sequence


#: Worker entry points by operation name, for the crash-recovery wrapper.
_WORKER_OPS = {
    "apply": _worker_apply,
    "state": _worker_state,
    "checkpoint": _worker_checkpoint,
}


def _degraded_op(session: SchemaSession, op: str, *args):
    """In-process equivalent of one worker operation (degraded shards)."""
    if op == "apply":
        return session.apply(args[0])
    if op == "state":
        return session.discovery_state
    return str(session.checkpoint(args[0]))


@dataclass
class _PreparedChange:
    """Coordinator-side effects of one change-set, staged for dispatch.

    ``_prepare`` seeds the registry/signature stores and partitions;
    dispatch failure rolls the seeds back through ``_rollback``;
    success commits deletions and the sequence bump.  Splitting the
    phases this way lets :meth:`ShardedSchemaSession.ingest_stream`
    overlap the dispatch of several change-sets.
    """

    change_set: ChangeSet
    parts: dict[int, ChangeSet]
    deleted_nodes: set[str]
    inserted_node_ids: set[str]
    nodes_inserted: int
    edges_inserted: int
    seeded: list[str]
    seeded_signatures: list[int]
    interner_before: Interner
    pinned_before: bool


@dataclass
class _InflightDispatch:
    """One change-set's dispatch in flight across the shard pools."""

    parts: dict[int, ChangeSet]
    reports: dict[int, ChangeReport] = field(default_factory=dict)
    futures: dict[int, Future] = field(default_factory=dict)
    failed: dict[int, BaseException] = field(default_factory=dict)
    #: shared-memory block name per shard, released after collection.
    blocks: dict[int, str] = field(default_factory=dict)


class ShardedSchemaSession:
    """N-way partitioned discovery with a mergeable combined read view.

    Accepts the same change feed as :class:`SchemaSession` (``apply`` /
    ``add_batch``) and serves the same lazy :meth:`schema` snapshots;
    ``retain_union``, ``streaming_postprocess``, and ``track_keys``
    override config fields exactly as on the single session.  Use as a
    context manager (or call :meth:`close`) when ``parallel=True`` so the
    worker processes shut down deterministically.
    """

    def __init__(
        self,
        config: PGHiveConfig | None = None,
        schema_name: str = "sharded-schema",
        *,
        n_shards: int = 4,
        parallel: bool = False,
        retain_union: bool | None = None,
        streaming_postprocess: bool | None = None,
        track_keys: bool | None = None,
        max_shard_retries: int = 2,
        retry_backoff: float = 0.05,
        resync_every: int = 64,
    ) -> None:
        if n_shards < 1:
            raise ConfigurationError(f"n_shards must be >= 1, got {n_shards}")
        if max_shard_retries < 0:
            raise ConfigurationError(
                f"max_shard_retries must be >= 0, got {max_shard_retries}"
            )
        if retry_backoff < 0:
            raise ConfigurationError(
                f"retry_backoff must be >= 0, got {retry_backoff}"
            )
        if resync_every < 1:
            raise ConfigurationError(
                f"resync_every must be >= 1, got {resync_every}"
            )
        self.config = config or PGHiveConfig()
        self.schema_name = schema_name
        self.n_shards = int(n_shards)
        self.parallel = bool(parallel)
        self._retain_union = (
            self.config.retain_union if retain_union is None else retain_union
        )
        self._streaming = (
            self.config.streaming_postprocess
            if streaming_postprocess is None
            else streaming_postprocess
        )
        self._track_keys = (
            self.config.infer_keys if track_keys is None else track_keys
        )
        if not self._streaming and not self._retain_union:
            raise ConfigurationError(
                "streaming_postprocess=False re-scans the union graph and "
                "therefore requires retain_union=True"
            )
        # Shards must never flush post-processing themselves: specs stay
        # raw so the passes run once, over the merged state.
        self._shard_config = replace(self.config, post_process_each_batch=False)
        self._partitioner = HashPartitioner(self.n_shards)
        #: first-inserted version of every live node, for stub routing
        #: (mirrors the union graph's first-version-wins semantics).
        #: Values are :class:`Node` objects (legacy feeds) or compact
        #: columnar records (columnar feeds); see ``_RegistryView``.
        self._registry: dict[str, object] = {}
        #: the single interner every columnar change-set of this session
        #: must share: registry records store interner-local ids, so a
        #: batch built against a different interner would silently decode
        #: to wrong content.  Pinned by the first columnar apply (or by
        #: restore) and enforced afterwards.
        self._interner: Interner = global_interner()
        self._interner_pinned = False
        #: coordinator-level signature seeds mirroring the registry: one
        #: refcount per live registered node, keyed by the node's
        #: structural signature.  Seeded alongside registry entries,
        #: rolled back with them on a rejected change-set, decremented
        #: when a committed deletion unregisters the node, and persisted
        #: content-encoded in the manifest.
        self._signatures = SignatureStore(self._interner)
        self._sequence = 0
        self.reports: list[ShardedChangeReport] = []
        self._shard_dirty = [True] * self.n_shards
        self._shard_states: list[DiscoveryState | None] = [None] * self.n_shards
        self._merged_state: DiscoveryState | None = None
        self._shards: list[SchemaSession] | None = None
        self._pools: list[ProcessPoolExecutor] | None = None
        # Fault tolerance (parallel mode): worker death triggers up to
        # ``max_shard_retries`` pool restarts with bounded exponential
        # backoff, resubmitting the shard's last fetched state plus the
        # change-sets applied since (``_pending``); exhausted retries
        # degrade the shard to an in-process session, never silently.
        self.max_shard_retries = int(max_shard_retries)
        self.retry_backoff = float(retry_backoff)
        self.resync_every = int(resync_every)
        #: structured journal of every worker fault handled.
        self.fault_events: list[ShardFaultEvent] = []
        self._pending: list[list[ChangeSet]] = [
            [] for _ in range(self.n_shards)
        ]
        self._degraded: dict[int, SchemaSession] = {}
        handoff = self.config.shard_handoff
        if handoff == "shm" and not shm_available():
            raise ConfigurationError(
                "shard_handoff='shm' requires working POSIX shared memory, "
                "which this platform failed to provide; use 'auto' or "
                "'pickle'"
            )
        if handoff == "auto":
            handoff = "shm" if self.parallel and shm_available() else "pickle"
        #: resolved handoff mode: ``"shm"`` ships columnar parts through
        #: shared-memory blocks, ``"pickle"`` ships whole change-sets.
        #: Serial mode never consults it (shards apply in-process).
        self.handoff = handoff
        self._shm_registry = global_shm_registry()
        #: futures submitted to each shard's pool and not yet collected
        #: (pipelined mode keeps several in flight per shard).
        self._shard_inflight = [0] * self.n_shards
        if not self.parallel:
            self._shards = [
                self._make_shard_session(index) for index in range(self.n_shards)
            ]

    # ------------------------------------------------------------------
    # Shard plumbing
    # ------------------------------------------------------------------
    def _make_shard_session(self, index: int) -> SchemaSession:
        return SchemaSession(
            self._shard_config,
            schema_name=f"{self.schema_name}-shard{index}",
            retain_union=self._retain_union,
            streaming_postprocess=self._streaming,
            track_keys=self._track_keys,
        )

    def _make_shard_pool(self, index: int) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=1,
            initializer=_worker_init,
            initargs=(
                self._shard_config,
                f"{self.schema_name}-shard{index}",
                self._retain_union,
                self._streaming,
                self._track_keys,
            ),
        )

    def _ensure_pools(self) -> list[ProcessPoolExecutor]:
        if self._pools is None:
            self._pools = [
                self._make_shard_pool(index) for index in range(self.n_shards)
            ]
        return self._pools

    def close(self) -> None:
        """Shut down worker processes (no-op in serial mode)."""
        if self._pools is not None:
            for pool in self._pools:
                pool.shutdown(wait=True)
            self._pools = None

    def __enter__(self) -> "ShardedSchemaSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def sequence(self) -> int:
        """Number of change-sets applied to the sharded session."""
        return self._sequence

    @property
    def dirty(self) -> bool:
        """True when some shard changed since the last merged read."""
        return self._merged_state is None or any(self._shard_dirty)

    @property
    def shard_sessions(self) -> list[SchemaSession]:
        """The in-process shard sessions (serial mode only)."""
        if self._shards is None:
            raise ConfigurationError(
                "shard sessions live in worker processes under parallel=True"
            )
        return self._shards

    def __repr__(self) -> str:
        mode = "parallel" if self.parallel else "serial"
        return (
            f"ShardedSchemaSession(name={self.schema_name!r}, "
            f"n_shards={self.n_shards}, mode={mode}, "
            f"changes={self._sequence})"
        )

    # ------------------------------------------------------------------
    # Change feed
    # ------------------------------------------------------------------
    def apply(self, change_set: ChangeSet) -> ShardedChangeReport:
        """Partition one change-set and apply the parts to their shards.

        Columnar change-sets partition over the batch's id column and the
        per-shard sub-change-sets stay columnar, so every shard ingests
        through the zero-copy path; the node registry then stores compact
        records instead of :class:`Node` objects.
        """
        prepared = self._prepare(change_set)
        start = time.perf_counter()  # repro-lint: ignore[PGL102] -- dispatch wall-clock goes into the batch report only, never into state
        try:
            shard_reports = self._dispatch(prepared.parts)
        except Exception:
            self._rollback(prepared)
            raise
        seconds = time.perf_counter() - start  # repro-lint: ignore[PGL102] -- dispatch wall-clock goes into the batch report only, never into state
        sequence = self._commit_coordinator(prepared)
        return self._build_report(prepared, sequence, shard_reports, seconds)

    def _prepare(self, change_set: ChangeSet) -> _PreparedChange:
        """Stage one change-set: seed registry/signatures and partition.

        Rejection during staging rolls its own seeds back; once the
        staged parts exist the caller owns the rollback-vs-commit
        decision around dispatch.
        """
        if change_set.has_deletions and not self._retain_union:
            raise ConfigurationError(
                "deletions require retained union graphs: construct the "
                "sharded session with PGHiveConfig(retain_union=True)"
            )
        interner_before = self._interner
        pinned_before = self._interner_pinned
        seeded: list[str] = []
        seeded_signatures: list[int] = []
        columnar = change_set.columnar
        batch_records: dict[str, tuple[int, int, tuple]] = {}
        if columnar is not None:
            if change_set.nodes or change_set.edges:
                raise ConfigurationError(
                    "a change-set carries either element-wise or columnar "
                    "inserts, not both"
                )
            if columnar.interner is not self._interner:
                if self._interner_pinned:
                    raise ConfigurationError(
                        "columnar change-sets of one sharded session must "
                        "all share one Interner: the node registry stores "
                        "interner-local ids, and records from a different "
                        "interner would decode to wrong content"
                    )
                self._interner = columnar.interner
                self._signatures.interner = columnar.interner
            self._interner_pinned = True
            registry = self._registry
            # Build each node's compact record once: it seeds the registry
            # *and* pre-warms the partitioner's record cache.  The batch
            # already carries the structural signature column, so seeding
            # the signature refcounts rides the same pass.
            batch_signatures: dict[str, int] = {}
            signature_list = columnar.nodes.signature_list
            for row, node_id in enumerate(columnar.nodes.ids):
                if node_id not in batch_records:
                    batch_records[node_id] = columnar.node_record(row)
                    batch_signatures[node_id] = signature_list[row]
            for node_id, record in batch_records.items():
                if node_id not in registry:
                    registry[node_id] = record
                    seeded.append(node_id)
                    signature_id = batch_signatures[node_id]
                    self._signatures.add(signature_id)
                    seeded_signatures.append(signature_id)
            inserted_node_ids = set(batch_records)
            nodes_inserted = columnar.node_count
            edges_inserted = columnar.edge_count
        else:
            for node in change_set.nodes:
                if node.node_id not in self._registry:
                    self._registry[node.node_id] = node
                    seeded.append(node.node_id)
                    signature_id = self._record_signature(
                        _entry_to_record(node, self._interner)
                    )
                    self._signatures.add(signature_id)
                    seeded_signatures.append(signature_id)
            inserted_node_ids = {n.node_id for n in change_set.nodes}
            nodes_inserted = len(change_set.nodes)
            edges_inserted = len(change_set.edges)
        prepared = _PreparedChange(
            change_set=change_set,
            parts={},
            deleted_nodes={
                node_id
                for node_id in change_set.delete_nodes
                if node_id in self._registry
            },
            inserted_node_ids=inserted_node_ids,
            nodes_inserted=nodes_inserted,
            edges_inserted=edges_inserted,
            seeded=seeded,
            seeded_signatures=seeded_signatures,
            interner_before=interner_before,
            pinned_before=pinned_before,
        )
        try:
            if columnar is not None:
                prepared.parts = partition_columnar(
                    self._partitioner,
                    change_set,
                    _RegistryView(
                        self._registry, self._interner, as_record=True
                    ),
                    record_cache=batch_records,
                )
            else:
                prepared.parts = self._partitioner.partition(
                    change_set,
                    _RegistryView(
                        self._registry, self._interner, as_record=False
                    ),
                )
        except Exception:
            self._rollback(prepared)
            raise
        return prepared

    def _rollback(self, prepared: _PreparedChange) -> None:
        """Un-stage a rejected change-set.

        The coordinator must end up as if the batch never happened:
        un-seed the registry entries of this batch and restore the
        interner pin (PR 7's poisoning class, now caught by PGL802).
        Signature seeds roll back with their registry entries -- before
        the interner pin is restored, while their ids are still
        resolvable.
        """
        for node_id in prepared.seeded:
            del self._registry[node_id]
        for signature_id in prepared.seeded_signatures:
            self._signatures.remove(signature_id)
        self._interner = prepared.interner_before
        self._interner_pinned = prepared.pinned_before
        self._signatures.interner = prepared.interner_before

    def _commit_coordinator(self, prepared: _PreparedChange) -> int:
        """Commit coordinator effects; returns the sequence number.

        Union-registry deletions commit only once the parts reached
        their shards (after dispatch in :meth:`apply`, at submission in
        :meth:`ingest_stream` -- either way, before the next change-set
        partitions, which keeps the registry serial-equivalent), so a
        rejected batch cannot leave the registry missing nodes the
        shards still hold.  The signature decrement reads the registry
        entry before it is dropped.
        """
        for node_id in prepared.deleted_nodes:
            self._signatures.remove(
                self._record_signature(
                    _entry_to_record(self._registry[node_id], self._interner)
                )
            )
            del self._registry[node_id]
        self._sequence += 1
        return self._sequence

    def _build_report(
        self,
        prepared: _PreparedChange,
        sequence: int,
        shard_reports: tuple[tuple[int, ChangeReport], ...],
        seconds: float,
    ) -> ShardedChangeReport:
        stubs = (
            frozenset(prepared.change_set.stub_node_ids)
            & prepared.inserted_node_ids
        )
        report = ShardedChangeReport(
            sequence=sequence,
            nodes_inserted=prepared.nodes_inserted - len(stubs),
            edges_inserted=prepared.edges_inserted,
            nodes_deleted=len(prepared.deleted_nodes),
            edges_deleted=sum(r.edges_deleted for _, r in shard_reports),
            seconds=seconds,
            shard_reports=shard_reports,
        )
        self.reports.append(report)
        return report

    def add_batch(self, batch: PropertyGraph) -> ShardedChangeReport:
        """Sugar: apply one insert-only property-graph batch."""
        return self.apply(ChangeSet.from_graph(batch))

    def _record_signature(self, record: tuple[int, int, tuple]) -> int:
        """The structural-signature id of one compact node record."""
        labelset_id, keyset_id, values = record
        return self._interner.intern_element_signature(
            labelset_id, keyset_id, value_shapes(values)
        )

    def _dispatch(
        self, parts: dict[int, ChangeSet]
    ) -> tuple[tuple[int, ChangeReport], ...]:
        return self._collect_dispatch(self._submit_parts(parts))

    def _submit_parts(self, parts: dict[int, ChangeSet]) -> _InflightDispatch:
        """Ship one change-set's parts to their shards without waiting.

        Serial and degraded shards apply inline (there is no process to
        overlap with); live parallel shards get their part submitted to
        their pinned single-worker pool -- through a shared-memory block
        under the ``"shm"`` handoff, a pickle otherwise -- and the
        returned dispatch carries the futures plus the block names to
        release at collection.
        """
        inflight = _InflightDispatch(parts=parts)
        if not parts:
            return inflight
        for index in parts:
            self._shard_dirty[index] = True
        if not self.parallel:
            for index, part in parts.items():
                inflight.reports[index] = self._shards[index].apply(part)
            return inflight
        pools = self._ensure_pools()
        for index, part in parts.items():
            session = self._degraded.get(index)
            if session is not None:
                inflight.reports[index] = self._degraded_apply(session, part)
                continue
            try:
                if self.handoff == "shm" and part.columnar is not None:
                    descriptor = encode_changeset_shm(part, self._shm_registry)
                    inflight.blocks[index] = descriptor.block
                    inflight.futures[index] = pools[index].submit(
                        _worker_apply_shm, descriptor
                    )
                else:
                    inflight.futures[index] = pools[index].submit(
                        _worker_apply, part
                    )
                self._shard_inflight[index] += 1
            except (OSError, BrokenProcessPool) as error:
                inflight.failed[index] = error
        return inflight

    def _collect_dispatch(
        self, inflight: _InflightDispatch
    ) -> tuple[tuple[int, ChangeReport], ...]:
        """Wait for one dispatch and fold in crash recovery.

        A shard may have degraded between this dispatch's submission and
        now (an earlier pipelined dispatch exhausted its retries); its
        broken future then lands in ``failed`` and the part replays on
        the degraded in-process session instead of the recovery path.
        Shared-memory blocks release unconditionally -- the creator-side
        reference is dropped even when collection raises.
        """
        parts, reports = inflight.parts, inflight.reports
        failed = inflight.failed
        try:
            if inflight.futures:
                wait(list(inflight.futures.values()))
                for index, future in inflight.futures.items():
                    self._shard_inflight[index] -= 1
                    try:
                        reports[index] = future.result()
                        self._record_applied(index, parts[index])
                    except (OSError, BrokenProcessPool) as error:
                        failed[index] = error
            for index in sorted(failed):
                session = self._degraded.get(index)
                if session is not None:
                    reports[index] = self._degraded_apply(
                        session, parts[index]
                    )
                else:
                    reports[index] = self._recover_shard_op(
                        index, "apply", (parts[index],), failed[index]
                    )
        finally:
            for name in inflight.blocks.values():
                self._shm_registry.release(name)
            inflight.blocks.clear()
        return tuple(sorted(reports.items()))

    def ingest_stream(
        self,
        change_sets: Iterable[ChangeSet],
        *,
        max_inflight: int | None = None,
    ) -> list[ShardedChangeReport]:
        """Apply a whole change feed with pipelined shard dispatch.

        Serial mode applies the feed change-set by change-set (there is
        nothing to overlap).  Parallel mode overlaps the coordinator
        stages of later change-sets -- partitioning, registry seeding,
        shared-memory encoding -- with shard workers still ingesting
        earlier ones: each change-set's coordinator effects commit at
        submission (so the next change-set partitions against the exact
        serial-equivalent registry), while worker results are collected
        through a bounded window of ``max_inflight`` dispatches for
        backpressure.  Single-worker pools apply each shard's parts in
        submission order, so per-shard state is identical to lockstep
        :meth:`apply` calls; reports come back in feed order.

        Unlike :meth:`apply`, a change-set rejected *worker-side* after
        its submission cannot roll the coordinator back (later
        change-sets already partitioned against it); the error still
        surfaces.  Coordinator-side rejection (the common class) is
        detected at staging and rolls back exactly like :meth:`apply`.
        """
        if max_inflight is None:
            max_inflight = max(2, self.n_shards)
        if max_inflight < 1:
            raise ConfigurationError(
                f"max_inflight must be >= 1, got {max_inflight}"
            )
        if not self.parallel:
            return [self.apply(change_set) for change_set in change_sets]
        reports: list[ShardedChangeReport] = []
        window: deque[
            tuple[_PreparedChange, int, _InflightDispatch, float]
        ] = deque()
        try:
            for change_set in change_sets:
                # Backpressure: a full window blocks on the oldest
                # dispatch, and an oversized pending-replay tail drains
                # the window until the eager resync can run (it is
                # suppressed while its shard has futures in flight).
                while len(window) >= max_inflight or (
                    window
                    and any(
                        len(pending) >= self.resync_every
                        for pending in self._pending
                    )
                ):
                    reports.append(self._finish_pipelined(*window.popleft()))
                prepared = self._prepare(change_set)
                start = time.perf_counter()  # repro-lint: ignore[PGL102] -- dispatch wall-clock goes into the batch report only, never into state
                try:
                    inflight = self._submit_parts(prepared.parts)
                except Exception:
                    self._rollback(prepared)
                    raise
                sequence = self._commit_coordinator(prepared)
                window.append((prepared, sequence, inflight, start))
            while window:
                reports.append(self._finish_pipelined(*window.popleft()))
        except BaseException:
            # Drain what remains so shm blocks release and inflight
            # counters stay truthful; the first error wins.
            while window:
                entry = window.popleft()
                try:
                    self._finish_pipelined(*entry)
                except Exception:
                    pass
            raise
        return reports

    def _finish_pipelined(
        self,
        prepared: _PreparedChange,
        sequence: int,
        inflight: _InflightDispatch,
        start: float,
    ) -> ShardedChangeReport:
        shard_reports = self._collect_dispatch(inflight)
        seconds = time.perf_counter() - start  # repro-lint: ignore[PGL102] -- dispatch wall-clock goes into the batch report only, never into state
        return self._build_report(prepared, sequence, shard_reports, seconds)

    def _record_applied(self, index: int, part: ChangeSet) -> None:
        """Track a worker-applied change-set for crash resubmission.

        The pending list replays on top of the shard's last fetched
        state after a pool restart; it is cleared whenever a fresh state
        snapshot is fetched.  Past ``resync_every`` entries the state is
        resynced eagerly so an unread feed cannot grow the replay tail
        without bound.
        """
        pending = self._pending[index]
        pending.append(part)
        # While the shard still has futures in flight (pipelined mode) a
        # state fetch would queue behind them and include their effects,
        # so crash replay of the still-pending parts would double-apply:
        # resync only at quiescence (ingest_stream drains to get there).
        if len(pending) >= self.resync_every and not self._shard_inflight[index]:
            self._store_fetched_state(index, self._shard_op(index, "state"))
            self._shard_dirty[index] = False
            # The cached per-shard state is current, but the merged
            # snapshot is not -- drop it so the next read re-merges.
            self._merged_state = None

    def _store_fetched_state(self, index: int, state: DiscoveryState) -> None:
        """Adopt a freshly fetched shard state as the recovery baseline."""
        self._shard_states[index] = state
        self._pending[index].clear()

    # ------------------------------------------------------------------
    # Worker fault handling (parallel mode)
    # ------------------------------------------------------------------
    @property
    def degraded_shards(self) -> list[int]:
        """Shards that fell back to in-process serial execution."""
        return sorted(self._degraded)

    def worker_pids(self) -> dict[int, int]:
        """PID of each live shard worker (parallel mode only).

        The fault-injection tests SIGKILL these to exercise real worker
        death rather than a simulated exception.
        """
        if not self.parallel:
            raise ConfigurationError(
                "worker_pids() requires parallel=True (serial shards live "
                "in this process)"
            )
        pools = self._ensure_pools()
        return {
            index: pools[index].submit(os.getpid).result()
            for index in range(self.n_shards)
            if index not in self._degraded
        }

    def _shard_op(self, index: int, op: str, *args):
        """Run one worker operation with crash recovery."""
        session = self._degraded.get(index)
        if session is not None:
            if op == "apply":
                return self._degraded_apply(session, args[0])
            return _degraded_op(session, op, *args)
        try:
            if op == "apply":
                return self._apply_via_pool(
                    self._ensure_pools()[index], args[0]
                )
            return self._ensure_pools()[index].submit(
                _WORKER_OPS[op], *args
            ).result()
        except (OSError, BrokenProcessPool) as error:
            return self._recover_shard_op(index, op, args, error)

    def _apply_via_pool(
        self, pool: ProcessPoolExecutor, part: ChangeSet
    ) -> ChangeReport:
        """Apply one change-set through a shard pool, active handoff.

        Recovery replay must ship parts the same way the live path does:
        under the shm handoff a worker decodes every batch against its
        current interner, and slipping a pickled batch (which carries a
        coordinator-lineage interner copy) in between would break the
        grow-only id lineage its signature refcounts rely on.
        """
        if self.handoff == "shm" and part.columnar is not None:
            descriptor = encode_changeset_shm(part, self._shm_registry)
            try:
                return pool.submit(_worker_apply_shm, descriptor).result()
            finally:
                self._shm_registry.release(descriptor.block)
        return pool.submit(_worker_apply, part).result()

    def _degraded_apply(
        self, session: SchemaSession, part: ChangeSet
    ) -> ChangeReport:
        """Apply one change-set on a degraded in-process session.

        Under the shm handoff the degraded session's interner is a
        worker-lineage copy (restored from the recovery baseline), so
        the part -- built against the coordinator's interner -- is
        rebased onto the session's interner first; under the pickle
        handoff batches already carry a compatible interner.
        """
        if self.handoff == "shm":
            part = rebase_changeset(
                part, session.discovery_state.interner or global_interner()
            )
        return session.apply(part)

    def _recover_shard_op(self, index: int, op: str, args, error):
        """Restart the shard's pool and re-run ``op``; degrade when the
        retry budget is exhausted."""
        detail = f"{type(error).__name__}: {error}"
        for attempt in range(1, self.max_shard_retries + 1):
            self.fault_events.append(
                ShardFaultEvent("retry", index, attempt, detail)
            )
            self._backoff(attempt)
            try:
                self._restart_shard_pool(index)
                if op == "apply":
                    result = self._apply_via_pool(self._pools[index], args[0])
                else:
                    result = self._pools[index].submit(
                        _WORKER_OPS[op], *args
                    ).result()
            except (OSError, BrokenProcessPool) as retry_error:
                detail = f"{type(retry_error).__name__}: {retry_error}"
                continue
            if op == "apply":
                self._record_applied(index, args[0])
            return result
        session = self._degrade_shard(index, detail)
        if op == "apply":
            return self._degraded_apply(session, args[0])
        return _degraded_op(session, op, *args)

    def _backoff(self, attempt: int) -> None:
        delay = min(self.retry_backoff * (2 ** (attempt - 1)), 1.0)
        if delay > 0:
            time.sleep(delay)  # repro-lint: ignore[PGL102] -- bounded restart backoff; wall-clock never reaches discovery state

    def _restart_shard_pool(self, index: int) -> None:
        """Replace a dead worker pool and rebuild its session state."""
        pools = self._ensure_pools()
        pools[index].shutdown(wait=False, cancel_futures=True)
        pools[index] = self._make_shard_pool(index)
        baseline = self._shard_states[index]
        if baseline is not None:
            pools[index].submit(
                _worker_adopt,
                baseline,
                self._shard_config,
                f"{self.schema_name}-shard{index}",
                self._streaming,
                self._track_keys,
            ).result()
        for part in self._pending[index]:
            self._apply_via_pool(pools[index], part)

    def _degrade_shard(self, index: int, detail: str) -> SchemaSession:
        """Exhausted retries: rebuild the shard in-process and continue.

        Correctness is preserved (last fetched state + pending replay,
        exactly what a pool restart resubmits); parallelism for this
        shard is not.  Surfaced as a :class:`DegradedModeWarning` plus a
        structured ``"degraded"`` fault event -- never silent.
        """
        self.fault_events.append(
            ShardFaultEvent("degraded", index, self.max_shard_retries, detail)
        )
        warnings.warn(
            DegradedModeWarning(
                f"shard {index} of {self.schema_name!r}: worker pool failed "
                f"after {self.max_shard_retries} restart(s) ({detail}); "
                "continuing in-process serially"
            ),
            stacklevel=4,
        )
        if self._pools is not None:
            self._pools[index].shutdown(wait=False, cancel_futures=True)
        baseline = self._shard_states[index]
        if baseline is None:
            session = self._make_shard_session(index)
        else:
            # Independent copy: the cached snapshot keeps serving merged
            # reads and must not alias the now-mutable degraded session
            # state.  ``clone`` shares the grow-only interner instead of
            # re-pickling it with the body.
            session = SchemaSession.from_state(
                baseline.clone(),
                self._shard_config,
                schema_name=f"{self.schema_name}-shard{index}",
                streaming_postprocess=self._streaming,
                track_keys=self._track_keys,
            )
        for part in self._pending[index]:
            self._degraded_apply(session, part)
        self._pending[index].clear()
        self._degraded[index] = session
        return session

    # ------------------------------------------------------------------
    # Merged read view
    # ------------------------------------------------------------------
    def _fetch_state(self, index: int) -> DiscoveryState:
        if not self.parallel:
            return self._shards[index].discovery_state
        return self._shard_op(index, "state")

    def _refresh_states(self) -> list[DiscoveryState]:
        states: list[DiscoveryState] = []
        if self.parallel:
            # Fetch all dirty live shards concurrently (pickle
            # round-trips); a dead worker falls back to the serial
            # crash-recovery path below.
            pools = self._ensure_pools()
            futures = {}
            for index in range(self.n_shards):
                if index in self._degraded:
                    continue
                if self._shard_dirty[index] or self._shard_states[index] is None:
                    try:
                        futures[index] = pools[index].submit(_worker_state)
                    except (OSError, BrokenProcessPool):
                        continue
            if futures:
                wait(list(futures.values()))
            for index, future in futures.items():
                try:
                    self._store_fetched_state(index, future.result())
                except (OSError, BrokenProcessPool):
                    continue
                self._shard_dirty[index] = False
        for index in range(self.n_shards):
            if self._shard_dirty[index] or self._shard_states[index] is None:
                state = self._fetch_state(index)
                if self.parallel:
                    self._store_fetched_state(index, state)
                else:
                    self._shard_states[index] = state  # repro-lint: ignore[PGL802] -- per-shard fetch+store commit together each iteration; a fetch failure leaves earlier shards fully stored and clean, never torn
                self._shard_dirty[index] = False
            states.append(self._shard_states[index])
        return states

    def schema(self) -> SchemaGraph:
        """The merged schema as of the last applied change-set.

        Lazily merged with dirty tracking: untouched shards contribute
        their cached state snapshot, and a read on a quiet feed returns
        the previous merged schema without any merge at all.  The merged
        schema is a value -- later writes never mutate it; the next read
        builds a fresh one.
        """
        if not self.dirty:
            return self._merged_state.schema
        states = self._refresh_states()
        merged = DiscoveryState.merged(
            states, theta=self.config.theta, name=self.schema_name
        )
        merged.sequence = self._sequence
        if self.config.post_processing:
            self._post_process(merged)
        self._merged_state = merged
        return merged.schema

    @property
    def discovery_state(self) -> DiscoveryState:
        """The merged :class:`DiscoveryState` (refreshing it if stale)."""
        self.schema()
        return self._merged_state

    def _post_process(self, merged: DiscoveryState) -> None:
        pipeline = PGHive(self.config)
        if self._streaming and merged.streaming_valid:
            pipeline.post_process_streaming(
                merged.schema, track_keys=self._track_keys
            )
        else:
            if merged.union is None:
                raise ConfigurationError(
                    "full-scan post-processing needs the merged union "
                    "graph; construct the sharded session with "
                    "retain_union=True"
                )
            pipeline.post_process(
                merged.schema, merged.union, track_keys=self._track_keys
            )

    # ------------------------------------------------------------------
    # Checkpoint / restore (per-shard manifest format)
    # ------------------------------------------------------------------
    def checkpoint(self, directory: str | Path) -> Path:
        """Write a per-shard manifest checkpoint under ``directory``.

        Layout: one ``manifest.ckpt`` (versioned header + pickled
        metadata incl. the node registry and the stream position) plus
        one ordinary :meth:`SchemaSession.checkpoint` file per shard.
        In parallel mode every shard writes its own file from inside its
        worker process.  The manifest is written last, so a directory
        with a readable manifest always has complete shard files.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        shard_files = [f"shard-{index:03d}.ckpt" for index in range(self.n_shards)]
        if self.parallel:
            pools = self._ensure_pools()
            futures = {}
            for index in range(self.n_shards):
                if index in self._degraded:
                    continue
                try:
                    futures[index] = pools[index].submit(
                        _worker_checkpoint, str(directory / shard_files[index])
                    )
                except (OSError, BrokenProcessPool):
                    continue
            if futures:
                wait(list(futures.values()))
            done = set()
            for index, future in futures.items():
                try:
                    future.result()  # surface worker-side errors
                    done.add(index)
                except (OSError, BrokenProcessPool):
                    continue
            for index in range(self.n_shards):
                if index not in done:
                    # Degraded shard, or the worker died mid-checkpoint:
                    # the recovery wrapper restarts/replays and rewrites.
                    self._shard_op(
                        index, "checkpoint", str(directory / shard_files[index])
                    )
        else:
            for index in range(self.n_shards):
                self._shards[index].checkpoint(directory / shard_files[index])
        payload = {
            "config": self.config,
            "schema_name": self.schema_name,
            "n_shards": self.n_shards,
            "parallel": self.parallel,
            "retain_union": self._retain_union,
            "streaming_postprocess": self._streaming,
            "track_keys": self._track_keys,
            "sequence": self._sequence,
            # Columnar records are encoded by content (labels, keys,
            # values): interner ids are process-local and would not
            # survive a restore in a fresh process.
            "registry": {
                node_id: (
                    entry
                    if isinstance(entry, Node)
                    else (
                        "columnar",
                        sorted(self._interner.labelset(entry[0]).labels),
                        self._interner.keyset(entry[1]).keys,
                        entry[2],
                    )
                )
                for node_id, entry in self._registry.items()
            },
            # Coordinator signature seeds, content-encoded like the
            # registry records (ids are process-local).
            "signatures": self._signatures.snapshot(),
            "shard_files": shard_files,
        }
        write_artifact(
            directory / MANIFEST_NAME,
            MANIFEST_MAGIC,
            MANIFEST_VERSION,
            pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL),
        )
        return directory

    @classmethod
    def restore(
        cls, directory: str | Path, *, parallel: bool | None = None
    ) -> "ShardedSchemaSession":
        """Rebuild a sharded session from :meth:`checkpoint` output.

        ``parallel`` overrides the execution mode of the restored session
        (the on-disk format is mode-agnostic: shard checkpoints are plain
        session checkpoints either way).  Only restore manifests from
        trusted sources: payloads are pickles.
        """
        directory = Path(directory)
        manifest = directory / MANIFEST_NAME
        _, data = read_artifact(
            manifest,
            MANIFEST_MAGIC,
            version=MANIFEST_VERSION,
            legacy_versions=MANIFEST_LEGACY_VERSIONS,
        )
        try:
            payload = pickle.loads(data)
        except Exception as error:
            raise CheckpointCorruptError(
                f"{manifest}: corrupt manifest payload: {error}"
            ) from error
        session = cls(
            payload["config"],
            schema_name=payload["schema_name"],
            n_shards=payload["n_shards"],
            parallel=payload.get("parallel", False) if parallel is None else parallel,
            retain_union=payload["retain_union"],
            streaming_postprocess=payload["streaming_postprocess"],
            track_keys=payload["track_keys"],
        )
        session._sequence = payload["sequence"]
        interner = global_interner()
        registry: dict[str, object] = {}
        for node_id, entry in payload["registry"].items():
            if isinstance(entry, Node):
                registry[node_id] = entry
            else:
                _, labels, keys, values = entry
                labelset_id = interner.intern_labels(labels)
                keyset_id = interner.intern_keys(keys)
                registry[node_id] = (labelset_id, keyset_id, tuple(values))
        session._registry = registry
        session._interner = interner
        # Pre-dedup manifests carry no signature seeds; the restored
        # store starts empty and re-seeds from subsequent change-sets.
        session._signatures = SignatureStore.from_snapshot(
            payload.get("signatures"), interner
        )
        # Restored records were re-interned against the process-wide
        # interner; later columnar batches must share it.
        session._interner_pinned = any(
            not isinstance(entry, Node) for entry in registry.values()
        )
        shard_paths = [directory / name for name in payload["shard_files"]]
        if session.parallel:
            pools = session._ensure_pools()
            futures = [
                pools[index].submit(_worker_restore, str(shard_paths[index]))
                for index in range(session.n_shards)
            ]
            wait(futures)
            for future in futures:
                future.result()
            # Seed the crash-recovery baselines: a worker that dies
            # before the first merged read must get the restored state
            # resubmitted, not a fresh session.
            session._refresh_states()
        else:
            session._shards = [
                SchemaSession.restore(path) for path in shard_paths
            ]
        return session

"""LSH clustering step (section 4.2) producing candidate-type clusters.

A cluster summarises its members by the *representative pattern*
``rep(C) = (L, K, R)``: the union of labels, the union of observed property
keys, and -- for edges -- the unions of source/target label tokens.  The
representative is the candidate type handed to Algorithm 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.adaptive import AdaptiveParameters, adapt_parameters
from repro.core.config import ClusteringMethod, PGHiveConfig
from repro.core.preprocess import FeatureMatrix
from repro.lsh.elsh import EuclideanLSH
from repro.lsh.minhash import MinHashLSH
from repro.util import derive_seed


@dataclass
class Cluster:
    """One candidate type: members plus their representative pattern."""

    member_ids: list[str]
    labels: set[str] = field(default_factory=set)
    property_keys: set[str] = field(default_factory=set)
    source_tokens: set[str] = field(default_factory=set)
    target_tokens: set[str] = field(default_factory=set)
    #: per-member observed property keys (constraint inference needs them)
    member_property_keys: list[frozenset[str]] = field(default_factory=list)
    #: per-member full property maps (shared references); the streaming
    #: post-processing accumulators fold these values once, at arrival.
    member_properties: list = field(default_factory=list)
    #: per-member (source_id, target_id) pairs for edges, None for nodes.
    member_endpoints: list = field(default_factory=list)

    @property
    def is_labeled(self) -> bool:
        """True when at least one member carried a label (section 4.3)."""
        return bool(self.labels)

    @property
    def size(self) -> int:
        """Number of member instances."""
        return len(self.member_ids)


@dataclass
class ClusteringOutcome:
    """Clusters plus the parameters that produced them."""

    clusters: list[Cluster]
    parameters: AdaptiveParameters | None

    @property
    def cluster_count(self) -> int:
        """Number of clusters."""
        return len(self.clusters)


def _build_cluster(features: FeatureMatrix, member_rows: list[int]) -> Cluster:
    cluster = Cluster(member_ids=[])
    for row in member_rows:
        record = features.records[row]
        cluster.member_ids.append(record.element_id)
        cluster.labels.update(record.labels)
        cluster.property_keys.update(record.property_keys)
        cluster.member_property_keys.append(record.property_keys)
        cluster.member_properties.append(record.properties)
        cluster.member_endpoints.append(
            None
            if record.source_id is None
            else (record.source_id, record.target_id)
        )
        if record.source_token is not None:
            cluster.source_tokens.add(record.source_token)
        if record.target_token is not None:
            cluster.target_tokens.add(record.target_token)
    return cluster


def cluster_features(
    features: FeatureMatrix,
    config: PGHiveConfig,
    kind: str,
    minhash_cache: dict[tuple[int, int, int], MinHashLSH] | None = None,
) -> ClusteringOutcome:
    """Cluster one :class:`FeatureMatrix` with the configured LSH method.

    ``kind`` is ``"nodes"`` or ``"edges"``; it selects the adaptive-T
    formula and the per-kind manual overrides.

    ``minhash_cache`` (keyed by ``(num_tables, band_size, seed)``) lets an
    incremental run reuse one :class:`MinHashLSH` instance -- and with it
    the signature cache of every structural pattern seen in earlier
    batches -- whenever batches resolve to the same adaptive parameters
    (always the case under manual ``num_tables`` overrides; otherwise only
    when the adaptive formula lands on the same value).
    """
    if len(features) == 0:
        return ClusteringOutcome([], None)

    overrides = config.node_lsh if kind == "nodes" else config.edge_lsh
    label_count = len({label for record in features.records for label in record.labels})
    parameters = adapt_parameters(
        features.vectors,
        label_count=label_count,
        kind=kind,
        overrides=overrides,
        seed=derive_seed(config.seed, "adaptive", kind),
    )

    if config.method is ClusteringMethod.ELSH:
        lsh = EuclideanLSH(
            bucket_length=parameters.bucket_length,
            num_tables=parameters.num_tables,
            hashes_per_table=config.hashes_per_table,
            seed=derive_seed(config.seed, "elsh", kind),
        )
        groups = lsh.cluster(features.vectors, rule=config.grouping_rule)
    else:
        seed = derive_seed(config.seed, "minhash", kind)
        cache_key = (parameters.num_tables, config.minhash_band_size, seed)
        lsh = None if minhash_cache is None else minhash_cache.get(cache_key)
        if lsh is None:
            lsh = MinHashLSH(
                num_tables=parameters.num_tables,
                band_size=config.minhash_band_size,
                seed=seed,
            )
            if minhash_cache is not None:
                minhash_cache[cache_key] = lsh
        # cluster() runs on the batched kernel: one signatures_batch pass
        # over all token sets, served from the signature cache when warm.
        groups = lsh.cluster(features.token_sets, rule=config.grouping_rule)

    clusters = [_build_cluster(features, group_rows) for group_rows in groups]
    return ClusteringOutcome(clusters, parameters)

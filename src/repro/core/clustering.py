"""LSH clustering step (section 4.2) producing candidate-type clusters.

A cluster summarises its members by the *representative pattern*
``rep(C) = (L, K, R)``: the union of labels, the union of observed property
keys, and -- for edges -- the unions of source/target label tokens.  The
representative is the candidate type handed to Algorithm 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.accumulators import SummaryOptions, ensure_summaries
from repro.core.adaptive import AdaptiveParameters, adapt_parameters
from repro.core.config import ClusteringMethod, PGHiveConfig
from repro.core.preprocess import ColumnarFeatures, FeatureMatrix
from repro.graph.columnar import ColumnarElements, Interner
from repro.lsh.base import GroupingRule, group
from repro.lsh.elsh import EuclideanLSH
from repro.lsh.minhash import MinHashLSH
from repro.util import derive_seed


@dataclass
class Cluster:
    """One candidate type: members plus their representative pattern."""

    member_ids: list[str]
    labels: set[str] = field(default_factory=set)
    property_keys: set[str] = field(default_factory=set)
    source_tokens: set[str] = field(default_factory=set)
    target_tokens: set[str] = field(default_factory=set)
    #: per-member observed property keys (constraint inference needs them)
    member_property_keys: list[frozenset[str]] = field(default_factory=list)
    #: per-member full property maps (shared references); the streaming
    #: post-processing accumulators fold these values once, at arrival.
    member_properties: list = field(default_factory=list)
    #: per-member (source_id, target_id) pairs for edges, None for nodes.
    member_endpoints: list = field(default_factory=list)

    @property
    def is_labeled(self) -> bool:
        """True when at least one member carried a label (section 4.3)."""
        return bool(self.labels)

    @property
    def size(self) -> int:
        """Number of member instances."""
        return len(self.member_ids)


class ColumnarCluster:
    """One candidate type over columnar batch rows (no member objects).

    Exposes the same representative-pattern surface as :class:`Cluster`
    (``labels``, ``property_keys``, endpoint token sets, ``member_ids``)
    so Algorithm 2's merge decisions run unchanged, but recording is
    columnar: :meth:`record_into` attaches members and folds their value
    *columns* into the type's streaming summaries -- datatype lattice
    joins, distinct-value witnesses, and endpoint counters consume one
    column per (key-set group, key), not one cell per element.
    """

    __slots__ = (
        "block",
        "interner",
        "member_rows",
        "member_ids",
        "labels",
        "property_keys",
        "source_tokens",
        "target_tokens",
        "repeat_signature",
    )

    def __init__(
        self,
        block: ColumnarElements,
        interner: Interner,
        member_rows: list[int],
        repeat_signature: int | None = None,
    ) -> None:
        self.block = block
        self.interner = interner
        self.member_rows = member_rows
        #: Set for structural-repeat clusters (dedup fast path): every
        #: member shares this interned element signature, so recording
        #: may use the accumulator ``observe_repeat`` variants.
        self.repeat_signature = repeat_signature
        ids = block.ids
        self.member_ids = [ids[row] for row in member_rows]
        if repeat_signature is not None:
            # Every member shares one structure, so the representative
            # pattern is fully determined by the interned signature -- no
            # per-row set unions.
            signature = interner.element_signature(repeat_signature)
            self.labels = set(interner.labelset(signature.labelset_id).labels)
            self.property_keys = set(
                interner.keyset(signature.keyset_id).keys
            )
            if block.is_edges:
                self.source_tokens = {interner.string(signature.src_sid)}
                self.target_tokens = {interner.string(signature.tgt_sid)}
            else:
                self.source_tokens = set()
                self.target_tokens = set()
            return
        labelset_list = block.labelset_list
        labels: set[str] = set()
        for lid in {labelset_list[row] for row in member_rows}:
            labels |= interner.labelset(lid).labels
        self.labels = labels
        keyset_list = block.keyset_list
        property_keys: set[str] = set()
        for kid in {keyset_list[row] for row in member_rows}:
            property_keys.update(interner.keyset(kid).keys)
        self.property_keys = property_keys
        if block.is_edges:
            src_list = block.src_token_list
            tgt_list = block.tgt_token_list
            self.source_tokens = {
                interner.string(sid)
                for sid in {src_list[row] for row in member_rows}
            }
            self.target_tokens = {
                interner.string(sid)
                for sid in {tgt_list[row] for row in member_rows}
            }
        else:
            self.source_tokens = set()
            self.target_tokens = set()

    @property
    def is_labeled(self) -> bool:
        """True when at least one member carried a label (section 4.3)."""
        return bool(self.labels)

    @property
    def size(self) -> int:
        """Number of member instances."""
        return len(self.member_ids)

    def record_into(
        self,
        schema_type,
        options: SummaryOptions | None,
        exclude_record: frozenset[str] = frozenset(),
    ) -> None:
        """Attach members to ``schema_type``, folding columns vectorised.

        Element-for-element equivalent to the legacy per-member loop of
        ``type_extraction._record_members``: replayed instances are
        skipped, ``exclude_record`` stubs are never recorded, the
        summary-resurrection guard is identical, and the accumulator
        outcomes are order-invariant -- only the folding granularity
        changes (per column instead of per cell).
        """
        block = self.block
        is_edge = block.is_edges
        # Mirror the legacy guard exactly, side effects included: when the
        # type is fresh (or already carries summaries), summaries are
        # ensured *before* member recording -- so a cluster whose members
        # are all excluded stubs still leaves a (possibly empty) summary
        # bundle on a zero-instance type, exactly like the element path.
        summaries = None
        if options is not None and (
            schema_type.summaries is not None
            or schema_type.instance_count == 0
        ):
            summaries = ensure_summaries(schema_type, is_edge, options)
        instance_ids = schema_type.instance_ids
        member_ids = self.member_ids
        member_rows = self.member_rows
        fresh_rows: list[int] = []
        fresh_ids: list[str] = []
        for position, instance_id in enumerate(member_ids):
            if instance_id in exclude_record or instance_id in instance_ids:
                continue
            instance_ids.add(instance_id)
            fresh_rows.append(member_rows[position])
            fresh_ids.append(instance_id)
        if not fresh_rows:
            return
        schema_type.instance_count += len(fresh_rows)
        if summaries is None:
            # Never resurrect summaries over unfolded history.
            schema_type.summaries = None

        # Group fresh members by interned key set (dict insertion order =
        # first occurrence, which pins the KeyAccumulator's first-instance
        # semantics; members stay ascending within each group).
        keyset_list = block.keyset_list
        groups: dict[int, list[int]] = {}
        setdefault = groups.setdefault
        for position, row in enumerate(fresh_rows):
            setdefault(keyset_list[row], []).append(position)
        property_counts = schema_type.property_counts
        key_accumulator = None if summaries is None else summaries.keys
        datatypes = None if summaries is None else summaries.datatypes
        # Structural-repeat clusters carry their signature's shape string
        # (aligned with the sorted key tuple), unlocking the accumulator
        # observe_repeat fast paths; results are fold-identical.
        repeat_shape = (
            self.interner.element_signature(self.repeat_signature).shape
            if self.repeat_signature is not None and summaries is not None
            else None
        )
        for keyset_id, positions in groups.items():
            keyset = self.interner.keyset(keyset_id)
            group_size = len(positions)
            for key in keyset.keys:
                property_counts[key] += group_size
                schema_type.ensure_property(key)
            if summaries is None:
                continue
            group_rows = [fresh_rows[p] for p in positions]
            columns: dict[str, list] = {}
            for position_in_keys, key in enumerate(keyset.keys):
                values = block.columns[key].take(group_rows)
                columns[key] = values
                if repeat_shape is not None:
                    datatypes.observe_repeat(
                        key, repeat_shape[position_in_keys], values
                    )
                else:
                    datatypes.observe_column(key, values)
            if key_accumulator is not None:
                group_ids = [fresh_ids[p] for p in positions]
                if repeat_shape is not None:
                    key_accumulator.observe_repeat(
                        group_ids, keyset.keys, columns
                    )
                else:
                    key_accumulator.observe_group(
                        group_ids, keyset.keys, columns
                    )
        if (
            summaries is not None
            and is_edge
            and summaries.endpoints is not None
        ):
            source_ids = block.source_ids
            target_ids = block.target_ids
            pair_sources = [source_ids[row] for row in fresh_rows]
            pair_targets = [target_ids[row] for row in fresh_rows]
            if repeat_shape is not None:
                summaries.endpoints.observe_repeat(pair_sources, pair_targets)
            else:
                summaries.endpoints.observe_pairs(pair_sources, pair_targets)


@dataclass
class ClusteringOutcome:
    """Clusters plus the parameters that produced them."""

    clusters: list[Cluster]
    parameters: AdaptiveParameters | None

    @property
    def cluster_count(self) -> int:
        """Number of clusters."""
        return len(self.clusters)


def _build_cluster(features: FeatureMatrix, member_rows: list[int]) -> Cluster:
    cluster = Cluster(member_ids=[])
    for row in member_rows:
        record = features.records[row]
        cluster.member_ids.append(record.element_id)
        cluster.labels.update(record.labels)
        cluster.property_keys.update(record.property_keys)
        cluster.member_property_keys.append(record.property_keys)
        cluster.member_properties.append(record.properties)
        cluster.member_endpoints.append(
            None
            if record.source_id is None
            else (record.source_id, record.target_id)
        )
        if record.source_token is not None:
            cluster.source_tokens.add(record.source_token)
        if record.target_token is not None:
            cluster.target_tokens.add(record.target_token)
    return cluster


def cluster_features(
    features: FeatureMatrix,
    config: PGHiveConfig,
    kind: str,
    minhash_cache: dict[tuple[int, int, int], MinHashLSH] | None = None,
) -> ClusteringOutcome:
    """Cluster one :class:`FeatureMatrix` with the configured LSH method.

    ``kind`` is ``"nodes"`` or ``"edges"``; it selects the adaptive-T
    formula and the per-kind manual overrides.

    ``minhash_cache`` (keyed by ``(num_tables, band_size, seed)``) lets an
    incremental run reuse one :class:`MinHashLSH` instance -- and with it
    the signature cache of every structural pattern seen in earlier
    batches -- whenever batches resolve to the same adaptive parameters
    (always the case under manual ``num_tables`` overrides; otherwise only
    when the adaptive formula lands on the same value).
    """
    if len(features) == 0:
        return ClusteringOutcome([], None)

    overrides = config.node_lsh if kind == "nodes" else config.edge_lsh
    label_count = len({label for record in features.records for label in record.labels})
    parameters = adapt_parameters(
        features.vectors,
        label_count=label_count,
        kind=kind,
        overrides=overrides,
        seed=derive_seed(config.seed, "adaptive", kind),
    )

    if config.method is ClusteringMethod.ELSH:
        lsh = EuclideanLSH(
            bucket_length=parameters.bucket_length,
            num_tables=parameters.num_tables,
            hashes_per_table=config.hashes_per_table,
            seed=derive_seed(config.seed, "elsh", kind),
        )
        groups = lsh.cluster(features.vectors, rule=config.grouping_rule)
    else:
        seed = derive_seed(config.seed, "minhash", kind)
        cache_key = (parameters.num_tables, config.minhash_band_size, seed)
        lsh = None if minhash_cache is None else minhash_cache.get(cache_key)
        if lsh is None:
            lsh = MinHashLSH(
                num_tables=parameters.num_tables,
                band_size=config.minhash_band_size,
                seed=seed,
            )
            if minhash_cache is not None:
                minhash_cache[cache_key] = lsh
        # cluster() runs on the batched kernel: one signatures_batch pass
        # over all token sets, served from the signature cache when warm.
        groups = lsh.cluster(features.token_sets, rule=config.grouping_rule)

    clusters = [_build_cluster(features, group_rows) for group_rows in groups]
    return ClusteringOutcome(clusters, parameters)


def _groups_by_first_occurrence(
    group_of_element: np.ndarray, group_count: int
) -> list[list[int]]:
    """Member-row groups ordered like ``lsh.base.group_by_signature``.

    ``group_of_element`` assigns each element a dense group id; the
    result lists groups by first-member occurrence with members
    ascending -- the exact order the element-wise AND grouping produces,
    fully vectorised.
    """
    count = len(group_of_element)
    first_member = np.full(group_count, count, dtype=np.intp)
    np.minimum.at(first_member, group_of_element, np.arange(count, dtype=np.intp))
    renumber = np.empty(group_count, dtype=np.intp)
    renumber[np.argsort(first_member, kind="stable")] = np.arange(
        group_count, dtype=np.intp
    )
    dense = renumber[group_of_element]
    order = np.argsort(dense, kind="stable")
    boundaries = np.cumsum(np.bincount(dense, minlength=group_count))[:-1]
    return [rows.tolist() for rows in np.split(order, boundaries)]


def cluster_features_columnar(
    features: ColumnarFeatures,
    config: PGHiveConfig,
    kind: str,
    minhash_cache: dict[tuple[int, int, int], MinHashLSH] | None = None,
) -> ClusteringOutcome:
    """Columnar counterpart of :func:`cluster_features`.

    Identical adaptive parameters (the representation vectors are
    bit-identical) and an identical element partition in identical
    order.  On the MinHash path signatures are computed once per
    *distinct* interned (label-token, key-set[, endpoint-token])
    pattern -- handed to the kernel as pre-interned id arrays -- and the
    AND grouping runs over patterns, then expands to elements through
    the pattern-inverse column; elements with equal patterns sign
    equally, so the expanded partition equals the per-element one.
    """
    if len(features) == 0:
        return ClusteringOutcome([], None)
    block = features.block
    interner = features.interner

    labels: set[str] = set()
    for lid in np.unique(block.labelset_ids).tolist():
        labels |= interner.labelset(int(lid)).labels
    overrides = config.node_lsh if kind == "nodes" else config.edge_lsh
    parameters = adapt_parameters(
        features.vectors,
        label_count=len(labels),
        kind=kind,
        overrides=overrides,
        seed=derive_seed(config.seed, "adaptive", kind),
    )

    if config.method is ClusteringMethod.ELSH:
        lsh = EuclideanLSH(
            bucket_length=parameters.bucket_length,
            num_tables=parameters.num_tables,
            hashes_per_table=config.hashes_per_table,
            seed=derive_seed(config.seed, "elsh", kind),
        )
        member_groups = [
            list(rows)
            for rows in lsh.cluster(features.vectors, rule=config.grouping_rule)
        ]
    else:
        seed = derive_seed(config.seed, "minhash", kind)
        cache_key = (parameters.num_tables, config.minhash_band_size, seed)
        lsh = None if minhash_cache is None else minhash_cache.get(cache_key)
        if lsh is None:
            lsh = MinHashLSH(
                num_tables=parameters.num_tables,
                band_size=config.minhash_band_size,
                seed=seed,
            )
            if minhash_cache is not None:
                minhash_cache[cache_key] = lsh
        if block.is_edges:
            id_matrix = np.stack(
                [
                    block.token_sids,
                    block.src_token_sids,
                    block.tgt_token_sids,
                    block.keyset_ids,
                ],
                axis=1,
            )
        else:
            id_matrix = np.stack([block.token_sids, block.keyset_ids], axis=1)
        distinct, inverse = np.unique(id_matrix, axis=0, return_inverse=True)
        if block.is_edges:
            patterns = [
                interner.edge_pattern(int(t), int(s), int(g), int(k))
                for t, s, g, k in distinct.tolist()
            ]
        else:
            patterns = [
                interner.node_pattern(int(t), int(k))
                for t, k in distinct.tolist()
            ]
        banded = lsh.signatures(
            [pattern.tokens for pattern in patterns],
            token_ids=[pattern.minhash_ids for pattern in patterns],
        )
        inverse = np.asarray(inverse, dtype=np.intp).reshape(-1)
        if config.grouping_rule is GroupingRule.AND:
            data = np.ascontiguousarray(banded)
            raw = data.tobytes()
            stride = data.shape[1] * data.itemsize
            buckets: dict[bytes, int] = {}
            setdefault = buckets.setdefault
            group_of_pattern = np.fromiter(
                (
                    setdefault(raw[i * stride : (i + 1) * stride], len(buckets))
                    for i in range(len(patterns))
                ),
                dtype=np.intp,
                count=len(patterns),
            )
            member_groups = _groups_by_first_occurrence(
                group_of_pattern[inverse], len(buckets)
            )
        else:
            member_groups = [
                list(rows)
                for rows in group(banded[inverse], config.grouping_rule)
            ]

    clusters = [
        ColumnarCluster(block, interner, rows) for rows in member_groups
    ]
    return ClusteringOutcome(clusters, parameters)

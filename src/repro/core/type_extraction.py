"""Type extraction and merging (Algorithm 2, section 4.3).

Clusters produced by LSH are folded into the running schema graph:

1. **Labelled clusters** merge directly with the existing type carrying the
   same label token ("clusters that have the same label(s) are merged
   directly"); otherwise they found a new type.
2. **Unlabeled clusters** merge with the labelled type whose property-key
   set is Jaccard-similar at ``theta`` (0.9), then with each other, and any
   survivor becomes an ABSTRACT type (PG-Schema's escape hatch).
3. **Edge clusters** merge by label, guarded by endpoint compatibility:
   two same-label clusters merge only when their source and target token
   sets overlap.  Edge patterns (Def. 3.6) distinguish ``R = (L_s, L_t)``,
   and Table 2 datasets contain same-label edge types told apart purely by
   endpoints (e.g. the two ``ConnectsTo`` types of MB6) -- merging by bare
   label would collapse them, which is precisely SchemI's weakness.
   The merged type's endpoint unions realise ``rho_s`` (section 4.3
   "Edges").  Unlabeled edge clusters fall back to the Jaccard rule with
   the same endpoint guard.

All merging is monotone (Lemmas 1 and 2): labels, property keys, endpoints
and member instances only accumulate.
"""

from __future__ import annotations

from repro.core.accumulators import DEFAULT_OPTIONS, SummaryOptions, ensure_summaries
from repro.core.clustering import Cluster
from repro.schema.model import EdgeType, NodeType, SchemaGraph
from repro.util import jaccard


def _record_members(
    schema_type,
    cluster: Cluster,
    options: SummaryOptions | None = DEFAULT_OPTIONS,
    exclude_record: frozenset[str] = frozenset(),
) -> None:
    """Attach cluster members to a type, folding values into its summaries.

    Each member's property values are consumed exactly once per type (the
    ``record_instance`` replay guard), which is what keeps the streaming
    post-processing reads equal to a full re-scan of the union graph.
    ``options=None`` skips accumulation entirely (full-scan-only runs).
    Clusters built without value payloads -- or edge clusters without
    endpoint payloads (hand-assembled in tests) -- invalidate the type's
    summaries instead of silently under-counting.

    ``exclude_record`` lists member ids that must not be recorded at all:
    endpoint stubs shipped by a partitioner, whose instances are owned
    (and counted) by another shard.  Excluded members still shaped the
    cluster's labels and endpoint tokens -- only the instance attachment
    and value folding are skipped.

    Columnar clusters implement the equivalent semantics themselves
    (value folding runs per column, not per cell) and are dispatched to
    :meth:`~repro.core.clustering.ColumnarCluster.record_into`.
    """
    record_into = getattr(cluster, "record_into", None)
    if record_into is not None:
        record_into(schema_type, options, exclude_record)
        return
    is_edge = isinstance(schema_type, EdgeType)
    member_count = len(cluster.member_ids)
    has_values = (
        options is not None
        and len(cluster.member_properties) == member_count
        and (not is_edge or len(cluster.member_endpoints) == member_count)
    )
    summaries = None
    if has_values and (
        schema_type.summaries is not None or schema_type.instance_count == 0
    ):
        # Never resurrect summaries over unfolded history: a type whose
        # summaries were invalidated stays invalid.
        summaries = ensure_summaries(schema_type, is_edge, options)
    endpoints_list = cluster.member_endpoints
    for index, (instance_id, keys) in enumerate(
        zip(cluster.member_ids, cluster.member_property_keys)
    ):
        if instance_id in exclude_record:
            continue
        if not schema_type.record_instance(instance_id, keys):
            continue
        if summaries is None:
            schema_type.summaries = None
            continue
        endpoints = endpoints_list[index] if index < len(endpoints_list) else None
        summaries.observe(instance_id, cluster.member_properties[index], endpoints)


def _new_node_type(
    schema: SchemaGraph,
    cluster: Cluster,
    options: SummaryOptions | None,
    exclude_record: frozenset[str] = frozenset(),
) -> NodeType:
    node_type = NodeType(
        schema.new_type_id("n"), cluster.labels, abstract=not cluster.labels
    )
    _record_members(node_type, cluster, options, exclude_record)
    return schema.add_node_type(node_type)


def _new_edge_type(
    schema: SchemaGraph, cluster: Cluster, options: SummaryOptions | None
) -> EdgeType:
    edge_type = EdgeType(
        schema.new_type_id("e"), cluster.labels, abstract=not cluster.labels
    )
    _record_members(edge_type, cluster, options)
    for source_token in cluster.source_tokens:
        edge_type.source_tokens.add(source_token)
    for target_token in cluster.target_tokens:
        edge_type.target_tokens.add(target_token)
    return schema.add_edge_type(edge_type)


def _absorb_node_cluster(
    node_type: NodeType,
    cluster: Cluster,
    options: SummaryOptions | None,
    exclude_record: frozenset[str] = frozenset(),
) -> None:
    node_type.labels |= cluster.labels
    if cluster.labels:
        node_type.abstract = False
    _record_members(node_type, cluster, options, exclude_record)


def _absorb_edge_cluster(
    edge_type: EdgeType, cluster: Cluster, options: SummaryOptions | None
) -> None:
    edge_type.labels |= cluster.labels
    if cluster.labels:
        edge_type.abstract = False
    edge_type.source_tokens |= cluster.source_tokens
    edge_type.target_tokens |= cluster.target_tokens
    _record_members(edge_type, cluster, options)


def extract_node_types(
    schema: SchemaGraph,
    clusters: list[Cluster],
    theta: float,
    summary_options: SummaryOptions | None = DEFAULT_OPTIONS,
    exclude_record: frozenset[str] = frozenset(),
) -> SchemaGraph:
    """Fold node clusters into ``schema`` (lines 2-14 of Algorithm 2)."""
    unlabeled: list[Cluster] = []
    # Token index built once per call: the per-cluster lookup used to
    # linear-scan every type and recompute its token (sorted+join), which
    # dominated extraction on batches with many distinct structures.  A
    # type's token never changes inside this loop -- labelled absorption
    # unions equal label sets and unlabeled clusters contribute none --
    # so the index stays valid; first labelled type wins, as before.
    by_token: dict[str, NodeType] = {}
    for node_type in schema.node_types():
        if node_type.labels:
            by_token.setdefault(node_type.token, node_type)
    for cluster in clusters:
        if not cluster.is_labeled:
            unlabeled.append(cluster)
            continue
        token = "+".join(sorted(cluster.labels))
        existing = by_token.get(token)
        if existing is not None:
            _absorb_node_cluster(existing, cluster, summary_options, exclude_record)
        else:
            by_token[token] = _new_node_type(
                schema, cluster, summary_options, exclude_record
            )

    for cluster in unlabeled:
        target = _best_jaccard_match(
            (t for t in schema.node_types() if t.labels), cluster, theta
        )
        if target is None:
            target = _best_jaccard_match(
                (t for t in schema.node_types() if not t.labels), cluster, theta
            )
        if target is not None:
            _absorb_node_cluster(target, cluster, summary_options, exclude_record)
        else:
            _new_node_type(schema, cluster, summary_options, exclude_record)
    return schema


def extract_edge_types(
    schema: SchemaGraph,
    clusters: list[Cluster],
    theta: float,
    summary_options: SummaryOptions | None = DEFAULT_OPTIONS,
) -> SchemaGraph:
    """Fold edge clusters into ``schema`` (section 4.3 "Edges")."""
    unlabeled: list[Cluster] = []
    # Same-token candidates indexed once per call (insertion order kept
    # within each token, so the first compatible candidate matches the
    # old full-scan's choice); see extract_node_types for the validity
    # argument.  Endpoint compatibility still checks live token sets.
    by_token: dict[str, list[EdgeType]] = {}
    for edge_type in schema.edge_types():
        if edge_type.labels:
            by_token.setdefault(edge_type.token, []).append(edge_type)
    for cluster in clusters:
        if not cluster.is_labeled:
            unlabeled.append(cluster)
            continue
        token = "+".join(sorted(cluster.labels))
        existing = None
        for candidate in by_token.get(token, ()):
            if _endpoints_compatible(candidate, cluster):
                existing = candidate
                break
        if existing is not None:
            _absorb_edge_cluster(existing, cluster, summary_options)
        else:
            by_token.setdefault(token, []).append(
                _new_edge_type(schema, cluster, summary_options)
            )

    for cluster in unlabeled:
        target = _best_edge_match(schema, cluster, theta)
        if target is not None:
            _absorb_edge_cluster(target, cluster, summary_options)
        else:
            _new_edge_type(schema, cluster, summary_options)
    return schema


def extract_types(
    schema: SchemaGraph,
    node_clusters: list[Cluster],
    edge_clusters: list[Cluster],
    theta: float = 0.9,
    summary_options: SummaryOptions | None = DEFAULT_OPTIONS,
    exclude_record: frozenset[str] = frozenset(),
) -> SchemaGraph:
    """Algorithm 2 entry point: merge both cluster kinds into ``schema``.

    ``exclude_record`` skips instance attachment for the listed member
    ids (cross-shard endpoint stubs); stubs are always *nodes*, and node
    and edge ids live in separate namespaces that may overlap, so the
    exclusion applies to node extraction only -- an edge whose id happens
    to equal a stubbed node id must still be recorded.
    """
    extract_node_types(schema, node_clusters, theta, summary_options, exclude_record)
    extract_edge_types(schema, edge_clusters, theta, summary_options)
    return schema


def _best_jaccard_match(candidates, cluster: Cluster, theta: float):
    best, best_score = None, -1.0
    cluster_keys = frozenset(cluster.property_keys)
    for candidate in candidates:
        score = jaccard(candidate.property_keys, cluster_keys)
        if score >= theta and score > best_score:
            best, best_score = candidate, score
    return best


def _best_edge_match(schema: SchemaGraph, cluster: Cluster, theta: float):
    best, best_score = None, -1.0
    cluster_keys = frozenset(cluster.property_keys)
    for candidate in schema.edge_types():
        if not _endpoints_compatible(candidate, cluster):
            continue
        score = jaccard(candidate.property_keys, cluster_keys)
        if score >= theta and score > best_score:
            best, best_score = candidate, score
    return best


def _endpoints_compatible(edge_type: EdgeType, cluster: Cluster) -> bool:
    """Source and target token sets must both overlap.

    The empty token (an unlabeled endpoint) is a *wildcard*: it gives no
    evidence of incompatibility, so sides whose only information is
    unlabeled endpoints match anything.
    """
    return _tokens_overlap(
        edge_type.source_tokens, cluster.source_tokens
    ) and _tokens_overlap(edge_type.target_tokens, cluster.target_tokens)


def _tokens_overlap(left: set[str], right: set[str]) -> bool:
    left_known = left - {""}
    right_known = right - {""}
    if not left_known or not right_known:
        return True
    return bool(left_known & right_known)

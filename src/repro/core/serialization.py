"""Schema serialisation (section 4.5): PG-Schema text and XSD.

PG-Schema has no finalised concrete syntax, so -- like the paper -- we emit
both a LOOSE and a STRICT graph-type declaration in the style of the
PG-Schema paper [8]:

* **LOOSE** lists types with their labels and property names only, leaving
  room for deviation on insert;
* **STRICT** additionally prints datatypes, MANDATORY/OPTIONAL markers,
  endpoint types, and cardinalities.

The XSD export maps node and edge types to ``xs:complexType`` definitions
for interoperability with XML-based tooling.
"""

from __future__ import annotations

from xml.sax.saxutils import escape, quoteattr

from repro.schema.datatypes import DataType
from repro.schema.model import EdgeType, NodeType, SchemaGraph
from repro.schema.validation import ValidationMode

_XSD_TYPES = {
    DataType.INTEGER: "xs:integer",
    DataType.FLOAT: "xs:double",
    DataType.BOOLEAN: "xs:boolean",
    DataType.DATE: "xs:date",
    DataType.DATETIME: "xs:dateTime",
    DataType.STRING: "xs:string",
}


def _label_spec(schema_type: NodeType | EdgeType) -> str:
    if schema_type.labels:
        return " & ".join(sorted(schema_type.labels))
    return "ABSTRACT"


def _property_spec(schema_type: NodeType | EdgeType, strict: bool) -> str:
    if not schema_type.properties:
        return "{}"
    parts = []
    for key in sorted(schema_type.properties):
        spec = schema_type.properties[key]
        if not strict:
            parts.append(key)
            continue
        data_type = spec.data_type.value if spec.data_type else "ANY"
        if spec.mandatory is None:
            requirement = ""
        elif spec.mandatory:
            requirement = " MANDATORY"
        else:
            requirement = " OPTIONAL"
        parts.append(f"{key} {data_type}{requirement}")
    return "{" + ", ".join(parts) + "}"


def _node_line(node_type: NodeType, strict: bool) -> str:
    return (
        f"  ({node_type.type_id} : {_label_spec(node_type)} "
        f"{_property_spec(node_type, strict)})"
    )


def _endpoint_spec(tokens: set[str]) -> str:
    rendered = sorted(token if token else "_unlabeled_" for token in tokens)
    return " | ".join(rendered) or "ANY"


def _edge_line(edge_type: EdgeType, strict: bool) -> str:
    sources = _endpoint_spec(edge_type.source_tokens)
    targets = _endpoint_spec(edge_type.target_tokens)
    line = (
        f"  (:{sources})-[{edge_type.type_id} : {_label_spec(edge_type)} "
        f"{_property_spec(edge_type, strict)}]->(:{targets})"
    )
    if strict and edge_type.cardinality is not None:
        line += f"  /* cardinality {edge_type.cardinality} */"
    return line


def to_pg_schema(
    schema: SchemaGraph,
    mode: ValidationMode = ValidationMode.STRICT,
) -> str:
    """Render ``schema`` as a PG-Schema graph-type declaration."""
    strict = mode is ValidationMode.STRICT
    lines = [f"CREATE GRAPH TYPE {schema.name or 'DiscoveredSchema'} {mode.value} {{"]
    body: list[str] = []
    for node_type in schema.node_types():
        body.append(_node_line(node_type, strict))
    for edge_type in schema.edge_types():
        body.append(_edge_line(edge_type, strict))
    lines.append(",\n".join(body))
    lines.append("}")
    return "\n".join(lines)


def _xsd_property_elements(schema_type: NodeType | EdgeType) -> list[str]:
    elements = []
    for key in sorted(schema_type.properties):
        spec = schema_type.properties[key]
        xsd_type = _XSD_TYPES.get(spec.data_type or DataType.STRING, "xs:string")
        min_occurs = "1" if spec.mandatory else "0"
        elements.append(
            f'        <xs:element name={quoteattr(key)} type="{xsd_type}" '
            f'minOccurs="{min_occurs}" maxOccurs="1"/>'
        )
    return elements


def _sanitize_name(name: str) -> str:
    cleaned = "".join(ch if ch.isalnum() or ch in "_-." else "_" for ch in name)
    return cleaned or "unnamed"


def to_xsd(schema: SchemaGraph) -> str:
    """Render ``schema`` as an XML Schema document."""
    lines = [
        '<?xml version="1.0" encoding="UTF-8"?>',
        '<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema" '
        f'targetNamespace="urn:pg-hive:{escape(_sanitize_name(schema.name))}">',
    ]
    for node_type in schema.node_types():
        type_name = _sanitize_name(node_type.display_name)
        lines.append(f'  <xs:complexType name={quoteattr("node_" + type_name)}>')
        lines.append("    <xs:all>")
        lines.extend(_xsd_property_elements(node_type))
        lines.append("    </xs:all>")
        lines.append(
            f'    <xs:attribute name="labels" type="xs:string" '
            f'fixed={quoteattr(";".join(sorted(node_type.labels)))}/>'
        )
        lines.append("  </xs:complexType>")
    for edge_type in schema.edge_types():
        type_name = _sanitize_name(edge_type.display_name)
        lines.append(f'  <xs:complexType name={quoteattr("edge_" + type_name)}>')
        lines.append("    <xs:all>")
        lines.extend(_xsd_property_elements(edge_type))
        lines.append("    </xs:all>")
        lines.append(
            f'    <xs:attribute name="source" type="xs:string" '
            f'fixed={quoteattr(";".join(sorted(edge_type.source_tokens)))}/>'
        )
        lines.append(
            f'    <xs:attribute name="target" type="xs:string" '
            f'fixed={quoteattr(";".join(sorted(edge_type.target_tokens)))}/>'
        )
        if edge_type.cardinality is not None:
            lines.append(
                f'    <xs:attribute name="cardinality" type="xs:string" '
                f'fixed={quoteattr(str(edge_type.cardinality))}/>'
            )
        lines.append("  </xs:complexType>")
    lines.append("</xs:schema>")
    return "\n".join(lines)

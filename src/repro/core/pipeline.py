"""The PG-HIVE pipeline (Algorithm 1 / Figure 2).

:class:`PGHive` wires together the steps: (a) data load, (b) preprocessing
into representation vectors, (c) LSH clustering, (d) type extraction and
merging, then -- optionally -- (e) property constraints, (f) datatype
inference, (g) cardinalities, and (h) serialisation helpers.  The same
object also drives incremental discovery over a batch stream, delegating to
:class:`~repro.core.incremental.IncrementalSchemaDiscovery`.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable
from dataclasses import dataclass, field

import numpy as np

from repro.core.accumulators import SummaryOptions
from repro.core.adaptive import AdaptiveParameters
from repro.core.cardinality_inference import (
    compute_cardinalities,
    compute_cardinalities_streaming,
)
from repro.core.clustering import (
    ColumnarCluster,
    cluster_features,
    cluster_features_columnar,
)
from repro.core.config import ClusteringMethod, PGHiveConfig
from repro.core.constraints import infer_property_constraints
from repro.core.datatype_inference import infer_datatypes, infer_datatypes_streaming
from repro.core.preprocess import Preprocessor
from repro.core.serialization import to_pg_schema, to_xsd
from repro.core.type_extraction import extract_types
from repro.graph.columnar import (
    ColumnarElements,
    ElementBatch,
    SignatureStore,
    ValueColumn,
)
from repro.graph.model import PropertyGraph
from repro.graph.store import GraphStore
from repro.lsh.base import GroupingRule
from repro.lsh.minhash import MinHashLSH, configure_minhash_kernel
from repro.schema.model import SchemaGraph
from repro.schema.validation import ValidationMode
from repro.util import Timer

#: Table 1 capability row for PG-HIVE.
CAPABILITIES = {
    "label_independent": True,
    "multilabeled_elements": True,
    "schema_elements": "nodes, edges & constraints",
    "constraints": True,
    "incremental": True,
    "automation": True,
    "notes": "LSH and fine tuning",
}


@dataclass
class PipelineState:
    """Mutable per-run state shared across the batches of one discovery.

    The incremental engine owns one of these for its whole lifetime so the
    expensive artefacts survive from batch to batch instead of being
    rebuilt per ``add_batch`` call: the fitted :class:`Preprocessor` (the
    Word2Vec model plus its token-embedding cache) and the
    :class:`MinHashLSH` instances whose signature caches already hold
    every structural pattern seen so far.  Static discovery uses a fresh
    state per run, which degenerates to the old per-call behaviour.
    """

    preprocessor: Preprocessor | None = None
    minhash_cache: dict[tuple[int, int, int], MinHashLSH] = field(
        default_factory=dict
    )


@dataclass
class DiscoveryResult:
    """Outcome of a discovery run: the schema plus run diagnostics."""

    schema: SchemaGraph
    timer: Timer
    config: PGHiveConfig
    node_parameters: AdaptiveParameters | None = None
    edge_parameters: AdaptiveParameters | None = None
    node_cluster_count: int = 0
    edge_cluster_count: int = 0
    batches_processed: int = 1
    batch_seconds: list[float] = field(default_factory=list)

    @property
    def elapsed_seconds(self) -> float:
        """Total wall-clock time across all stages."""
        return self.timer.total

    @property
    def type_discovery_seconds(self) -> float:
        """Time until types exist (Figure 5): load+preprocess+cluster+extract."""
        return (
            self.timer.lap("preprocess")
            + self.timer.lap("clustering")
            + self.timer.lap("extraction")
        )

    def node_assignments(self) -> dict[str, str]:
        """node id -> discovered node-type id."""
        return self.schema.node_assignments()

    def edge_assignments(self) -> dict[str, str]:
        """edge id -> discovered edge-type id."""
        return self.schema.edge_assignments()

    def to_pg_schema(self, mode: ValidationMode = ValidationMode.STRICT) -> str:
        """PG-Schema rendering of the discovered schema."""
        return to_pg_schema(self.schema, mode)

    def to_xsd(self) -> str:
        """XSD rendering of the discovered schema."""
        return to_xsd(self.schema)


class PGHive:
    """Hybrid incremental schema discovery for property graphs."""

    def __init__(self, config: PGHiveConfig | None = None) -> None:
        self.config = config or PGHiveConfig()
        # Kernel choice is process-wide (signatures are bit-identical
        # either way); applying it here covers sessions and the sharded
        # workers, which all build a pipeline from their config.
        configure_minhash_kernel(self.config.minhash_kernel)

    # ------------------------------------------------------------------
    # Static discovery (single batch)
    # ------------------------------------------------------------------
    def discover(
        self,
        source: PropertyGraph | GraphStore,
        schema_name: str | None = None,
    ) -> DiscoveryResult:
        """Run the full pipeline over one graph.

        One-shot adapter over :class:`~repro.core.session.SchemaSession`:
        the graph is applied as a single change-set and post-processed by
        full scan (the union of one batch *is* the input graph), which
        preserves the historical static semantics exactly -- including
        datatype sampling, which only exists on the full-scan path.
        """
        from repro.core.session import SchemaSession

        graph = source.graph if isinstance(source, GraphStore) else source
        session = SchemaSession(
            self.config,
            schema_name=schema_name or f"{graph.name}-schema",
            retain_union=True,
            streaming_postprocess=False,
        )
        # The union of one batch is the input graph: adopt it by reference
        # instead of paying an O(|graph|) merge copy.
        session._adopt_union(graph)
        session.add_batch(graph)
        return session.finalize()

    # ------------------------------------------------------------------
    # Incremental discovery (batch stream)
    # ------------------------------------------------------------------
    def discover_incremental(
        self,
        batches: Iterable[PropertyGraph],
        schema_name: str = "incremental-schema",
    ) -> DiscoveryResult:
        """Run Algorithm 1 over a stream of insert batches.

        Adapter over :class:`~repro.core.session.SchemaSession`: each
        batch becomes one applied change-set; post-processing runs once,
        lazily, at :meth:`finalize` (or per batch when configured).
        """
        from repro.core.session import SchemaSession

        session = SchemaSession(self.config, schema_name=schema_name)
        for batch in batches:
            session.add_batch(batch)
        return session.finalize()

    # ------------------------------------------------------------------
    # Shared internals
    # ------------------------------------------------------------------
    def _process_batch(
        self,
        graph: PropertyGraph,
        schema: SchemaGraph,
        timer: Timer,
        result: DiscoveryResult,
        state: PipelineState | None = None,
        build_summaries: bool = False,
        summary_options: SummaryOptions | None = None,
        exclude_record: frozenset[str] = frozenset(),
    ) -> None:
        """Steps (b)-(d) for one batch, merging into ``schema`` in place.

        When ``state`` is supplied (incremental runs), the preprocessor is
        fitted on the first batch only and reused afterwards -- tokens the
        model never saw embed through their deterministic identity vector,
        so identical tokens still agree across batches -- and the MinHash
        signature caches persist, honouring the paper's "never revisit
        earlier batches" design.

        ``build_summaries`` feeds the per-type streaming accumulators
        during extraction; only the session's streaming path sets it --
        static discovery and the union-rescan oracle post-process by full
        scan, so building summaries there would be pure overhead.  When
        set, ``summary_options`` overrides the config-derived tracking
        options (the session uses it to apply its per-session key flag).

        ``exclude_record`` names batch elements that must not be recorded
        as instances -- endpoint stubs owned by another shard.  They still
        participate in preprocessing and clustering (endpoint tokens and
        batch well-formedness need them) but contribute no counts, specs,
        or accumulator folds.
        """
        if state is None:
            state = PipelineState()
        summary_options = self._resolve_summary_options(
            build_summaries, summary_options
        )
        with timer.measure("preprocess"):
            if state.preprocessor is None:
                state.preprocessor = Preprocessor(self.config).fit(graph)
            preprocessor = state.preprocessor
            node_features = preprocessor.node_features(graph)
            edge_features = preprocessor.edge_features(graph)
        with timer.measure("clustering"):
            node_outcome = cluster_features(
                node_features, self.config, "nodes", state.minhash_cache
            )
            edge_outcome = cluster_features(
                edge_features, self.config, "edges", state.minhash_cache
            )
        self._extract_and_tally(
            schema, timer, result, node_outcome, edge_outcome,
            summary_options, exclude_record,
        )

    def _process_batch_columnar(
        self,
        batch: ElementBatch,
        schema: SchemaGraph,
        timer: Timer,
        result: DiscoveryResult,
        state: PipelineState | None = None,
        build_summaries: bool = False,
        summary_options: SummaryOptions | None = None,
        exclude_record: frozenset[str] = frozenset(),
        signatures: SignatureStore | None = None,
    ) -> None:
        """Steps (b)-(d) for one columnar batch (the zero-copy fast path).

        Mirrors :meth:`_process_batch` stage for stage but never touches
        element objects: the preprocessor assembles vectors from interned
        id columns, clustering signs one MinHash pattern per distinct
        (label-token, key-set) combination, and extraction folds value
        columns into the per-type accumulators.  Schema results are
        fingerprint-identical to the element-wise path over the
        materialised batch (the columnar oracle suite pins this).

        ``signatures`` enables content-addressable structural dedup: rows
        whose element signature already has a live refcount (a *prior
        batch* carried the same structure) skip preprocessing and
        clustering and fold straight into the accumulators through
        per-signature repeat clusters.  The split only engages for
        exact-grouping clustering (MinHash + AND), where cluster
        membership is a pure function of the interned id columns the
        signature already captures -- so splitting cannot change the
        discovered schema, only the work done to discover it.  Refcounts
        are maintained whenever a store is supplied (even when the split
        is gated off) so deletions can decrement symmetrically.
        """
        if state is None:
            state = PipelineState()
        summary_options = self._resolve_summary_options(
            build_summaries, summary_options
        )
        dedup_active = (
            signatures is not None
            and self.config.structural_dedup
            and self.config.method is ClusteringMethod.MINHASH
            and self.config.grouping_rule is GroupingRule.AND
        )
        if signatures is not None:
            node_first, node_repeats = _split_repeats(
                batch.nodes, signatures, exclude_record, dedup_active
            )
            edge_first, edge_repeats = _split_repeats(
                batch.edges, signatures, frozenset(), dedup_active
            )
        if dedup_active and (node_repeats or edge_repeats):
            work = ElementBatch(
                _take_rows(batch.nodes, node_first),
                _take_rows(batch.edges, edge_first),
                batch.interner,
            )
        else:
            work = batch
            node_repeats = edge_repeats = {}
        with timer.measure("preprocess"):
            if state.preprocessor is None:
                state.preprocessor = Preprocessor(self.config).fit_batch(work)
            preprocessor = state.preprocessor
            node_features = preprocessor.node_features_columnar(work)
            edge_features = preprocessor.edge_features_columnar(work)
        with timer.measure("clustering"):
            node_outcome = cluster_features_columnar(
                node_features, self.config, "nodes", state.minhash_cache
            )
            edge_outcome = cluster_features_columnar(
                edge_features, self.config, "edges", state.minhash_cache
            )
            interner = batch.interner
            node_outcome.clusters.extend(
                ColumnarCluster(batch.nodes, interner, rows, repeat_signature=sid)
                for sid, rows in node_repeats.items()
            )
            edge_outcome.clusters.extend(
                ColumnarCluster(batch.edges, interner, rows, repeat_signature=sid)
                for sid, rows in edge_repeats.items()
            )
        self._extract_and_tally(
            schema, timer, result, node_outcome, edge_outcome,
            summary_options, exclude_record,
        )

    def _resolve_summary_options(
        self, build_summaries: bool, summary_options: SummaryOptions | None
    ) -> SummaryOptions | None:
        if not build_summaries:
            return None
        if summary_options is not None:
            return summary_options
        return SummaryOptions(
            track_keys=self.config.infer_keys,
            pair_cap=self.config.key_pair_tracking_cap,
        )

    def _extract_and_tally(
        self,
        schema: SchemaGraph,
        timer: Timer,
        result: DiscoveryResult,
        node_outcome,
        edge_outcome,
        summary_options: SummaryOptions | None,
        exclude_record: frozenset[str],
    ) -> None:
        with timer.measure("extraction"):
            extract_types(
                schema,
                node_outcome.clusters,
                edge_outcome.clusters,
                theta=self.config.theta,
                summary_options=summary_options,
                exclude_record=exclude_record,
            )
        result.node_parameters = node_outcome.parameters or result.node_parameters
        result.edge_parameters = edge_outcome.parameters or result.edge_parameters
        result.node_cluster_count += node_outcome.cluster_count
        result.edge_cluster_count += edge_outcome.cluster_count

    def post_process(
        self,
        schema: SchemaGraph,
        graph: PropertyGraph,
        track_keys: bool | None = None,
    ) -> SchemaGraph:
        """Steps (e)-(g): constraints, datatypes, cardinalities (+ keys).

        Full-scan variant: re-reads every instance's values from ``graph``.
        Used by static discovery and as the equivalence oracle for the
        streaming path below.  ``track_keys`` overrides
        ``config.infer_keys`` (the session's per-session key flag).
        """
        infer_property_constraints(schema)
        infer_datatypes(schema, graph, self.config)
        compute_cardinalities(schema, graph)
        if self.config.infer_keys if track_keys is None else track_keys:
            from repro.core.key_inference import infer_keys

            infer_keys(schema, graph)
        return schema

    def post_process_streaming(
        self, schema: SchemaGraph, track_keys: bool | None = None
    ) -> SchemaGraph:
        """Steps (e)-(g) as pure reads over the per-type accumulators.

        O(|schema|) per call and independent of how many batches the
        stream has carried: every value was folded exactly once when its
        batch arrived (see :mod:`repro.core.accumulators`), so no graph
        argument exists to re-scan.
        """
        infer_property_constraints(schema)
        infer_datatypes_streaming(schema)
        compute_cardinalities_streaming(schema)
        if self.config.infer_keys if track_keys is None else track_keys:
            from repro.core.key_inference import infer_keys_streaming

            infer_keys_streaming(schema)
        return schema


def _split_repeats(
    block: ColumnarElements,
    signatures: SignatureStore,
    exclude_record: frozenset[str],
    split: bool,
) -> tuple[list[int], dict[int, list[int]]]:
    """Classify ``block`` rows against the signature store, counting inserts.

    A row is a *repeat* iff its signature had a live refcount before this
    batch: rows of a batch-new structure all stay together on the full
    pipeline, so first-instance accumulator semantics (key-pair seeding)
    are decided by the same group fold as without dedup.  Every
    non-excluded row increments its refcount; excluded rows (endpoint
    stubs owned by another shard) are classified for the split but never
    counted, mirroring how they are never recorded -- or deleted -- here.
    """
    refcounts = signatures.refcounts
    sig_list = block.signature_list
    prior = {sid for sid in set(sig_list) if sid in refcounts}
    first_rows: list[int] = []
    repeats: dict[int, list[int]] = {}
    get = refcounts.get
    if exclude_record and block.kind == "nodes":
        ids = block.ids
        for row, sid in enumerate(sig_list):
            if ids[row] not in exclude_record:
                refcounts[sid] = get(sid, 0) + 1
    else:
        # Bulk path: fold one Counter instead of a per-row dict update.
        for sid, count in Counter(sig_list).items():
            refcounts[sid] = get(sid, 0) + count
    if split:
        for row, sid in enumerate(sig_list):
            if sid in prior:
                repeats.setdefault(sid, []).append(row)
            else:
                first_rows.append(row)
    return first_rows, repeats


def _take_rows(block: ColumnarElements, rows: list[int]) -> ColumnarElements:
    """A derived block holding only ``rows`` of ``block``, order preserved.

    Value columns are remapped through an old-row -> new-row index, which
    keeps each column's row array sorted (the slice preserves relative
    order), so downstream grouping logic sees a well-formed block.
    """
    if len(rows) == len(block):
        return block
    index = np.asarray(rows, dtype=np.intp)
    old_to_new = np.full(len(block), -1, dtype=np.intp)
    old_to_new[index] = np.arange(len(rows), dtype=np.intp)
    columns: dict[str, ValueColumn] = {}
    for key, column in block.columns.items():
        mapped = old_to_new[column.rows]
        mask = mapped >= 0
        if not mask.any():
            continue
        columns[key] = ValueColumn(mapped[mask], column.values[mask])
    ids = [block.ids[row] for row in rows]
    if block.kind == "edges":
        return ColumnarElements(
            "edges",
            ids,
            block.labelset_ids[index],
            block.token_sids[index],
            block.keyset_ids[index],
            columns,
            [block.source_ids[row] for row in rows],
            [block.target_ids[row] for row in rows],
            block.src_token_sids[index],
            block.tgt_token_sids[index],
            block.signature_ids[index],
        )
    return ColumnarElements(
        "nodes",
        ids,
        block.labelset_ids[index],
        block.token_sids[index],
        block.keyset_ids[index],
        columns,
        signature_ids=block.signature_ids[index],
    )

"""`SchemaSession`: the long-lived change-feed façade over discovery.

The paper's pipeline is exposed through several historical entry points
(:meth:`~repro.core.pipeline.PGHive.discover`, ``discover_incremental``,
:class:`~repro.core.incremental.IncrementalSchemaDiscovery`,
:class:`~repro.core.maintenance.MaintainedSchema`).  This module unifies
them: every one of those surfaces is now a thin adapter over one
:class:`SchemaSession`, which models discovery the way PG-Schema frames
schemas -- as first-class evolving objects driven by a stream of change
operations:

* **Change feed** -- :meth:`SchemaSession.apply` consumes
  :class:`~repro.graph.changes.ChangeSet` bundles (node/edge inserts plus
  node/edge deletions); :meth:`add_batch` is sugar for insert-only
  property-graph batches, and :meth:`GraphStore.attach
  <repro.graph.store.GraphStore.attach>` forwards live store mutations.
* **Snapshots** -- :meth:`schema` serves the schema at any point
  mid-stream.  Post-processing (constraints, datatypes, cardinalities,
  keys) runs lazily, only when the schema is dirty, and is cached until
  the next write; on the streaming path each refresh is an O(|schema|)
  read over the per-type accumulators.
* **Diff subscriptions** -- registered subscribers receive one
  :class:`DiffEvent` (a :class:`~repro.schema.diff.SchemaDiff` plus the
  change report) after every applied change-set, computed against a
  lightweight baseline snapshot.
* **Checkpoint / restore** -- :meth:`checkpoint` serialises the schema,
  the per-type accumulators, the MinHash signature caches, and the fitted
  preprocessor to a versioned on-disk format; :meth:`restore` resumes in
  a fresh process without replaying the stream, producing bit-identical
  subsequent results.

Deletions break the insert-monotone guarantees of the streaming
accumulators, so they are gated on a retained union graph
(``retain_union``): the first applied deletion permanently switches
post-processing to the full re-scan over the surviving union, exactly the
semantics :class:`MaintainedSchema` always had.

Since the sharded-discovery work every mutable artefact the session
accumulates -- schema, accumulators, preprocessor, MinHash caches, union
graph, stream position -- lives in one explicit
:class:`~repro.core.state.DiscoveryState` value object (the ``_dstate``
attribute, exposed read-only as :attr:`SchemaSession.discovery_state`).
Checkpoints serialise that state; :meth:`SchemaSession.from_state`
resumes from one; and :class:`~repro.core.sharding.ShardedSchemaSession`
merges one per shard through ``DiscoveryState.merge``.

Checkpoint files embed a pickle payload.  Pickle executes code on load:
only restore checkpoints produced by a process you trust.
"""

from __future__ import annotations

import pickle
from collections.abc import Callable, Iterable
from dataclasses import dataclass
from pathlib import Path

from repro.core.accumulators import SummaryOptions
from repro.core.config import PGHiveConfig
from repro.core.durability import read_artifact, write_artifact
from repro.core.pipeline import DiscoveryResult, PGHive, PipelineState
from repro.core.state import DiscoveryState
from repro.errors import (
    CheckpointCorruptError,
    ConfigurationError,
    DanglingEdgeError,
    MissingElementError,
)
from repro.graph.changes import ChangeSet
from repro.graph.columnar import (
    ElementBatch,
    SignatureStore,
    global_interner,
    value_shapes,
)
from repro.graph.model import Node, PropertyGraph
from repro.schema.diff import SchemaDiff, diff_schemas
from repro.schema.model import EdgeType, NodeType, SchemaGraph
from repro.util import Timer

#: First line of every checkpoint file: magic token + format version (+
#: payload digest and length since v2; see repro.core.durability).
CHECKPOINT_MAGIC = b"pghive-session-checkpoint"
CHECKPOINT_VERSION = 2
#: Digest-free pre-durability versions that stay readable (unverified).
CHECKPOINT_LEGACY_VERSIONS = (1,)


@dataclass(frozen=True)  # no slots: checkpoints pickle these, and
class ChangeReport:       # frozen+slots dataclasses cannot unpickle on 3.10
    """Diagnostics for one applied change-set."""

    sequence: int
    nodes_inserted: int
    edges_inserted: int
    nodes_deleted: int
    edges_deleted: int
    seconds: float
    node_types_after: int
    edge_types_after: int


@dataclass(frozen=True, slots=True)
class DiffEvent:
    """What one change-set taught the schema, delivered to subscribers."""

    sequence: int
    diff: SchemaDiff
    report: ChangeReport


#: Subscriber callback signature.
DiffSubscriber = Callable[[DiffEvent], None]


def _diff_snapshot(schema: SchemaGraph) -> SchemaGraph:
    """Cheap baseline copy for diffing: specs and tokens, no instance sets.

    :func:`~repro.schema.diff.diff_schemas` only reads labels, property
    specs, and cardinalities, so the per-change baseline skips the
    instance-id sets and streaming accumulators a full ``copy()`` would
    duplicate -- keeping subscription overhead O(|schema|) per change-set.
    """
    snapshot = SchemaGraph(schema.name)
    for node_type in schema.node_types():
        clone = NodeType(node_type.type_id, node_type.labels, node_type.abstract)
        clone.properties = {
            key: spec.copy() for key, spec in node_type.properties.items()
        }
        snapshot.add_node_type(clone)
    for edge_type in schema.edge_types():
        clone = EdgeType(edge_type.type_id, edge_type.labels, edge_type.abstract)
        clone.properties = {
            key: spec.copy() for key, spec in edge_type.properties.items()
        }
        clone.source_tokens = set(edge_type.source_tokens)
        clone.target_tokens = set(edge_type.target_tokens)
        clone.cardinality = edge_type.cardinality
        clone.cardinality_bounds = edge_type.cardinality_bounds
        snapshot.add_edge_type(clone)
    return snapshot


class SchemaSession:
    """One long-lived, observable, persistable discovery session.

    ``retain_union``, ``streaming_postprocess``, and ``track_keys``
    override the corresponding config fields for this session only (the
    adapters use them to pin their historical semantics without mutating
    the user's config object).
    """

    def __init__(
        self,
        config: PGHiveConfig | None = None,
        schema_name: str = "session-schema",
        *,
        retain_union: bool | None = None,
        streaming_postprocess: bool | None = None,
        track_keys: bool | None = None,
    ) -> None:
        self.config = config or PGHiveConfig()
        self.schema_name = schema_name
        self._retain_union = (
            self.config.retain_union if retain_union is None else retain_union
        )
        self._streaming = (
            self.config.streaming_postprocess
            if streaming_postprocess is None
            else streaming_postprocess
        )
        self._track_keys = (
            self.config.infer_keys if track_keys is None else track_keys
        )
        if not self._streaming and not self._retain_union:
            raise ConfigurationError(
                "streaming_postprocess=False re-scans the union graph and "
                "therefore requires retain_union=True"
            )
        self._pipeline = PGHive(self.config)
        #: every mutable discovery artefact, as one mergeable value object.
        self._dstate = DiscoveryState.fresh(
            schema_name, retain_union=self._retain_union
        )
        #: streaming reads stay valid until the first applied deletion.
        self._dstate.streaming_valid = self._streaming
        self._timer = Timer()
        self._result = DiscoveryResult(
            schema=self._dstate.schema,
            timer=self._timer,
            config=self.config,
            batches_processed=0,
        )
        self.reports: list[ChangeReport] = []
        self._subscribers: list[DiffSubscriber] = []
        self._baseline: SchemaGraph | None = None
        self._store = None  # set by GraphStore.attach

    # ------------------------------------------------------------------
    # DiscoveryState delegation (all mutable state lives in ``_dstate``)
    # ------------------------------------------------------------------
    @property
    def _schema(self) -> SchemaGraph:
        return self._dstate.schema

    @property
    def _state(self) -> PipelineState:
        return self._dstate.pipeline

    @property
    def _union(self) -> PropertyGraph | None:
        return self._dstate.union

    @_union.setter
    def _union(self, graph: PropertyGraph | None) -> None:
        self._dstate.union = graph

    @property
    def _dirty(self) -> bool:
        return self._dstate.dirty

    @_dirty.setter
    def _dirty(self, value: bool) -> None:
        self._dstate.dirty = value

    @property
    def _sequence(self) -> int:
        return self._dstate.sequence

    @_sequence.setter
    def _sequence(self, value: int) -> None:
        self._dstate.sequence = value

    @property
    def _streaming_valid(self) -> bool:
        return self._dstate.streaming_valid

    @_streaming_valid.setter
    def _streaming_valid(self, value: bool) -> None:
        self._dstate.streaming_valid = value

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def discovery_state(self) -> DiscoveryState:
        """The session's live :class:`DiscoveryState`.

        This is the session's *own* state, not a copy: callers may read
        it (the sharded merge does, through the non-mutating
        ``DiscoveryState.merged``) but must not mutate it.
        """
        return self._dstate

    @property
    def schema_graph(self) -> SchemaGraph:
        """The live schema *without* triggering a post-processing refresh."""
        return self._schema

    @property
    def state(self) -> PipelineState:
        """Cross-batch pipeline state (preprocessor + signature caches)."""
        return self._state

    @property
    def timer(self) -> Timer:
        """Accumulated stage timings for this session (process-local)."""
        return self._timer

    @property
    def retains_union(self) -> bool:
        """True when the session keeps a union graph (deletions allowed)."""
        return self._union is not None

    @property
    def union_graph(self) -> PropertyGraph:
        """The cumulative union graph (requires ``retain_union``)."""
        if self._union is None:
            raise ConfigurationError(
                "the incremental engine no longer retains a union graph by "
                "default; construct it with PGHiveConfig(retain_union=True)"
            )
        return self._union

    @property
    def sequence(self) -> int:
        """Number of change-sets applied so far (monotone, checkpointed)."""
        return self._sequence

    @property
    def dirty(self) -> bool:
        """True when writes arrived after the last post-processing pass."""
        return self._dirty

    # ------------------------------------------------------------------
    # Change feed
    # ------------------------------------------------------------------
    def apply(self, change_set: ChangeSet) -> ChangeReport:
        """Apply one change-set: inserts first, then deletions.

        Change-sets carrying a columnar payload take the zero-copy ingest
        path: the pipeline consumes the :class:`ElementBatch` natively
        and no per-element dataclasses are materialised (unless the
        session retains a union graph, which is maintained element-wise).
        """
        if change_set.has_deletions and self._union is None:
            raise ConfigurationError(
                "deletions require the retained union graph: construct the "
                "session with PGHiveConfig(retain_union=True)"
            )
        columnar = change_set.columnar
        if columnar is not None:
            if change_set.nodes or change_set.edges:
                raise ConfigurationError(
                    "a change-set carries either element-wise or columnar "
                    "inserts, not both"
                )
            stubs = change_set.stub_node_ids
            if stubs:
                # Guard against producers flagging ids they did not ship.
                stubs = frozenset(stubs) & set(columnar.nodes.ids)
            return self._apply(
                None,
                change_set.delete_edges,
                change_set.delete_nodes,
                inserted=(
                    columnar.node_count - len(stubs),
                    columnar.edge_count,
                ),
                exclude_record=stubs,
                columnar=columnar if len(columnar) else None,
            )
        batch = self._insert_graph(change_set)
        stubs = change_set.stub_node_ids
        if stubs:
            # Guard against producers flagging ids they did not ship.
            stubs = frozenset(stubs) & {n.node_id for n in change_set.nodes}
        return self._apply(
            batch,
            change_set.delete_edges,
            change_set.delete_nodes,
            inserted=(len(change_set.nodes) - len(stubs), len(change_set.edges)),
            exclude_record=stubs,
        )

    def add_batch(self, batch: PropertyGraph) -> ChangeReport:
        """Sugar: apply one insert-only property-graph batch.

        Unlike :meth:`apply` on an insert-free change-set, an *empty*
        batch still runs the pipeline step (fitting the preprocessor on
        the first batch, empty or not, exactly as the historical engine
        did).
        """
        return self._apply(
            batch, (), (), inserted=(batch.node_count, batch.edge_count)
        )

    def _apply(
        self,
        batch: PropertyGraph | None,
        delete_edge_ids: Iterable[str],
        delete_node_ids: Iterable[str],
        inserted: tuple[int, int] = (0, 0),
        exclude_record: frozenset[str] = frozenset(),
        columnar: ElementBatch | None = None,
    ) -> ChangeReport:
        """Shared apply path.  ``inserted`` is the *producer's* insert
        count -- endpoint stubs resolved into the materialised batch are
        replays, not inserts, and must not inflate the report.
        ``exclude_record`` carries producer-marked stub ids (sharded
        feeds): clustered but never recorded as instances."""
        self._sequence += 1
        nodes_deleted = edges_deleted = 0
        change_timer = Timer()
        with change_timer.measure("change"):
            if batch is not None:
                self._ingest(batch, exclude_record)
            elif columnar is not None:
                self._ingest_columnar(columnar, exclude_record)
            if delete_edge_ids or delete_node_ids:
                edges_deleted = self._delete_edges(delete_edge_ids)
                nodes_deleted, cascaded = self._delete_nodes(delete_node_ids)
                edges_deleted += cascaded
            if self.config.post_process_each_batch:
                self._flush_postprocess()
        self._result.batches_processed += 1
        seconds = change_timer.lap("change")
        self._result.batch_seconds.append(seconds)
        report = ChangeReport(
            sequence=self._sequence,
            nodes_inserted=inserted[0],
            edges_inserted=inserted[1],
            nodes_deleted=nodes_deleted,
            edges_deleted=edges_deleted,
            seconds=seconds,
            node_types_after=self._schema.node_type_count,
            edge_types_after=self._schema.edge_type_count,
        )
        self.reports.append(report)
        self._emit(report)
        return report

    def _ingest(
        self,
        batch: PropertyGraph,
        exclude_record: frozenset[str] = frozenset(),
    ) -> None:
        """Steps (b)-(d) for one insert batch, merging into the schema."""
        self._pipeline._process_batch(
            batch,
            self._schema,
            self._timer,
            self._result,
            self._state,
            build_summaries=(
                self._streaming
                and self._streaming_valid
                and self.config.post_processing
            ),
            summary_options=SummaryOptions(
                track_keys=self._track_keys,
                pair_cap=self.config.key_pair_tracking_cap,
            ),
            exclude_record=exclude_record,
        )
        if self._union is not None and self._union is not batch:
            self._union.merge_in(batch)
        self._dirty = True

    def _ingest_columnar(
        self,
        batch: ElementBatch,
        exclude_record: frozenset[str] = frozenset(),
    ) -> None:
        """Steps (b)-(d) for one columnar batch (zero-copy fast path).

        When the session retains a union graph (deletions enabled), the
        batch is additionally materialised element-wise into the union --
        deletions stay element-wise by design, so the fast path only
        skips materialisation entirely on insert-only streaming sessions.
        """
        # The signature store keys refcounts by interner-local signature
        # ids; re-point it at the batch's interner (grow-only lineage, so
        # ids from earlier batches stay valid) before the pipeline
        # classifies and counts this batch's rows.
        signatures = self._dstate.signatures
        signatures.interner = batch.interner
        self._pipeline._process_batch_columnar(
            batch,
            self._schema,
            self._timer,
            self._result,
            self._state,
            build_summaries=(
                self._streaming
                and self._streaming_valid
                and self.config.post_processing
            ),
            summary_options=SummaryOptions(
                track_keys=self._track_keys,
                pair_cap=self.config.key_pair_tracking_cap,
            ),
            exclude_record=exclude_record,
            signatures=signatures,
        )
        if self._union is not None:
            self._union.merge_in(
                # repro-lint: ignore[PGL301] -- union retention is an opt-in element-wise feature; the columnar fast path skips this branch entirely
                batch.to_property_graph(
                    f"{self.schema_name}-change{self._sequence}"
                )
            )
        # Adopting the batch's interner per change-set is safe here: no
        # session state stores interner-local ids across batches (schema,
        # accumulators, and signature caches are content-keyed), and
        # checkpoints persist a content-only snapshot.  Sharded workers
        # rely on this -- each pickled change-set arrives with its own
        # interner copy.
        self._dstate.interner = batch.interner
        self._dirty = True

    def _adopt_union(self, graph: PropertyGraph) -> None:
        """Adopt ``graph`` as the union by reference (no element copies).

        One-shot static discovery applies exactly one batch and full-scans
        it; merging that batch into an empty union would duplicate the
        whole graph for nothing.  Only valid before the first change-set;
        the caller guarantees the graph outlives the session.
        """
        if self._union is None or len(self._union) or self._sequence:
            raise ConfigurationError(
                "a union graph can only be adopted into a fresh "
                "union-retaining session"
            )
        self._union = graph

    def _insert_graph(self, change_set: ChangeSet) -> PropertyGraph | None:
        """Materialise the change-set's inserts as a well-formed batch.

        Edges whose endpoints are not in the change-set resolve against the
        retained union graph, then an attached store; an unresolvable
        endpoint is an error, matching the batch-stream convention that
        every fragment ships endpoint stubs.
        """
        if not change_set.has_inserts:
            return None
        batch = PropertyGraph(f"{self.schema_name}-change{self._sequence + 1}")
        for node in change_set.nodes:
            batch.put_node(node)
        for edge in change_set.edges:
            for endpoint_id in edge.endpoints():
                if not batch.has_node(endpoint_id):
                    batch.add_node(self._resolve_endpoint(endpoint_id, edge))
            if not batch.has_edge(edge.edge_id):
                batch.add_edge(edge)
        return batch

    def _resolve_endpoint(self, node_id: str, edge) -> Node:
        if self._union is not None and self._union.has_node(node_id):
            return self._union.node(node_id)
        if self._store is not None and self._store.graph.has_node(node_id):
            return self._store.node(node_id)
        raise DanglingEdgeError(
            f"change-set edge {edge.edge_id!r} references unknown node "
            f"{node_id!r}; ship an endpoint stub in the change-set, retain "
            "the union graph, or attach the originating GraphStore"
        )

    # ------------------------------------------------------------------
    # Deletions (gated on the retained union; see module docstring)
    # ------------------------------------------------------------------
    def _delete_nodes(self, node_ids: Iterable[str]) -> tuple[int, int]:
        graph = self.union_graph
        present = [n for n in node_ids if graph.has_node(n)]
        # Incident edges go first so edge types update before node removal.
        incident: set[str] = set()
        for node_id in present:
            incident.update(e.edge_id for e in graph.out_edges(node_id))
            incident.update(e.edge_id for e in graph.in_edges(node_id))
        cascaded = self._delete_edges(incident)
        removed = 0
        for node_id in present:
            self._detach_instance(node_id, is_edge=False)
            graph.remove_node(node_id)
            removed += 1
        if removed:
            self._after_deletion()
        return removed, cascaded

    def _delete_edges(self, edge_ids: Iterable[str]) -> int:
        graph = self.union_graph
        removed = 0
        for edge_id in list(edge_ids):
            if not graph.has_edge(edge_id):
                continue
            self._detach_instance(edge_id, is_edge=True)
            graph.remove_edge(edge_id)
            removed += 1
        if removed:
            self._after_deletion()
        return removed

    def _after_deletion(self) -> None:
        self._drop_empty_types()
        self._dirty = True
        # Accumulators are insert-monotone; they now overcount forever.
        self._streaming_valid = False

    def _detach_instance(self, instance_id: str, is_edge: bool) -> None:
        graph = self.union_graph
        try:
            element = (
                graph.edge(instance_id) if is_edge else graph.node(instance_id)
            )
        except MissingElementError:
            return
        types = self._schema.edge_types() if is_edge else self._schema.node_types()
        for schema_type in types:
            if instance_id not in schema_type.instance_ids:
                continue
            # Recorded instance found: its insert counted the structural
            # signature, so the delete decrements it exactly.  Stub
            # echoes (no recording type) fall through without touching
            # the store, mirroring how they were never counted.
            signature_id = self._element_signature_id(element, is_edge)
            if signature_id is not None:
                self._dstate.signatures.remove(signature_id)
            schema_type.instance_ids.discard(instance_id)
            schema_type.instance_count -= 1
            for key in element.properties:
                schema_type.property_counts[key] -= 1
                if schema_type.property_counts[key] <= 0:
                    del schema_type.property_counts[key]
                    # The last carrier of this property is gone: drop the
                    # spec rather than leave a phantom STRING/optional
                    # entry no surviving instance backs.  Deletion is
                    # already non-monotone (empty types drop, bounds
                    # tighten, mandatory can return) -- and this is what
                    # keeps sharded discovery exact: a shard that loses
                    # its last local carrier must agree with the merged
                    # global view, which only counts live carriers.
                    schema_type.properties.pop(key, None)
            return

    def _element_signature_id(self, element, is_edge: bool) -> int | None:
        """Recompute the interned structural signature of a live element.

        Mirrors the columnar freeze exactly: sorted-key value order,
        per-value datatype-shape codes, endpoint label tokens for edges.
        Returns ``None`` when an edge endpoint is already gone from the
        union (defensive; incident edges detach before their endpoints).
        """
        interner = self._dstate.signatures.interner
        labelset_id = interner.intern_labels(element.labels)
        keyset_id = interner.intern_keys(element.properties)
        keys = interner.keyset(keyset_id).keys
        shape = value_shapes(tuple(element.properties[key] for key in keys))
        if not is_edge:
            return interner.intern_element_signature(
                labelset_id, keyset_id, shape
            )
        graph = self.union_graph
        try:
            source = graph.node(element.source_id)
            target = graph.node(element.target_id)
        except MissingElementError:
            return None
        src_sid = interner.labelset(
            interner.intern_labels(source.labels)
        ).token_sid
        tgt_sid = interner.labelset(
            interner.intern_labels(target.labels)
        ).token_sid
        return interner.intern_element_signature(
            labelset_id, keyset_id, shape, src_sid, tgt_sid
        )

    def _drop_empty_types(self) -> None:
        for node_type in list(self._schema.node_types()):
            if node_type.instance_count <= 0:
                self._schema.remove_node_type(node_type.type_id)
        for edge_type in list(self._schema.edge_types()):
            if edge_type.instance_count <= 0:
                self._schema.remove_edge_type(edge_type.type_id)

    # ------------------------------------------------------------------
    # Snapshots and post-processing
    # ------------------------------------------------------------------
    def schema(self) -> SchemaGraph:
        """The schema as of the last applied change-set.

        Runs post-processing only when writes arrived since the previous
        read (the result is cached until the next write), so mid-stream
        reads are free on a quiet feed and O(|schema|) after traffic.
        """
        self._flush_postprocess()
        return self._schema

    def refresh(self) -> SchemaGraph:
        """Force a post-processing pass now, regardless of the dirty flag."""
        with self._timer.measure("postprocess"):
            self._run_post_processing()
        self._dirty = False
        return self._schema

    def finalize(self) -> DiscoveryResult:
        """Flush pending post-processing and return the discovery result."""
        self._flush_postprocess()
        return self._result

    def _flush_postprocess(self) -> None:
        """Run the lazy post-processing pass iff writes are pending."""
        if self._dirty and self.config.post_processing:
            with self._timer.measure("postprocess"):
                self._run_post_processing()
            self._dirty = False

    def _run_post_processing(self) -> None:
        if self._streaming_valid:
            self._pipeline.post_process_streaming(
                self._schema, track_keys=self._track_keys
            )
        else:
            self._pipeline.post_process(
                self._schema, self.union_graph, track_keys=self._track_keys
            )

    # ------------------------------------------------------------------
    # Diff subscriptions
    # ------------------------------------------------------------------
    def subscribe(self, callback: DiffSubscriber) -> DiffSubscriber:
        """Register ``callback`` for one DiffEvent per applied change-set.

        The first subscription baselines the diff at the current schema;
        events describe changes from that point on.  Subscribing implies
        post-processing after every change-set (diffs report constraint
        and cardinality movement, which only exists post-processed).
        """
        if callback not in self._subscribers:
            self._subscribers.append(callback)
        if self._baseline is None:
            self._flush_postprocess()
            self._baseline = _diff_snapshot(self._schema)
        return callback

    def unsubscribe(self, callback: DiffSubscriber) -> None:
        """Remove a subscriber (no-op when unknown)."""
        try:
            self._subscribers.remove(callback)
        except ValueError:
            return
        if not self._subscribers:
            self._baseline = None

    def _emit(self, report: ChangeReport) -> None:
        if not self._subscribers:
            return
        self._flush_postprocess()
        diff = diff_schemas(self._baseline, self._schema)
        self._baseline = _diff_snapshot(self._schema)
        event = DiffEvent(sequence=report.sequence, diff=diff, report=report)
        for callback in list(self._subscribers):
            callback(event)

    # ------------------------------------------------------------------
    # Store binding (see GraphStore.attach)
    # ------------------------------------------------------------------
    def bind_store(self, store) -> None:
        """Called by :meth:`GraphStore.attach` / ``detach``; not user API."""
        self._store = store

    # ------------------------------------------------------------------
    # State adoption (restore, sharded workers, merged continuations)
    # ------------------------------------------------------------------
    def _adopt_state(self, state: DiscoveryState) -> None:
        """Replace the session's state wholesale (fresh sessions only)."""
        self._dstate = state
        self._result.schema = state.schema

    @classmethod
    def from_state(
        cls,
        state: DiscoveryState,
        config: PGHiveConfig | None = None,
        *,
        schema_name: str | None = None,
        streaming_postprocess: bool | None = None,
        track_keys: bool | None = None,
    ) -> "SchemaSession":
        """A session that continues from an existing :class:`DiscoveryState`.

        The state is adopted by reference, not copied -- do not keep
        feeding the donor.  ``retain_union`` follows the state (a state
        without a union graph cannot accept deletions).  Useful for
        resuming from a merged shard state or a state built elsewhere;
        note that a merged state keeps only one fitted preprocessor, so
        continuation embeds unseen label tokens through their
        deterministic identity vectors.
        """
        session = cls(
            config,
            schema_name=schema_name or state.schema.name,
            retain_union=state.union is not None,
            streaming_postprocess=streaming_postprocess,
            track_keys=track_keys,
        )
        session._adopt_state(state)
        return session

    # ------------------------------------------------------------------
    # Checkpoint / restore
    # ------------------------------------------------------------------
    def checkpoint(self, path: str | Path) -> Path:
        """Write a versioned checkpoint a fresh process can resume from.

        The file carries everything subsequent batches depend on: the
        schema (with its per-type accumulators), the fitted preprocessor
        and its embedding cache, the MinHash instances with their
        signature caches, the union graph when retained, and the stream
        position.  Subscribers, the store binding, and wall-clock timings
        are process-local and deliberately not captured.  Written
        atomically (temp file + fsync + rename) with a payload digest in
        the header that :meth:`restore` verifies.
        """
        path = Path(path)
        payload = {
            "config": self.config,
            "schema_name": self.schema_name,
            "retain_union": self._retain_union,
            "streaming_postprocess": self._streaming,
            "track_keys": self._track_keys,
            "streaming_valid": self._streaming_valid,
            "dirty": self._dirty,
            "sequence": self._sequence,
            # Payload key stays "state" (checkpoint format v1); reading
            # the field off _dstate keeps the DiscoveryState.pipeline
            # coverage visible to the state-completeness lint.
            "schema": self._schema,
            "state": self._dstate.pipeline,
            "union": self._union,
            # Content-only interner snapshot: restored processes re-warm
            # the columnar content caches (ids themselves are process
            # local; nothing persistent keys on them).
            "interner": (
                None
                if self._dstate.interner is None
                else self._dstate.interner.snapshot()
            ),
            # Content-encoded signature refcounts (structural dedup):
            # restored stores re-intern the content against the restoring
            # process's interner.
            "signatures": self._dstate.signatures.snapshot(),
            "reports": list(self.reports),
            "result": {
                "batches_processed": self._result.batches_processed,
                "batch_seconds": list(self._result.batch_seconds),
                "node_cluster_count": self._result.node_cluster_count,
                "edge_cluster_count": self._result.edge_cluster_count,
                "node_parameters": self._result.node_parameters,
                "edge_parameters": self._result.edge_parameters,
            },
        }
        write_artifact(
            path,
            CHECKPOINT_MAGIC,
            CHECKPOINT_VERSION,
            pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL),
        )
        return path

    @classmethod
    def restore(cls, path: str | Path) -> "SchemaSession":
        """Rebuild a session from :meth:`checkpoint` output.

        The restored session produces bit-identical results for any
        subsequent change feed (the round-trip tests pin this).  The
        payload digest is verified before unpickling; failure modes
        raise distinct typed errors (:class:`CheckpointFormatError`,
        :class:`CheckpointVersionError`, :class:`CheckpointCorruptError`).
        Only restore files from trusted sources: the payload is a pickle.
        """
        path = Path(path)
        _, data = read_artifact(
            path,
            CHECKPOINT_MAGIC,
            version=CHECKPOINT_VERSION,
            legacy_versions=CHECKPOINT_LEGACY_VERSIONS,
        )
        try:
            payload = pickle.loads(data)
        except Exception as error:
            raise CheckpointCorruptError(
                f"{path}: corrupt checkpoint payload: {error}"
            ) from error
        return cls._from_checkpoint_payload(payload)

    @classmethod
    def _from_checkpoint_payload(cls, payload: dict) -> "SchemaSession":
        """Build a session from a decoded checkpoint payload dict."""
        session = cls(
            payload["config"],
            schema_name=payload["schema_name"],
            retain_union=payload["retain_union"],
            streaming_postprocess=payload["streaming_postprocess"],
            track_keys=payload["track_keys"],
        )
        interner = global_interner()
        snapshot = payload.get("interner")
        if snapshot:
            interner.merge_snapshot(snapshot)
        session._adopt_state(
            DiscoveryState(
                schema=payload["schema"],
                pipeline=payload["state"],
                union=payload["union"],
                sequence=payload["sequence"],
                streaming_valid=payload["streaming_valid"],
                dirty=payload["dirty"],
                interner=interner,
                # Pre-dedup checkpoints carry no signature refcounts;
                # restore an empty store (rows demote to the full
                # pipeline, which is always correct).
                signatures=SignatureStore.from_snapshot(
                    payload.get("signatures"), interner
                ),
            )
        )
        session.reports = list(payload["reports"])
        meta = payload["result"]
        session._result.schema = session._schema
        session._result.batches_processed = meta["batches_processed"]
        session._result.batch_seconds = list(meta["batch_seconds"])
        session._result.node_cluster_count = meta["node_cluster_count"]
        session._result.edge_cluster_count = meta["edge_cluster_count"]
        session._result.node_parameters = meta["node_parameters"]
        session._result.edge_parameters = meta["edge_parameters"]
        return session

    @classmethod
    def recover(cls, directory: str | Path, **kwargs) -> "SchemaSession":
        """Recover a durable session from its directory.

        Convenience front door to
        :meth:`repro.core.recovery.DurableSchemaSession.recover`: find
        the newest *valid* checkpoint under ``directory`` (falling back
        to older ones if the newest is corrupt), replay the write-ahead
        log from the checkpointed stream position, and resume durable
        logging.  The result is fingerprint-identical to a session that
        never crashed.
        """
        from repro.core.recovery import DurableSchemaSession

        return DurableSchemaSession.recover(directory, **kwargs)

    def __repr__(self) -> str:
        return (
            f"SchemaSession(name={self.schema_name!r}, "
            f"changes={self._sequence}, "
            f"node_types={self._schema.node_type_count}, "
            f"edge_types={self._schema.edge_type_count})"
        )

"""Key-constraint inference (extension; PG-Keys [9]).

The paper's schema definition builds on PG-Keys but the published pipeline
stops at mandatory/optional flags.  This extension closes that gap: a
property is a *candidate key* for a type when it is mandatory and its
values are pairwise distinct across the type's instances (an EXCLUSIVE
SINGLETON key in PG-Keys terms).  Composite pairs are searched only among
mandatory non-key properties, capped to keep the pass linear-ish.

Candidate keys are upper-bound claims in the same sense as cardinalities:
they hold on the observed data and may be invalidated by future inserts.
"""

from __future__ import annotations

import warnings
from itertools import combinations

from repro.core.accumulators import hashable_value as _hashable
from repro.errors import SchemaError
from repro.graph.model import PropertyGraph
from repro.schema.model import EdgeType, NodeType, SchemaGraph

#: Skip composite-key search above this many mandatory candidates.
MAX_COMPOSITE_CANDIDATES = 6
#: Keys over types with fewer instances than this are too weak to claim.
MIN_INSTANCES_FOR_KEY = 2


def _instance_values(
    graph: PropertyGraph,
    schema_type: NodeType | EdgeType,
    keys: tuple[str, ...],
    is_edge: bool,
) -> list[tuple] | None:
    """Tuples of the given keys' values per instance; None when any absent."""
    getter = graph.edge if is_edge else graph.node
    exists = graph.has_edge if is_edge else graph.has_node
    rows: list[tuple] = []
    # Sorted: instance_ids is a set; keep row order hash-seed independent.
    for instance_id in sorted(schema_type.instance_ids):
        if not exists(instance_id):
            continue
        element = getter(instance_id)
        try:
            rows.append(
                tuple(_hashable(element.properties[key]) for key in keys)
            )
        except KeyError:
            return None  # a key is absent on some instance -> not a key
    return rows


def candidate_keys_for_type(
    graph: PropertyGraph,
    schema_type: NodeType | EdgeType,
    is_edge: bool,
) -> list[tuple[str, ...]]:
    """All singleton and pair candidate keys of one type."""
    if schema_type.instance_count < MIN_INSTANCES_FOR_KEY:
        return []
    mandatory = sorted(schema_type.mandatory_keys())
    singles: list[tuple[str, ...]] = []
    non_keys: list[str] = []
    for key in mandatory:
        rows = _instance_values(graph, schema_type, (key,), is_edge)
        if rows and len(set(rows)) == len(rows):
            singles.append((key,))
        else:
            non_keys.append(key)

    composites: list[tuple[str, ...]] = []
    if len(non_keys) <= MAX_COMPOSITE_CANDIDATES:
        for pair in combinations(non_keys, 2):
            rows = _instance_values(graph, schema_type, pair, is_edge)
            if rows and len(set(rows)) == len(rows):
                composites.append(pair)
    return singles + composites


def candidate_keys_from_summaries(schema_type: NodeType | EdgeType) -> list[tuple[str, ...]]:
    """Streaming equivalent of :func:`candidate_keys_for_type`.

    Reads the per-type :class:`~repro.core.accumulators.KeyAccumulator`
    in the exact candidate order of the full scan (sorted mandatory
    singles, then pairs of the non-key remainder), so the result lists
    are identical.  A singleton is a key when its distinct-value tracker
    covered every instance without a cross-instance duplicate; pairs read
    the pair trackers that survived since the type's first instance.
    Types whose first instance exceeded the pair-tracking cap report no
    composites (``pair_overflow``).
    """
    if schema_type.instance_count < MIN_INSTANCES_FOR_KEY:
        return []
    summaries = schema_type.summaries
    if summaries is None or summaries.keys is None:
        raise SchemaError(
            f"type {schema_type.display_name!r} has no key accumulator; "
            "enable infer_keys before the stream starts or use the "
            "full-scan candidate_keys_for_type"
        )
    accumulator = summaries.keys
    mandatory = sorted(schema_type.mandatory_keys())
    singles: list[tuple[str, ...]] = []
    non_keys: list[str] = []
    for key in mandatory:
        tracker = accumulator.singles.get(key)
        if (
            tracker is not None
            and tracker.count == accumulator.instances
            and tracker.distinct
        ):
            singles.append((key,))
        else:
            non_keys.append(key)

    composites: list[tuple[str, ...]] = []
    if len(non_keys) <= MAX_COMPOSITE_CANDIDATES:
        if accumulator.pair_overflow:
            if len(non_keys) >= 2:
                # The full scan would search these pairs; say so instead of
                # silently diverging for very wide types.
                warnings.warn(
                    f"type {schema_type.display_name!r}: composite-key "
                    "tracking overflowed (first instance exceeded "
                    f"key_pair_tracking_cap={accumulator.pair_cap}); "
                    "streaming inference reports no composite keys",
                    RuntimeWarning,
                    stacklevel=2,
                )
        else:
            for pair in combinations(non_keys, 2):
                tracker = accumulator.pairs.get(pair)
                if tracker is not None and tracker.distinct:
                    composites.append(pair)
    return singles + composites


def infer_keys_streaming(schema: SchemaGraph) -> SchemaGraph:
    """Fill ``type.candidate_keys`` from the streaming accumulators."""
    for node_type in schema.node_types():
        node_type.candidate_keys = candidate_keys_from_summaries(node_type)
        for (key,) in (k for k in node_type.candidate_keys if len(k) == 1):
            node_type.properties[key].unique = True
    for edge_type in schema.edge_types():
        edge_type.candidate_keys = candidate_keys_from_summaries(edge_type)
        for (key,) in (k for k in edge_type.candidate_keys if len(k) == 1):
            edge_type.properties[key].unique = True
    return schema


def infer_keys(schema: SchemaGraph, graph: PropertyGraph) -> SchemaGraph:
    """Fill ``type.candidate_keys`` for every node and edge type."""
    for node_type in schema.node_types():
        node_type.candidate_keys = candidate_keys_for_type(
            graph, node_type, is_edge=False
        )
        for (key,) in (k for k in node_type.candidate_keys if len(k) == 1):
            node_type.properties[key].unique = True
    for edge_type in schema.edge_types():
        edge_type.candidate_keys = candidate_keys_for_type(
            graph, edge_type, is_edge=True
        )
        for (key,) in (k for k in edge_type.candidate_keys if len(k) == 1):
            edge_type.properties[key].unique = True
    return schema


def to_pg_keys(schema: SchemaGraph) -> str:
    """Render candidate keys as PG-Keys statements.

    One ``FOR (x:Label) EXCLUSIVE MANDATORY SINGLETON x.key`` line per
    singleton key; composite keys list the property tuple.
    """
    lines: list[str] = []
    for node_type in schema.node_types():
        spec = node_type.display_name
        for key_tuple in getattr(node_type, "candidate_keys", []) or []:
            properties = ", ".join(f"x.{key}" for key in key_tuple)
            kind = "SINGLETON" if len(key_tuple) == 1 else "COMPOSITE"
            lines.append(
                f"FOR (x:{spec}) EXCLUSIVE MANDATORY {kind} {properties}"
            )
    for edge_type in schema.edge_types():
        spec = edge_type.display_name
        for key_tuple in getattr(edge_type, "candidate_keys", []) or []:
            properties = ", ".join(f"r.{key}" for key in key_tuple)
            kind = "SINGLETON" if len(key_tuple) == 1 else "COMPOSITE"
            lines.append(
                f"FOR ()-[r:{spec}]->() EXCLUSIVE MANDATORY {kind} {properties}"
            )
    return "\n".join(lines)

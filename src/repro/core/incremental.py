"""Incremental schema discovery (section 4.6) -- adapter over the session.

Each arriving batch is preprocessed, clustered, and merged into the running
schema with the same Algorithm 2 used in the static pipeline -- the schema
therefore evolves as a monotone chain ``S_1 ⊑ S_2 ⊑ ...`` (no label,
property, or endpoint is ever dropped; see Lemmas 1-2).

Since the :class:`~repro.core.session.SchemaSession` redesign this class
is a thin historical façade: ``add_batch`` forwards each batch as one
insert-only change-set, and every guarantee (streaming accumulators fed
exactly once per element, no retained union graph by default, persistent
preprocessor and MinHash caches, O(|batch|) per-batch cost) lives in the
session.  Prefer the session directly for new code -- it adds mid-stream
snapshots, diff subscriptions, deletions, and checkpoint/restore.
Deletions here remain out of scope (see :mod:`repro.core.maintenance`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import PGHiveConfig
from repro.core.pipeline import DiscoveryResult
from repro.core.session import SchemaSession
from repro.graph.model import PropertyGraph
from repro.schema.model import SchemaGraph
from repro.util import Timer


@dataclass(frozen=True, slots=True)
class BatchReport:
    """Diagnostics for one processed batch."""

    batch_index: int
    nodes: int
    edges: int
    seconds: float
    node_types_after: int
    edge_types_after: int


class IncrementalSchemaDiscovery:
    """Stateful batch-at-a-time discovery engine (session adapter)."""

    def __init__(
        self,
        config: PGHiveConfig | None = None,
        schema_name: str = "incremental-schema",
    ) -> None:
        self.config = config or PGHiveConfig()
        self.session = SchemaSession(self.config, schema_name=schema_name)
        self.reports: list[BatchReport] = []

    @property
    def schema(self) -> SchemaGraph:
        """The running schema (monotonically growing)."""
        return self.session.schema_graph

    @property
    def state(self):
        """Cross-batch pipeline state (preprocessor + signature caches)."""
        return self.session.state

    @property
    def union_graph(self) -> PropertyGraph:
        """The cumulative union graph (requires ``config.retain_union``)."""
        return self.session.union_graph

    @property
    def _union(self) -> PropertyGraph | None:
        return self.session._union

    @property
    def _timer(self) -> Timer:
        return self.session.timer

    def add_batch(self, batch: PropertyGraph) -> BatchReport:
        """Process one insert batch and merge its types into the schema."""
        change = self.session.add_batch(batch)
        report = BatchReport(
            batch_index=len(self.reports) + 1,
            nodes=batch.node_count,
            edges=batch.edge_count,
            seconds=change.seconds,
            node_types_after=change.node_types_after,
            edge_types_after=change.edge_types_after,
        )
        self.reports.append(report)
        return report

    def finalize(self) -> DiscoveryResult:
        """Run the final post-processing pass and return the result."""
        return self.session.finalize()

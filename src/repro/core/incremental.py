"""Incremental schema discovery (section 4.6).

Each arriving batch is preprocessed, clustered, and merged into the running
schema with the same Algorithm 2 used in the static pipeline -- the schema
therefore evolves as a monotone chain ``S_1 ⊑ S_2 ⊑ ...`` (no label,
property, or endpoint is ever dropped; see Lemmas 1-2).

Post-processing (constraints, datatypes, cardinalities, keys) runs after
the final batch by default, or after every batch when
``config.post_process_each_batch`` is set -- matching the
``postProcessing or i = n`` guard of Algorithm 1.  Each batch's values are
folded into per-type streaming accumulators exactly once, at arrival
(:mod:`repro.core.accumulators`), so the post-processing passes are pure
O(|schema|) reads and the engine retains **no** cumulative union graph:
``add_batch`` is O(|batch|) in time and the resident state is
O(|schema| + distinct values tracked).  Set ``config.retain_union`` to
keep the old union graph around for debugging, and additionally
``streaming_postprocess=False`` to restore the full re-scan behaviour
(the equivalence oracle of the streaming tests).

A persistent :class:`~repro.core.pipeline.PipelineState` carries the
fitted preprocessor (with its token-embedding cache) and the MinHash
instances from batch to batch; together with the process-wide token-id
cache this means each distinct token is embedded and blake2b-hashed once
per stream.  Deletions are out of scope here (see
:mod:`repro.core.maintenance` for the extension, which retains the union).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import PGHiveConfig
from repro.core.pipeline import DiscoveryResult, PGHive, PipelineState
from repro.errors import ConfigurationError
from repro.graph.model import PropertyGraph
from repro.schema.model import SchemaGraph
from repro.util import Timer


@dataclass(frozen=True, slots=True)
class BatchReport:
    """Diagnostics for one processed batch."""

    batch_index: int
    nodes: int
    edges: int
    seconds: float
    node_types_after: int
    edge_types_after: int


class IncrementalSchemaDiscovery:
    """Stateful batch-at-a-time discovery engine."""

    def __init__(
        self,
        config: PGHiveConfig | None = None,
        schema_name: str = "incremental-schema",
    ) -> None:
        self.config = config or PGHiveConfig()
        self._pipeline = PGHive(self.config)
        #: survives across batches: fitted preprocessor + signature caches.
        self._state = PipelineState()
        self._timer = Timer()
        self._schema = SchemaGraph(schema_name)
        #: opt-in debugging/oracle state only; None in the default
        #: streaming mode, where no batch is ever revisited.
        self._union: PropertyGraph | None = (
            PropertyGraph(f"{schema_name}-union")
            if self.config.retain_union
            else None
        )
        self._result = DiscoveryResult(
            schema=self._schema,
            timer=self._timer,
            config=self.config,
            batches_processed=0,
        )
        self.reports: list[BatchReport] = []

    @property
    def schema(self) -> SchemaGraph:
        """The running schema (monotonically growing)."""
        return self._schema

    @property
    def state(self) -> PipelineState:
        """Cross-batch pipeline state (preprocessor + signature caches)."""
        return self._state

    @property
    def union_graph(self) -> PropertyGraph:
        """The cumulative union graph (requires ``config.retain_union``)."""
        if self._union is None:
            raise ConfigurationError(
                "the incremental engine no longer retains a union graph by "
                "default; construct it with PGHiveConfig(retain_union=True)"
            )
        return self._union

    def add_batch(self, batch: PropertyGraph) -> BatchReport:
        """Process one insert batch and merge its types into the schema."""
        batch_timer = Timer()
        with batch_timer.measure("batch"):
            self._pipeline._process_batch(
                batch,
                self._schema,
                self._timer,
                self._result,
                self._state,
                build_summaries=(
                    self.config.streaming_postprocess
                    and self.config.post_processing
                ),
            )
            if self._union is not None:
                self._union.merge_in(batch)
            if self.config.post_process_each_batch and self.config.post_processing:
                with self._timer.measure("postprocess"):
                    self._post_process()
        self._result.batches_processed += 1
        seconds = batch_timer.lap("batch")
        self._result.batch_seconds.append(seconds)
        report = BatchReport(
            batch_index=len(self.reports) + 1,
            nodes=batch.node_count,
            edges=batch.edge_count,
            seconds=seconds,
            node_types_after=self._schema.node_type_count,
            edge_types_after=self._schema.edge_type_count,
        )
        self.reports.append(report)
        return report

    def finalize(self) -> DiscoveryResult:
        """Run the final post-processing pass and return the result."""
        if self.config.post_processing and not self.config.post_process_each_batch:
            with self._timer.measure("postprocess"):
                self._post_process()
        return self._result

    def _post_process(self) -> None:
        """Streaming accumulator reads, or the full-scan oracle path."""
        if self.config.streaming_postprocess:
            self._pipeline.post_process_streaming(self._schema)
        else:
            self._pipeline.post_process(self._schema, self.union_graph)

"""PG-HIVE core: the hybrid incremental schema-discovery pipeline."""

from repro.core.accumulators import (
    DatatypeAccumulator,
    DistinctTracker,
    EndpointAccumulator,
    KeyAccumulator,
    SummaryOptions,
    TypeSummaries,
)
from repro.core.adaptive import (
    AdaptiveParameters,
    adapt_parameters,
    alpha_for_label_count,
    estimate_distance_scale,
)
from repro.core.cardinality_inference import (
    bounds_for_edge_type,
    compute_cardinalities,
    compute_cardinalities_streaming,
)
from repro.core.clustering import Cluster, ClusteringOutcome, cluster_features
from repro.core.config import AdaptiveOverrides, ClusteringMethod, PGHiveConfig
from repro.core.constraints import infer_property_constraints, property_frequency
from repro.core.datatype_inference import (
    infer_datatypes,
    infer_datatypes_streaming,
    sample_values,
)
from repro.core.incremental import BatchReport, IncrementalSchemaDiscovery
from repro.core.key_inference import (
    candidate_keys_for_type,
    candidate_keys_from_summaries,
    infer_keys,
    infer_keys_streaming,
    to_pg_keys,
)
from repro.core.maintenance import MaintainedSchema
from repro.core.pipeline import CAPABILITIES, DiscoveryResult, PGHive
from repro.core.preprocess import ElementRecord, FeatureMatrix, Preprocessor
from repro.core.serialization import to_pg_schema, to_xsd
from repro.core.session import ChangeReport, DiffEvent, SchemaSession
from repro.core.sharding import ShardedChangeReport, ShardedSchemaSession
from repro.core.state import DiscoveryState
from repro.core.type_extraction import (
    extract_edge_types,
    extract_node_types,
    extract_types,
)

__all__ = [
    "AdaptiveOverrides",
    "AdaptiveParameters",
    "BatchReport",
    "CAPABILITIES",
    "ChangeReport",
    "Cluster",
    "ClusteringMethod",
    "ClusteringOutcome",
    "DatatypeAccumulator",
    "DiffEvent",
    "DiscoveryResult",
    "DiscoveryState",
    "DistinctTracker",
    "ElementRecord",
    "EndpointAccumulator",
    "FeatureMatrix",
    "IncrementalSchemaDiscovery",
    "KeyAccumulator",
    "MaintainedSchema",
    "PGHive",
    "PGHiveConfig",
    "Preprocessor",
    "SchemaSession",
    "ShardedChangeReport",
    "ShardedSchemaSession",
    "SummaryOptions",
    "TypeSummaries",
    "adapt_parameters",
    "alpha_for_label_count",
    "bounds_for_edge_type",
    "candidate_keys_for_type",
    "candidate_keys_from_summaries",
    "cluster_features",
    "compute_cardinalities",
    "compute_cardinalities_streaming",
    "estimate_distance_scale",
    "extract_edge_types",
    "extract_node_types",
    "extract_types",
    "infer_datatypes",
    "infer_datatypes_streaming",
    "infer_keys",
    "infer_keys_streaming",
    "infer_property_constraints",
    "property_frequency",
    "sample_values",
    "to_pg_keys",
    "to_pg_schema",
    "to_xsd",
]

"""`DiscoveryState`: the mergeable value object holding all discovery state.

Every mutable artefact a discovery session accumulates lives here, in one
explicit, serializable bundle: the schema snapshot (with its per-type
streaming accumulators), the fitted preprocessor and the MinHash
signature caches (:class:`~repro.core.pipeline.PipelineState`), the
retained union graph when deletions are enabled, and the stream position.
:class:`~repro.core.session.SchemaSession` owns exactly one
``DiscoveryState``; checkpoints serialise it; and
:class:`~repro.core.sharding.ShardedSchemaSession` merges one per shard
into a combined read view.

The central operation is :meth:`DiscoveryState.merge` -- the state-level
analogue of the schema-merge of section 4.6, lifted to *everything* the
pipeline tracks:

* **Schemas** reconcile through :func:`repro.schema.merge.merge_into`
  (deterministically sorted since the sharding work) and are then
  canonicalised -- deterministic cluster naming, sorted type order,
  sorted property specs -- so the merged result is independent of the
  order states are folded in (for token-mergeable types; abstract-type
  Jaccard absorption remains inherently order-sensitive).
* **Accumulators** merge monotonically through the existing
  ``TypeSummaries.merge_from`` lattice/union/witness machinery, so
  streaming post-processing reads over the merged state equal a single
  session's reads over the combined feed.
* **MinHash signature caches** union per ``(num_tables, band_size,
  seed)`` instance (signatures are content-derived per parameter set, so
  rows from different states agree bit for bit).
* **Union graphs** union element-wise; **stream positions** take the
  maximum; ``streaming_valid`` holds only when it held on every input
  (a deletion anywhere poisons streaming reads everywhere).

Counts stay exact under merging as long as each element was *recorded*
by exactly one input state -- the sharding layer guarantees this by
marking cross-shard endpoint stubs (see
:attr:`repro.graph.changes.ChangeSet.stub_node_ids`), and types that
carry only stub echoes (zero recorded instances) are dropped before
reconciliation because every element they describe is recorded by its
owner.

Merging never mutates its inputs.  Property specs of raw (not yet
post-processed) states merge to raw specs; run the post-processing
passes on the merged schema to fill datatypes, constraints,
cardinalities, and keys exactly.
"""

from __future__ import annotations

import pickle
from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.core.pipeline import PipelineState
from repro.graph.columnar import Interner, SignatureStore, global_interner
from repro.graph.model import PropertyGraph
from repro.lsh.minhash import MinHashLSH
from repro.schema.merge import DEFAULT_THETA, canonicalize_schema, merge_into
from repro.schema.model import SchemaGraph


@dataclass
class DiscoveryState:
    """Everything one discovery session mutates, as a mergeable value.

    ``schema`` carries the per-type accumulators (``summaries``);
    ``pipeline`` carries the fitted preprocessor and the MinHash
    instances with their signature caches; ``union`` is the retained
    union graph (``None`` on insert-only streaming sessions);
    ``sequence`` is the stream position (change-sets consumed);
    ``streaming_valid`` records whether the insert-monotone accumulators
    still match the data (a deletion clears it permanently); ``dirty``
    marks writes not yet post-processed.
    """

    schema: SchemaGraph
    pipeline: PipelineState = field(default_factory=PipelineState)
    union: PropertyGraph | None = None
    sequence: int = 0
    streaming_valid: bool = True
    dirty: bool = False
    #: the content interner backing columnar ingestion (usually the
    #: process-wide one).  Ids are process-local; checkpoints persist a
    #: content snapshot, and merging states unions their content.
    interner: Interner | None = field(default_factory=global_interner)
    #: ref-counted element-signature store driving structural dedup:
    #: maps interned signature ids to live instance counts.  Checkpoints
    #: persist it content-encoded; merging sums refcounts.
    signatures: SignatureStore = field(default_factory=SignatureStore)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def fresh(
        cls, schema_name: str = "schema", retain_union: bool = False
    ) -> "DiscoveryState":
        """An empty state ready to consume a change feed."""
        return cls(
            schema=SchemaGraph(schema_name),
            pipeline=PipelineState(),
            union=PropertyGraph(f"{schema_name}-union") if retain_union else None,
        )

    # ------------------------------------------------------------------
    # Cloning
    # ------------------------------------------------------------------
    def clone(self) -> "DiscoveryState":
        """An independent deep copy, minus the interner round-trip.

        A full ``pickle.loads(pickle.dumps(state))`` re-serialises the
        attached :class:`Interner` -- by far the largest payload on
        structure-heavy states, and pointless: the interner is grow-only,
        so sharing it keeps every id in the copy valid forever.  The
        body (schema, accumulators, union graph, caches) round-trips
        through pickle exactly as before -- bit-identical to the old
        deep copy -- while the interner is rebound and the signature
        store gets an independent refcount copy over the shared
        interner.
        """
        interner, signatures = self.interner, self.signatures
        try:
            self.interner = None
            self.signatures = None  # type: ignore[assignment]
            body: DiscoveryState = pickle.loads(
                pickle.dumps(self, protocol=pickle.HIGHEST_PROTOCOL)
            )
        finally:
            self.interner = interner
            self.signatures = signatures
        body.interner = interner
        body.signatures = signatures.copy()
        return body

    # ------------------------------------------------------------------
    # Merging
    # ------------------------------------------------------------------
    def merge(
        self,
        other: "DiscoveryState",
        theta: float = DEFAULT_THETA,
        name: str | None = None,
    ) -> "DiscoveryState":
        """A new state covering both inputs; neither input is mutated."""
        return DiscoveryState.merged(
            [self, other], theta=theta, name=name or self.schema.name
        )

    @classmethod
    def merged(
        cls,
        states: Iterable["DiscoveryState"],
        theta: float = DEFAULT_THETA,
        name: str = "merged-schema",
    ) -> "DiscoveryState":
        """Fold any number of states into one combined state.

        Inputs are read, never mutated; the result shares immutable
        payloads (nodes, edges, signature rows, the preprocessor) but no
        mutable containers with them.  Folding happens in the given
        order; see the module docstring for the determinism guarantees.
        """
        states = list(states)
        result = cls(
            schema=SchemaGraph(name),
            pipeline=PipelineState(),
            union=(
                PropertyGraph(f"{name}-union")
                if states and all(s.union is not None for s in states)
                else None
            ),
        )
        for state in states:
            result._fold_in(state, theta)
        canonicalize_schema(result.schema)
        return result

    def _fold_in(self, other: "DiscoveryState", theta: float) -> None:
        """One fold step of :meth:`merged` (destructive on ``self`` only)."""
        merge_into(self.schema, _instance_bearing(other.schema), theta)
        if self.union is not None and other.union is not None:
            self.union.merge_in(other.union)
        if self.pipeline.preprocessor is None:
            # Word2Vec models are not meaningfully mergeable; the first
            # fitted preprocessor wins.  Unknown tokens embed through
            # their deterministic identity vector, so a merged state fed
            # further batches still embeds identical tokens identically.
            self.pipeline.preprocessor = other.pipeline.preprocessor
        for key, lsh in other.pipeline.minhash_cache.items():
            mine = self.pipeline.minhash_cache.get(key)
            if mine is None:
                num_tables, band_size, seed = key
                mine = MinHashLSH(
                    num_tables=num_tables, band_size=band_size, seed=seed
                )
                self.pipeline.minhash_cache[key] = mine
            mine.merge_cache_from(lsh)
        if other.interner is not None:
            if self.interner is None:
                self.interner = other.interner
            else:
                self.interner.merge_from(other.interner)
        if self.interner is not None and self.signatures.interner is not self.interner:
            self.signatures.interner = self.interner
        self.signatures.merge_from(other.signatures)
        self.sequence = max(self.sequence, other.sequence)
        self.streaming_valid = self.streaming_valid and other.streaming_valid
        self.dirty = self.dirty or other.dirty


def _instance_bearing(schema: SchemaGraph) -> SchemaGraph:
    """A read-only view of ``schema`` without its zero-instance types.

    A type with no recorded instances describes only endpoint stubs
    whose every element is recorded by another state (its owner shard),
    so merging it would add nothing but a phantom type.  The view shares
    the surviving type objects; callers must treat it as read-only
    (:func:`~repro.schema.merge.merge_into` does).
    """
    view = SchemaGraph(schema.name)
    for node_type in schema.node_types():
        if node_type.instance_count > 0:
            view.add_node_type(node_type)
    for edge_type in schema.edge_types():
        if edge_type.instance_count > 0:
            view.add_edge_type(edge_type)
    return view

"""Fault injection for durability testing and benchmarking.

The durability layer (:mod:`repro.core.durability`) calls
:func:`fire` at named *failpoints* -- just before an fsync, just after a
record append, around the atomic-rename dance.  In production nothing is
armed and every call is a cheap no-op.  Tests install a
:class:`FaultInjector` (a context manager) that arms specific points
with an *action*:

* ``"crash"`` -- raise :class:`SimulatedCrash`, modelling abrupt process
  death at exactly that point (the write syscalls before the point have
  happened; everything after has not).
* a callable -- invoked as ``action(point, context)``; it may mutate the
  on-disk state (tear a record, flip a byte) and/or raise
  :class:`SimulatedCrash` itself.  The context dict carries whatever the
  failpoint knows (``path``, ``record_start``, ``record_end``, ...).

Arming supports ``after=N`` (skip the first N hits) and ``count=M``
(trigger at most M times), so a test can crash precisely on the k-th
append of a feed.  Helpers for crash realism: :func:`corrupt_byte`
flips one byte of a file in place; :func:`kill_process` SIGKILLs a
worker so pool-death handling sees a real dead process, not an
exception.

Only one injector is active per process at a time (they nest badly on
purpose: a crash test with two overlapping injectors is unreadable).
"""

from __future__ import annotations

import os
import signal
from collections.abc import Callable
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ConfigurationError, ReproError

#: Failpoint action: the literal ``"crash"`` or a callable.
FaultAction = Callable[[str, dict], None]


class SimulatedCrash(ReproError):
    """An armed failpoint fired: the process "died" at this point.

    Crash-recovery tests catch this where a real deployment would have
    lost the process, then recover from disk and assert equivalence.
    """


@dataclass
class _Arm:
    """One armed failpoint: action plus skip/budget counters."""

    action: FaultAction | str
    after: int = 0
    count: int = 1
    hits: int = field(default=0, init=False)
    fired: int = field(default=0, init=False)

    def take(self) -> bool:
        """Account one hit; True when the action should trigger now."""
        self.hits += 1
        if self.hits <= self.after or self.fired >= self.count:
            return False
        self.fired += 1
        return True


class FaultInjector:
    """Context manager arming failpoints for the enclosed block.

    >>> with FaultInjector() as faults:
    ...     faults.arm("wal.after_append", "crash", after=2)
    ...     # the third append raises SimulatedCrash
    """

    _active: "FaultInjector | None" = None

    def __init__(self) -> None:
        self._arms: dict[str, _Arm] = {}
        #: every failpoint hit while installed, for test introspection.
        self.log: list[str] = []

    # ------------------------------------------------------------------
    # Arming
    # ------------------------------------------------------------------
    def arm(
        self,
        point: str,
        action: FaultAction | str = "crash",
        *,
        after: int = 0,
        count: int = 1,
    ) -> "FaultInjector":
        """Arm ``point``; returns self for chaining."""
        if isinstance(action, str) and action != "crash":
            raise ConfigurationError(
                f"unknown failpoint action {action!r}: use 'crash' or a "
                "callable"
            )
        self._arms[point] = _Arm(action=action, after=after, count=count)
        return self

    def disarm(self, point: str) -> None:
        """Remove an armed point (no-op when unknown)."""
        self._arms.pop(point, None)

    # ------------------------------------------------------------------
    # Installation
    # ------------------------------------------------------------------
    def __enter__(self) -> "FaultInjector":
        if FaultInjector._active is not None:
            raise ConfigurationError(
                "a FaultInjector is already installed in this process"
            )
        FaultInjector._active = self
        return self

    def __exit__(self, *exc_info) -> None:
        FaultInjector._active = None

    # ------------------------------------------------------------------
    # Firing (called by the durability layer through module-level fire)
    # ------------------------------------------------------------------
    def _fire(self, point: str, context: dict) -> None:
        self.log.append(point)
        arm = self._arms.get(point)
        if arm is None or not arm.take():
            return
        if arm.action == "crash":
            raise SimulatedCrash(f"failpoint {point!r} fired")
        arm.action(point, context)

    # ------------------------------------------------------------------
    # Crash-realism helpers
    # ------------------------------------------------------------------
    @staticmethod
    def corrupt_byte(path: str | Path, offset: int, flip: int = 0xFF) -> None:
        """XOR one byte of ``path`` at ``offset`` in place."""
        with open(Path(path), "r+b") as handle:
            handle.seek(offset)
            byte = handle.read(1)
            if not byte:
                raise ConfigurationError(
                    f"offset {offset} is past the end of {path}"
                )
            handle.seek(offset)
            handle.write(bytes([byte[0] ^ flip]))

    @staticmethod
    def truncate_at(path: str | Path, size: int) -> None:
        """Tear ``path`` to ``size`` bytes (models a torn write)."""
        with open(Path(path), "r+b") as handle:
            handle.truncate(size)

    @staticmethod
    def kill_process(pid: int) -> None:
        """SIGKILL a process (worker-death tests; no cleanup runs).

        Refuses non-positive pids: ``os.kill(0, ...)`` would signal the
        whole process group (the test runner included).
        """
        if pid <= 0:
            raise ConfigurationError(
                f"kill_process needs a concrete worker pid, got {pid}"
            )
        os.kill(pid, signal.SIGKILL)


def fire(point: str, **context) -> None:
    """Hit a failpoint: no-op unless a :class:`FaultInjector` is armed."""
    injector = FaultInjector._active
    if injector is not None:
        injector._fire(point, context)

"""Adaptive LSH parameterization (section 4.2).

Before clustering, a small sample of the representation vectors estimates
the dataset's distance scale ``mu`` (the average pairwise Euclidean
distance).  The bucket length follows

    b_base = 1.2 * mu          # 1.2 avoids overfragmentation
    b      = b_base * alpha    # alpha from the distinct-label count L

with ``alpha = 0.8`` for L <= 3, ``1.0`` for 4 <= L <= 10, and ``1.5`` for
L > 10.  Table counts follow the paper's heuristics

    T_nodes = b_base * max(5, alpha * min(25, log10 N))
    T_edges = b_base * max(3, alpha * min(20, log10 E))

rounded to integers and clamped to [1, 64] so degenerate scales (tiny toy
graphs, near-zero mu) stay usable.  Users can override any of b, T, alpha
through :class:`~repro.core.config.AdaptiveOverrides`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.config import AdaptiveOverrides

#: Sample at least this many elements when estimating mu ("at least 10k
#: nodes", section 4.2); graphs smaller than the floor are used whole.
SAMPLE_FLOOR = 10_000
SAMPLE_FRACTION = 0.01
#: Cap on sampled distance pairs; the mean converges long before this.
MAX_DISTANCE_PAIRS = 20_000
#: Clamp for the table count after rounding.
MAX_TABLES = 64
#: Fallback bucket length when every sampled vector coincides (mu = 0).
MIN_BUCKET_LENGTH = 1e-3


@dataclass(frozen=True, slots=True)
class AdaptiveParameters:
    """Resolved LSH parameters plus the statistics that produced them."""

    bucket_length: float
    num_tables: int
    mu: float
    alpha: float
    b_base: float
    label_count: int
    element_count: int

    def describe(self) -> str:
        """One-line summary for logs and bench output."""
        return (
            f"b={self.bucket_length:.3f} T={self.num_tables} "
            f"(mu={self.mu:.3f}, alpha={self.alpha}, L={self.label_count}, "
            f"N={self.element_count})"
        )


def alpha_for_label_count(label_count: int) -> float:
    """The label-diversity multiplier of section 4.2."""
    if label_count <= 3:
        return 0.8
    if label_count <= 10:
        return 1.0
    return 1.5


def estimate_distance_scale(
    vectors: np.ndarray, rng: np.random.Generator
) -> float:
    """Average pairwise Euclidean distance over a sampled subset."""
    count = len(vectors)
    if count < 2:
        return 0.0
    sample_size = max(int(count * SAMPLE_FRACTION), SAMPLE_FLOOR)
    sample_size = min(sample_size, count)
    indices = (
        np.arange(count)
        if sample_size == count
        else rng.choice(count, size=sample_size, replace=False)
    )
    sample = vectors[indices]

    if sample_size <= 200:
        # Small samples: take every pair exactly.
        deltas = sample[:, None, :] - sample[None, :, :]
        squared = np.einsum("ijk,ijk->ij", deltas, deltas)
        upper = squared[np.triu_indices(sample_size, k=1)]
        return float(np.sqrt(upper).mean()) if upper.size else 0.0

    pair_budget = min(MAX_DISTANCE_PAIRS, sample_size * (sample_size - 1) // 2)
    left = rng.integers(0, sample_size, pair_budget)
    right = rng.integers(0, sample_size, pair_budget)
    distinct = left != right
    if not np.any(distinct):
        return 0.0
    deltas = sample[left[distinct]] - sample[right[distinct]]
    distances = np.sqrt(np.einsum("ij,ij->i", deltas, deltas))
    return float(distances.mean())


def _table_count(
    b_base: float,
    alpha: float,
    element_count: int,
    floor: int,
    log_cap: int,
) -> int:
    log_term = math.log10(element_count) if element_count > 1 else 1.0
    raw = b_base * max(floor, alpha * min(log_cap, log_term))
    return int(np.clip(round(raw), 1, MAX_TABLES))


def adapt_parameters(
    vectors: np.ndarray,
    label_count: int,
    kind: str,
    overrides: AdaptiveOverrides | None = None,
    seed: int = 0,
) -> AdaptiveParameters:
    """Resolve LSH parameters for ``vectors`` per the section 4.2 heuristics.

    ``kind`` selects the node or edge T formula (``"nodes"`` / ``"edges"``).
    Overridden fields short-circuit the corresponding heuristic.
    """
    if kind not in ("nodes", "edges"):
        raise ValueError(f"kind must be 'nodes' or 'edges', got {kind!r}")
    overrides = overrides or AdaptiveOverrides()
    rng = np.random.default_rng(seed)
    element_count = len(vectors)

    mu = estimate_distance_scale(vectors, rng)
    b_base = max(1.2 * mu, MIN_BUCKET_LENGTH)
    alpha = (
        overrides.alpha
        if overrides.alpha is not None
        else alpha_for_label_count(label_count)
    )
    bucket_length = (
        overrides.bucket_length
        if overrides.bucket_length is not None
        else b_base * alpha
    )
    if overrides.num_tables is not None:
        num_tables = overrides.num_tables
    elif kind == "nodes":
        num_tables = _table_count(b_base, alpha, element_count, floor=5, log_cap=25)
    else:
        num_tables = _table_count(b_base, alpha, element_count, floor=3, log_cap=20)
    return AdaptiveParameters(
        bucket_length=float(bucket_length),
        num_tables=int(num_tables),
        mu=mu,
        alpha=float(alpha),
        b_base=float(b_base),
        label_count=label_count,
        element_count=element_count,
    )

"""Datatype sampling error (section 5, Figure 8).

For a property ``p`` with full value set ``D_p`` and sample ``S_p``:

    error(p) = (1 / |S_p|) * sum_{v in S_p} 1[f(v) != f(D_p)]

where ``f(v)`` is the per-value inferred datatype and ``f(D_p)`` the
full-scan inference.  Homogeneous properties score exactly 0; properties
whose full-scan type is a generalisation forced by outliers (e.g. rare
strings inside an integer column) score the fraction of sampled values
disagreeing with that generalisation.  Figure 8 bins these errors per
dataset and normalises by the property count.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.schema.datatypes import infer_type, infer_value_type

#: Figure 8 bin edges (left-closed).
ERROR_BINS: tuple[tuple[float, float], ...] = (
    (0.0, 0.05),
    (0.05, 0.10),
    (0.10, 0.20),
    (0.20, 1.0 + 1e-9),
)
BIN_LABELS = ("0-0.05", "0.05-0.10", "0.10-0.20", ">=0.20")


def sampling_error(full_values: Iterable, sampled_values: Sequence) -> float:
    """``error(p)`` for one property."""
    if len(sampled_values) == 0:
        return 0.0
    full_type = infer_type(full_values)
    disagreements = sum(
        1 for value in sampled_values if infer_value_type(value) is not full_type
    )
    return disagreements / len(sampled_values)


def bin_errors(errors: Sequence[float]) -> dict[str, float]:
    """Normalised share of properties per Figure 8 error bin."""
    counts = dict.fromkeys(BIN_LABELS, 0)
    for error in errors:
        for (low, high), label in zip(ERROR_BINS, BIN_LABELS):
            if low <= error < high:
                counts[label] += 1
                break
    total = max(len(errors), 1)
    return {label: counts[label] / total for label in BIN_LABELS}

"""Friedman average ranks and the Nemenyi post-hoc test (Figure 3).

The paper ranks methods over 40 test cases (8 datasets x 5 noise levels)
and applies the Nemenyi test [74] to decide which pairwise differences are
significant.  Two methods differ significantly when their average ranks
differ by at least the critical difference

    CD = q_alpha * sqrt(k (k + 1) / (6 N))

with ``k`` methods, ``N`` cases, and ``q_alpha`` the studentized-range
quantile divided by sqrt(2) (scipy provides the distribution directly, so
no hard-coded table is needed).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np
from scipy import stats

from repro.errors import ConfigurationError


def rank_rows(scores: dict[str, list[float]]) -> np.ndarray:
    """Per-case ranks (1 = best = highest score), shape ``(cases, methods)``.

    Ties receive average ranks, following the standard Friedman procedure.
    """
    methods = list(scores)
    if not methods:
        raise ConfigurationError("scores must contain at least one method")
    lengths = {len(values) for values in scores.values()}
    if len(lengths) != 1:
        raise ConfigurationError(
            f"all methods need the same number of cases, got {lengths}"
        )
    matrix = np.array([scores[m] for m in methods], dtype=float).T  # (n, k)
    # rankdata ranks ascending; we want rank 1 for the highest score.
    return np.vstack([stats.rankdata(-row) for row in matrix])


def average_ranks(scores: dict[str, list[float]]) -> dict[str, float]:
    """Mean rank per method over all cases (lower = better)."""
    methods = list(scores)
    ranks = rank_rows(scores)
    means = ranks.mean(axis=0)
    return dict(zip(methods, (float(m) for m in means)))


def friedman_statistic(scores: dict[str, list[float]]) -> tuple[float, float]:
    """Friedman chi-square statistic and p-value over the score table."""
    methods = list(scores)
    if len(methods) < 3:
        raise ConfigurationError("the Friedman test needs at least 3 methods")
    statistic, p_value = stats.friedmanchisquare(
        *[scores[m] for m in methods]
    )
    return float(statistic), float(p_value)


def nemenyi_critical_difference(
    method_count: int, case_count: int, alpha: float = 0.05
) -> float:
    """The Nemenyi critical difference CD for ``k`` methods over ``N`` cases."""
    if method_count < 2:
        raise ConfigurationError("need at least 2 methods")
    if case_count < 1:
        raise ConfigurationError("need at least 1 case")
    q_alpha = stats.studentized_range.ppf(
        1.0 - alpha, method_count, np.inf
    ) / math.sqrt(2.0)
    return float(
        q_alpha * math.sqrt(method_count * (method_count + 1) / (6.0 * case_count))
    )


@dataclass
class NemenyiResult:
    """Average ranks plus pairwise significance decisions."""

    ranks: dict[str, float]
    critical_difference: float
    case_count: int
    alpha: float = 0.05
    significant_pairs: list[tuple[str, str]] = field(default_factory=list)

    def is_significant(self, left: str, right: str) -> bool:
        """True when ``left`` and ``right`` differ significantly."""
        return (left, right) in self.significant_pairs or (
            right,
            left,
        ) in self.significant_pairs

    def ordered(self) -> list[tuple[str, float]]:
        """Methods sorted best (lowest rank) first."""
        return sorted(self.ranks.items(), key=lambda item: item[1])


def nemenyi_test(
    scores: dict[str, list[float]], alpha: float = 0.05
) -> NemenyiResult:
    """Full Figure 3 analysis: ranks, CD, and significant pairs."""
    ranks = average_ranks(scores)
    case_count = len(next(iter(scores.values())))
    cd = nemenyi_critical_difference(len(scores), case_count, alpha)
    pairs: list[tuple[str, str]] = []
    methods = sorted(ranks, key=ranks.get)
    for i, left in enumerate(methods):
        for right in methods[i + 1 :]:
            if abs(ranks[left] - ranks[right]) >= cd:
                pairs.append((left, right))
    return NemenyiResult(
        ranks=ranks,
        critical_difference=cd,
        case_count=case_count,
        alpha=alpha,
        significant_pairs=pairs,
    )

"""Evaluation layer: F1*, statistical ranking, sampling error."""

from repro.eval.clustering_metrics import (
    F1Result,
    TypeScore,
    cluster_purity,
    majority_f1,
    majority_prediction,
)
from repro.eval.ranking import (
    NemenyiResult,
    average_ranks,
    friedman_statistic,
    nemenyi_critical_difference,
    nemenyi_test,
    rank_rows,
)
from repro.eval.sampling_error import (
    BIN_LABELS,
    ERROR_BINS,
    bin_errors,
    sampling_error,
)

__all__ = [
    "BIN_LABELS",
    "ERROR_BINS",
    "F1Result",
    "NemenyiResult",
    "TypeScore",
    "average_ranks",
    "bin_errors",
    "cluster_purity",
    "friedman_statistic",
    "majority_f1",
    "majority_prediction",
    "nemenyi_critical_difference",
    "nemenyi_test",
    "rank_rows",
    "sampling_error",
]

"""Majority-based F1* score (section 5 "Evaluation metrics").

Each discovered cluster is labelled with the majority ground-truth type of
its members; an element is correctly placed when its own type matches its
cluster's majority.  From the induced prediction we compute per-type
precision/recall/F1 and aggregate:

* **macro-F1** -- unweighted mean over ground-truth types (the default,
  robust to type imbalance);
* **micro-F1** -- global accuracy (under majority assignment precision and
  recall coincide).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True)
class TypeScore:
    """Per-ground-truth-type precision/recall/F1."""

    type_name: str
    precision: float
    recall: float
    f1: float
    support: int


@dataclass
class F1Result:
    """Majority-F1 evaluation outcome."""

    macro_f1: float
    micro_f1: float
    per_type: list[TypeScore] = field(default_factory=list)
    cluster_count: int = 0
    evaluated: int = 0

    def __str__(self) -> str:
        return (
            f"F1*(macro={self.macro_f1:.3f}, micro={self.micro_f1:.3f}, "
            f"clusters={self.cluster_count}, n={self.evaluated})"
        )


def majority_prediction(
    assignment: dict[str, str], truth: dict[str, str]
) -> dict[str, str]:
    """element id -> majority ground-truth type of the element's cluster.

    Elements missing from either mapping are skipped; ties break towards
    the lexicographically smallest type for determinism.
    """
    members: dict[str, list[str]] = defaultdict(list)
    for element_id, cluster_id in assignment.items():
        if element_id in truth:
            members[cluster_id].append(element_id)
    prediction: dict[str, str] = {}
    for cluster_id, element_ids in members.items():
        counts = Counter(truth[element_id] for element_id in element_ids)
        top = max(counts.items(), key=lambda item: (item[1], item[0]))
        # Deterministic tie-break: highest count, then smallest name.
        best_count = top[1]
        majority = min(
            name for name, count in counts.items() if count == best_count
        )
        for element_id in element_ids:
            prediction[element_id] = majority
    return prediction


def majority_f1(
    assignment: dict[str, str], truth: dict[str, str]
) -> F1Result:
    """Score cluster ``assignment`` against ``truth`` with majority F1*."""
    prediction = majority_prediction(assignment, truth)
    evaluated = list(prediction)
    if not evaluated:
        return F1Result(macro_f1=0.0, micro_f1=0.0)

    true_positive: Counter[str] = Counter()
    predicted_total: Counter[str] = Counter()
    truth_total: Counter[str] = Counter()
    correct = 0
    for element_id in evaluated:
        actual = truth[element_id]
        predicted = prediction[element_id]
        truth_total[actual] += 1
        predicted_total[predicted] += 1
        if actual == predicted:
            true_positive[actual] += 1
            correct += 1

    per_type: list[TypeScore] = []
    for type_name in sorted(truth_total):
        tp = true_positive[type_name]
        precision = tp / predicted_total[type_name] if predicted_total[type_name] else 0.0
        recall = tp / truth_total[type_name]
        f1 = (
            2 * precision * recall / (precision + recall)
            if precision + recall > 0
            else 0.0
        )
        per_type.append(
            TypeScore(type_name, precision, recall, f1, truth_total[type_name])
        )

    macro = sum(score.f1 for score in per_type) / len(per_type)
    micro = correct / len(evaluated)
    return F1Result(
        macro_f1=macro,
        micro_f1=micro,
        per_type=per_type,
        cluster_count=len(set(assignment.values())),
        evaluated=len(evaluated),
    )


def cluster_purity(assignment: dict[str, str], truth: dict[str, str]) -> float:
    """Fraction of elements matching their cluster majority (= micro F1*)."""
    return majority_f1(assignment, truth).micro_f1

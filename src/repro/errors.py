"""Exception hierarchy for the PG-HIVE reproduction.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class GraphError(ReproError):
    """Base class for property-graph data-model errors."""


class DuplicateElementError(GraphError):
    """An element with the same identifier already exists in the graph."""


class MissingElementError(GraphError, KeyError):
    """A node or edge identifier was not found in the graph."""

    def __str__(self) -> str:  # KeyError quotes its message; keep it plain.
        return Exception.__str__(self)


class DanglingEdgeError(GraphError):
    """An edge refers to a source or target node that is not in the graph."""


class SchemaError(ReproError):
    """Base class for schema-model errors."""


class SchemaValidationError(SchemaError):
    """A graph does not conform to a schema under the requested mode."""


class ConfigurationError(ReproError):
    """Invalid user-supplied configuration (parameters out of range, ...)."""


class SerializationError(ReproError):
    """Schema or graph (de)serialization failed."""


class CheckpointError(SerializationError):
    """A session checkpoint could not be written or restored."""


class CheckpointFormatError(CheckpointError):
    """A checkpoint file is not in the expected format (bad magic token,
    truncated or malformed header)."""


class CheckpointVersionError(CheckpointError):
    """A checkpoint carries a format version this build cannot read."""


class CheckpointCorruptError(CheckpointError):
    """A checkpoint's payload does not match its recorded digest/length."""


class WALError(SerializationError):
    """The write-ahead log could not be written, read, or replayed."""


class WALCorruptError(WALError):
    """A WAL record failed its checksum/framing check in a position that
    cannot be explained by a torn tail (mid-history corruption)."""


class DatasetError(ReproError):
    """Dataset generation or loading failed."""


class ClusteringError(ReproError):
    """LSH clustering could not be performed on the given input."""


class DegradedModeWarning(UserWarning):
    """A sharded session gave up on a worker pool and fell back to
    in-process serial execution for one or more shards.

    Results stay correct (the shard replays from its last known state),
    but parallel speedup is gone for the degraded shards.  Emitted via
    :func:`warnings.warn` alongside a structured fault event so the
    degradation is observable both interactively and programmatically.
    """

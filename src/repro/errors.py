"""Exception hierarchy for the PG-HIVE reproduction.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class GraphError(ReproError):
    """Base class for property-graph data-model errors."""


class DuplicateElementError(GraphError):
    """An element with the same identifier already exists in the graph."""


class MissingElementError(GraphError, KeyError):
    """A node or edge identifier was not found in the graph."""

    def __str__(self) -> str:  # KeyError quotes its message; keep it plain.
        return Exception.__str__(self)


class DanglingEdgeError(GraphError):
    """An edge refers to a source or target node that is not in the graph."""


class SchemaError(ReproError):
    """Base class for schema-model errors."""


class SchemaValidationError(SchemaError):
    """A graph does not conform to a schema under the requested mode."""


class ConfigurationError(ReproError):
    """Invalid user-supplied configuration (parameters out of range, ...)."""


class SerializationError(ReproError):
    """Schema or graph (de)serialization failed."""


class CheckpointError(SerializationError):
    """A session checkpoint could not be written or restored."""


class DatasetError(ReproError):
    """Dataset generation or loading failed."""


class ClusteringError(ReproError):
    """LSH clustering could not be performed on the given input."""

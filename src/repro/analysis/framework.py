"""Rule framework: diagnostics, suppressions, module/project contexts.

The analyzer parses every target file once into a :class:`ModuleContext`
(source, AST, per-line suppressions) and hands the set of modules to each
rule twice: per-module (:meth:`Rule.check_module`) and once for the whole
:class:`Project` (:meth:`Rule.check_project`, used by cross-module rules
such as state-completeness).  Diagnostics are filtered against in-source
suppressions afterwards, so a rule never needs to know about them.

Suppression syntax (same line as the diagnostic, or a comment-only line
directly above it)::

    value = list(tokens)  # repro-lint: ignore[PGL101] -- why this is fine

Three meta-rules keep suppressions honest and are not suppressible
themselves: ``PGL001`` (missing justification), ``PGL002`` (unknown rule
id), ``PGL003`` (suppression that no longer matches any diagnostic).
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field
from pathlib import Path

#: Suppression comments: a ``repro-lint: ignore[...]`` marker inside a
#: hash comment, one or more comma-separated rule ids in the brackets,
#: followed by a mandatory justification.
_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*ignore\[([A-Za-z0-9_\-,\s]*)\]\s*(.*)"
)

#: Meta-diagnostics about the suppressions themselves.
META_MISSING_JUSTIFICATION = "PGL001"
META_UNKNOWN_RULE = "PGL002"
META_UNUSED_SUPPRESSION = "PGL003"
META_RULE_IDS = frozenset(
    {META_MISSING_JUSTIFICATION, META_UNKNOWN_RULE, META_UNUSED_SUPPRESSION}
)

#: Directory-walk exclusions: rule fixtures deliberately violate rules
#: (tests load them explicitly), and hidden/cache trees are never code.
_FIXTURE_MARKER = ("analysis", "fixtures")


@dataclass(frozen=True, slots=True)
class Diagnostic:
    """One finding: where, which rule, and what to do about it."""

    path: str
    line: int
    rule_id: str
    message: str

    def render(self) -> str:
        """``path:line: RULE message`` (clickable in most terminals)."""
        return f"{self.path}:{self.line}: {self.rule_id} {self.message}"


@dataclass(frozen=True, slots=True)
class Suppression:
    """One parsed ``repro-lint: ignore[...]`` comment."""

    path: str
    comment_line: int
    #: the source line the suppression applies to (the comment's own line,
    #: or the next code line for a comment-only line).
    target_line: int
    rule_ids: tuple[str, ...]
    justification: str


class ModuleContext:
    """One parsed source file plus its suppression table."""

    __slots__ = ("path", "display", "source", "lines", "tree", "suppressions")

    def __init__(self, path: Path, display: str, source: str, tree: ast.Module):
        self.path = path
        self.display = display
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        self.suppressions: list[Suppression] = _parse_suppressions(
            display, source, self.lines
        )

    def functions(self) -> Iterable[tuple[str, ast.AST]]:
        """Yield ``(qualname, node)`` for every function, classes included."""
        yield from _walk_functions(self.tree.body, prefix="")

    def diagnostic(self, node: ast.AST, rule_id: str, message: str) -> Diagnostic:
        """Build a diagnostic anchored at ``node``."""
        return Diagnostic(self.display, getattr(node, "lineno", 1), rule_id, message)


def _walk_functions(
    body: Sequence[ast.stmt], prefix: str
) -> Iterable[tuple[str, ast.AST]]:
    for statement in body:
        if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qualname = f"{prefix}{statement.name}"
            yield qualname, statement
            yield from _walk_functions(statement.body, prefix=f"{qualname}.")
        elif isinstance(statement, ast.ClassDef):
            yield from _walk_functions(
                statement.body, prefix=f"{prefix}{statement.name}."
            )


def _parse_suppressions(
    display: str, source: str, lines: list[str]
) -> list[Suppression]:
    """Extract suppressions from real ``#`` comment tokens.

    Tokenizing (rather than regex over raw lines) keeps suppression
    examples inside docstrings and string literals inert.
    """
    suppressions: list[Suppression] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError):  # pragma: no cover
        return suppressions
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _SUPPRESS_RE.search(token.string)
        if match is None:
            continue
        number = token.start[0]
        rule_ids = tuple(
            part.strip() for part in match.group(1).split(",") if part.strip()
        )
        justification = match.group(2).strip().lstrip("-— ").strip()
        target = number
        if lines[number - 1].lstrip().startswith("#"):
            # Comment-only line: applies to the next non-blank code line.
            probe = number
            while probe < len(lines) and not lines[probe].strip():
                probe += 1
            target = probe + 1
        suppressions.append(
            Suppression(display, number, target, rule_ids, justification)
        )
    return suppressions


class Project:
    """Every parsed module of one analyzer run, with lookup helpers."""

    def __init__(self, modules: list[ModuleContext]):
        self.modules = modules

    def module_ending_with(self, tail: str) -> ModuleContext | None:
        """The unique module whose display path ends with ``tail``."""
        matches = [
            module
            for module in self.modules
            if module.display.endswith(tail)
        ]
        return matches[0] if len(matches) == 1 else None

    def function(self, tail: str, qualname: str) -> ast.AST | None:
        """Look up one function by module tail + dotted qualname."""
        module = self.module_ending_with(tail)
        if module is None:
            return None
        for name, node in module.functions():
            if name == qualname:
                return node
        return None


class Rule:
    """Base class: one invariant, one stable id, two check hooks.

    ``scope``/``exclude`` are substring markers matched against a
    module's display path; an empty scope means "everywhere".  The
    registry instantiates rules with production scoping (e.g. the
    determinism patrol covers ``src/repro/{core,schema,lsh,graph}``),
    while fixture unit tests instantiate them unscoped.
    """

    rule_id: str = "PGL000"
    #: All ids a rule can emit; defaults to ``(rule_id,)``.
    rule_ids: tuple[str, ...] = ()
    name: str = "abstract-rule"
    description: str = ""
    default_scope: tuple[str, ...] = ()
    default_exclude: tuple[str, ...] = ()

    def __init__(
        self,
        scope: Sequence[str] | None = None,
        exclude: Sequence[str] | None = None,
    ):
        self.scope = self.default_scope if scope is None else tuple(scope)
        self.exclude = self.default_exclude if exclude is None else tuple(exclude)

    def emitted_ids(self) -> tuple[str, ...]:
        """Every rule id this rule may produce."""
        return self.rule_ids or (self.rule_id,)

    def applies(self, display: str) -> bool:
        """Whether ``display`` (a module path) is in this rule's scope."""
        if any(marker in display for marker in self.exclude):
            return False
        return not self.scope or any(marker in display for marker in self.scope)

    def check_module(self, ctx: ModuleContext) -> Iterable[Diagnostic]:
        """Per-module findings (most rules)."""
        return ()

    def check_project(self, project: Project) -> Iterable[Diagnostic]:
        """Whole-project findings (cross-module rules)."""
        return ()


@dataclass
class RunResult:
    """Outcome of one analyzer run."""

    diagnostics: list[Diagnostic]
    files_checked: int
    suppressions_used: int = 0
    parse_errors: list[Diagnostic] = field(default_factory=list)
    #: the suppression comments that actually absorbed a diagnostic this
    #: run (the ``--stats`` inventory).
    used_suppressions: list[Suppression] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when nothing (diagnostics or parse errors) fired."""
        return not self.diagnostics and not self.parse_errors


class Analyzer:
    """Run a set of rules over files/directories and filter suppressions.

    ``check_suppressions=False`` disables the three meta-rules -- unit
    tests exercising a single rule on a fixture use it so deliberate
    fixture suppressions do not inject meta noise.
    """

    def __init__(self, rules: Sequence[Rule], *, check_suppressions: bool = True):
        self.rules = list(rules)
        self.check_suppressions = check_suppressions
        known: set[str] = set()
        for rule in self.rules:
            known.update(rule.emitted_ids())
        self._known_rule_ids = known | META_RULE_IDS

    # ------------------------------------------------------------------
    # File collection
    # ------------------------------------------------------------------
    @staticmethod
    def collect_files(paths: Sequence[str | Path]) -> list[Path]:
        """Expand files/directories; directory walks skip rule fixtures.

        Explicitly named files are always scanned (tests point the
        analyzer straight at fixture files); the fixture corpus and
        hidden directories are only skipped during directory expansion.
        """
        files: list[Path] = []
        seen: set[Path] = set()
        for raw in paths:
            path = Path(raw)
            if path.is_file():
                if path not in seen:
                    seen.add(path)
                    files.append(path)
                continue
            for candidate in sorted(path.rglob("*.py")):
                parts = candidate.parts
                if any(part.startswith(".") for part in parts):
                    continue
                if any(
                    parts[i : i + 2] == _FIXTURE_MARKER
                    for i in range(len(parts) - 1)
                ):
                    continue
                if candidate not in seen:
                    seen.add(candidate)
                    files.append(candidate)
        return files

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def run(self, paths: Sequence[str | Path]) -> RunResult:
        """Parse, check, and suppression-filter every target file."""
        modules: list[ModuleContext] = []
        parse_errors: list[Diagnostic] = []
        files = self.collect_files(paths)
        for path in files:
            display = path.as_posix()
            try:
                source = path.read_text(encoding="utf-8")
                tree = ast.parse(source, filename=display)
            except (OSError, SyntaxError) as error:
                parse_errors.append(
                    Diagnostic(display, 1, "PGL999", f"unparseable module: {error}")
                )
                continue
            modules.append(ModuleContext(path, display, source, tree))

        project = Project(modules)
        raw: list[Diagnostic] = []
        for rule in self.rules:
            for module in modules:
                if rule.applies(module.display):
                    raw.extend(rule.check_module(module))
            raw.extend(rule.check_project(project))

        diagnostics, used = self._apply_suppressions(project, raw)
        if self.check_suppressions:
            diagnostics.extend(self._check_suppressions(project, used))
        diagnostics.sort(key=lambda d: (d.path, d.line, d.rule_id))
        used_suppressions = [
            suppression
            for module in project.modules
            for suppression in module.suppressions
            if (suppression.path, suppression.comment_line) in used
        ]
        return RunResult(
            diagnostics=diagnostics,
            files_checked=len(files),
            suppressions_used=len(used),
            parse_errors=parse_errors,
            used_suppressions=used_suppressions,
        )

    def _apply_suppressions(
        self, project: Project, raw: list[Diagnostic]
    ) -> tuple[list[Diagnostic], set[tuple[str, int]]]:
        table: dict[tuple[str, int], set[str]] = {}
        origin: dict[tuple[str, int, str], tuple[str, int]] = {}
        for module in project.modules:
            for suppression in module.suppressions:
                key = (suppression.path, suppression.target_line)
                table.setdefault(key, set()).update(suppression.rule_ids)
                for rule_id in suppression.rule_ids:
                    origin[(*key, rule_id)] = (
                        suppression.path,
                        suppression.comment_line,
                    )
        kept: list[Diagnostic] = []
        used: set[tuple[str, int]] = set()
        for diagnostic in raw:
            allowed = table.get((diagnostic.path, diagnostic.line), ())
            if diagnostic.rule_id in allowed:
                used.add(
                    origin[(diagnostic.path, diagnostic.line, diagnostic.rule_id)]
                )
                continue
            kept.append(diagnostic)
        return kept, used

    def _check_suppressions(
        self, project: Project, used: set[tuple[str, int]]
    ) -> list[Diagnostic]:
        extra: list[Diagnostic] = []
        for module in project.modules:
            for suppression in module.suppressions:
                where = (suppression.path, suppression.comment_line)
                if not suppression.justification:
                    extra.append(
                        Diagnostic(
                            *where,
                            META_MISSING_JUSTIFICATION,
                            "suppression must carry a one-line justification "
                            "after the bracket: "
                            "`# repro-lint: ignore[RULE] -- why`",
                        )
                    )
                unknown = [
                    rule_id
                    for rule_id in suppression.rule_ids
                    if rule_id not in self._known_rule_ids
                ]
                if unknown or not suppression.rule_ids:
                    extra.append(
                        Diagnostic(
                            *where,
                            META_UNKNOWN_RULE,
                            f"unknown rule id(s) {unknown or ['<empty>']} in "
                            "suppression",
                        )
                    )
                elif where not in used:
                    extra.append(
                        Diagnostic(
                            *where,
                            META_UNUSED_SUPPRESSION,
                            "suppression matches no diagnostic; remove it "
                            f"(rules: {', '.join(suppression.rule_ids)})",
                        )
                    )
        return extra

"""Baseline files for incremental rule adoption.

A new rule family lands with findings the team cannot fix in the same
change; a baseline freezes the *known* findings so the gate only fails
on regressions.  Entries match on ``(path, rule_id, message)`` as a
multiset -- line numbers are deliberately excluded so unrelated edits
above a known finding do not churn the file -- and matching is
consuming: two identical new findings against one baselined entry still
fail.

The file is plain JSON so diffs review like code:

    {"version": 1, "entries": [
        {"path": "src/...", "rule_id": "PGL802", "message": "..."}
    ]}

Stale entries (baselined findings that no longer fire) are reported so
baselines shrink toward empty instead of fossilizing.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass
from pathlib import Path

from repro.analysis.framework import Diagnostic

BASELINE_VERSION = 1


class BaselineError(ValueError):
    """The baseline file is malformed."""


@dataclass(frozen=True)
class BaselineMatch:
    """Outcome of filtering diagnostics through a baseline."""

    #: diagnostics not covered by the baseline (these still gate).
    fresh: list[Diagnostic]
    #: number of diagnostics absorbed by baseline entries.
    matched: int
    #: baseline entries that matched nothing (candidates for removal).
    stale: list[dict]


def _key(path: str, rule_id: str, message: str) -> tuple[str, str, str]:
    return (path, rule_id, message)


def write_baseline(path: Path, diagnostics: list[Diagnostic]) -> None:
    """Freeze ``diagnostics`` as the new baseline at ``path``."""
    entries = [
        {"path": d.path, "rule_id": d.rule_id, "message": d.message}
        for d in sorted(diagnostics, key=lambda d: (d.path, d.rule_id, d.message))
    ]
    payload = {"version": BASELINE_VERSION, "entries": entries}
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def load_baseline(path: Path) -> list[dict]:
    """Parse and validate a baseline file."""
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as error:
        raise BaselineError(f"unreadable baseline {path}: {error}") from error
    if (
        not isinstance(payload, dict)
        or payload.get("version") != BASELINE_VERSION
        or not isinstance(payload.get("entries"), list)
    ):
        raise BaselineError(
            f"baseline {path} must be "
            f'{{"version": {BASELINE_VERSION}, "entries": [...]}}'
        )
    entries: list[dict] = []
    for entry in payload["entries"]:
        if not isinstance(entry, dict) or not {
            "path",
            "rule_id",
            "message",
        } <= set(entry):
            raise BaselineError(
                f"baseline {path}: every entry needs path/rule_id/message"
            )
        entries.append(entry)
    return entries


def apply_baseline(
    diagnostics: list[Diagnostic], entries: list[dict]
) -> BaselineMatch:
    """Split diagnostics into fresh vs baseline-absorbed (consuming)."""
    budget = Counter(
        _key(e["path"], e["rule_id"], e["message"]) for e in entries
    )
    fresh: list[Diagnostic] = []
    matched = 0
    for diagnostic in diagnostics:
        key = _key(diagnostic.path, diagnostic.rule_id, diagnostic.message)
        if budget.get(key, 0) > 0:
            budget[key] -= 1
            matched += 1
        else:
            fresh.append(diagnostic)
    stale: list[dict] = []
    for entry in entries:
        key = _key(entry["path"], entry["rule_id"], entry["message"])
        if budget.get(key, 0) > 0:
            budget[key] -= 1
            stale.append(entry)
    return BaselineMatch(fresh=fresh, matched=matched, stale=stale)


__all__ = [
    "BASELINE_VERSION",
    "BaselineError",
    "BaselineMatch",
    "apply_baseline",
    "load_baseline",
    "write_baseline",
]

"""Invariant-enforcing static analysis for the discovery core.

The codebase's headline guarantees -- bit-identical checkpoint/restore,
sharded == single-session fingerprints, columnar == element-wise oracles
-- rest on invariants that code review alone does not enforce:
deterministic iteration in merge paths, every piece of mutable state
threaded through merge/checkpoint/fingerprint, and no per-element object
churn on the columnar hot path.  This package makes those invariants
machine-checked: ``python -m repro.analysis src tests`` parses the tree,
runs a set of AST rules, and exits non-zero on any unsuppressed
diagnostic (the CI ``repro-lint`` job gates on exactly that).

Rule families (see :mod:`repro.analysis.rules`):

* ``PGL1xx`` determinism -- order-sensitive consumption of hash-ordered
  sets, and wall-clock / unseeded-randomness / environment reads in
  non-bench discovery code.
* ``PGL2xx`` state-completeness -- every field of ``DiscoveryState``,
  the accumulators, the schema types, and the ``Interner`` must be
  referenced by its merge, checkpoint encode/decode, copy, and
  fingerprint paths ("added a field, forgot merge/checkpoint" fails CI).
* ``PGL3xx`` hot-path hygiene -- no ``Node``/``Edge`` materialisation or
  per-row column walks inside the columnar ingest call graph.
* ``PGL4xx`` cross-process safety -- nothing unpicklable submitted to a
  ``ProcessPoolExecutor``.
* ``PGL5xx`` API hygiene -- mutable default arguments and accumulator
  ``merge_from``/``copy``/``observe*`` signature drift.

False positives are silenced in place with a justified suppression::

    start = time.perf_counter()  # repro-lint: ignore[PGL102] -- wall-clock diagnostics only

The justification text after the bracket is mandatory (``PGL001``), the
rule id must exist (``PGL002``), and a suppression that stops matching
anything is itself flagged (``PGL003``) -- so the suppression inventory
stays an honest, reviewable list of deliberate exceptions.
"""

from repro.analysis.framework import (
    Analyzer,
    Diagnostic,
    ModuleContext,
    Project,
    Rule,
)
from repro.analysis.rules import all_rules, default_analyzer

__all__ = [
    "Analyzer",
    "Diagnostic",
    "ModuleContext",
    "Project",
    "Rule",
    "all_rules",
    "default_analyzer",
]

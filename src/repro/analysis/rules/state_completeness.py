"""State-completeness rule (PGL2xx).

PR-4/PR-5 both hit the same bug class: a field added to a mergeable
state object but not threaded through one of its lifecycle paths
(merge, checkpoint encode/decode, copy, fingerprint), silently
corrupting restores or letting shard merges drop data.  This rule makes
the contract explicit: for each registered class, every attribute
assigned in ``__init__`` (or declared as a dataclass field) must be
*referenced* -- as an attribute access, keyword argument, or string
constant -- inside each named coverage target.

Coverage is deliberately shallow (name appearance, not dataflow): it
cannot prove a field is handled *correctly*, only that each lifecycle
path at least mentions it, which is exactly the "added a field, forgot
merge/checkpoint" failure mode.  A dynamic round-trip companion test
(``tests/core/test_state_roundtrip.py``) covers the value-level half.

``PGL200`` flags contract rot (a registered class/function that no
longer exists) so the table cannot silently stop checking anything.
``PGL201`` flags an uncovered field, anchored at the field's definition
line so suppressions sit next to the field they exempt.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

from repro.analysis.framework import Diagnostic, Project, Rule

CONTRACT_ERROR = "PGL200"
UNCOVERED_FIELD = "PGL201"


@dataclass(frozen=True)
class CoverageTarget:
    """One lifecycle path: a label plus the functions implementing it."""

    label: str
    #: ``(module path tail, dotted qualname)`` pairs.
    functions: tuple[tuple[str, str], ...]


@dataclass(frozen=True)
class StateContract:
    """Field-coverage contract for one state-bearing class."""

    module_tail: str
    class_name: str
    targets: tuple[CoverageTarget, ...]
    #: Field names the contract never checks (e.g. pure config knobs).
    exempt: frozenset[str] = field(default_factory=frozenset)


def _class_def(tree: ast.Module, name: str) -> ast.ClassDef | None:
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == name:
            return node
    return None


def _is_classvar(annotation: ast.expr) -> bool:
    target = annotation
    if isinstance(target, ast.Subscript):
        target = target.value
    if isinstance(target, ast.Attribute):
        return target.attr == "ClassVar"
    return isinstance(target, ast.Name) and target.id == "ClassVar"


def _own_fields(class_def: ast.ClassDef) -> list[tuple[str, int]]:
    """``(name, lineno)`` for every state field the class itself declares.

    Dataclass-style annotated class attributes plus ``self.X = ...``
    assignments in ``__init__``; dunders and ``ClassVar`` declarations
    are not state.
    """
    fields: dict[str, int] = {}
    for statement in class_def.body:
        if isinstance(statement, ast.AnnAssign) and isinstance(
            statement.target, ast.Name
        ):
            name = statement.target.id
            if not name.startswith("__") and not _is_classvar(
                statement.annotation
            ):
                fields.setdefault(name, statement.lineno)
    for statement in class_def.body:
        if (
            isinstance(statement, ast.FunctionDef)
            and statement.name == "__init__"
        ):
            for node in ast.walk(statement):
                targets: list[ast.expr] = []
                if isinstance(node, ast.Assign):
                    targets = node.targets
                elif isinstance(node, ast.AnnAssign):
                    targets = [node.target]
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                        and not target.attr.startswith("__")
                    ):
                        fields.setdefault(target.attr, target.lineno)
    return sorted(fields.items(), key=lambda item: (item[1], item[0]))


def _referenced_names(function: ast.AST) -> frozenset[str]:
    """Names a function mentions: attributes, kwargs, string constants."""
    names: set[str] = set()
    for node in ast.walk(function):
        if isinstance(node, ast.Attribute):
            names.add(node.attr)
        elif isinstance(node, ast.keyword) and node.arg:
            names.add(node.arg)
        elif isinstance(node, ast.Constant) and isinstance(node.value, str):
            names.add(node.value)
        elif isinstance(node, ast.Name):
            names.add(node.id)
    return frozenset(names)


#: The production contract table.  Adding a field to any of these classes
#: without threading it through every listed lifecycle path fails CI.
DEFAULT_CONTRACTS: tuple[StateContract, ...] = (
    StateContract(
        module_tail="repro/core/state.py",
        class_name="DiscoveryState",
        targets=(
            CoverageTarget(
                "merge (DiscoveryState._fold_in)",
                (("repro/core/state.py", "DiscoveryState._fold_in"),),
            ),
            CoverageTarget(
                "checkpoint encode (SchemaSession.checkpoint)",
                (("repro/core/session.py", "SchemaSession.checkpoint"),),
            ),
            CoverageTarget(
                "checkpoint decode (SchemaSession.restore)",
                (
                    ("repro/core/session.py", "SchemaSession.restore"),
                    (
                        "repro/core/session.py",
                        "SchemaSession._from_checkpoint_payload",
                    ),
                ),
            ),
        ),
    ),
    StateContract(
        module_tail="repro/core/pipeline.py",
        class_name="PipelineState",
        targets=(
            CoverageTarget(
                "merge (DiscoveryState._fold_in)",
                (("repro/core/state.py", "DiscoveryState._fold_in"),),
            ),
        ),
    ),
    *(
        StateContract(
            module_tail="repro/core/accumulators.py",
            class_name=accumulator,
            targets=(
                CoverageTarget(
                    f"merge ({accumulator}.merge_from)",
                    (
                        (
                            "repro/core/accumulators.py",
                            f"{accumulator}.merge_from",
                        ),
                    ),
                ),
                CoverageTarget(
                    f"copy ({accumulator}.copy)",
                    (("repro/core/accumulators.py", f"{accumulator}.copy"),),
                ),
            ),
        )
        for accumulator in (
            "DatatypeAccumulator",
            "EndpointAccumulator",
            "DistinctTracker",
            "KeyAccumulator",
            "TypeSummaries",
        )
    ),
    StateContract(
        module_tail="repro/graph/columnar.py",
        class_name="Interner",
        targets=(
            CoverageTarget(
                "snapshot encode (Interner.snapshot)",
                (("repro/graph/columnar.py", "Interner.snapshot"),),
            ),
            CoverageTarget(
                "snapshot decode (Interner.merge_snapshot)",
                (("repro/graph/columnar.py", "Interner.merge_snapshot"),),
            ),
            CoverageTarget(
                "merge (Interner.merge_from)",
                (("repro/graph/columnar.py", "Interner.merge_from"),),
            ),
        ),
    ),
    StateContract(
        module_tail="repro/graph/columnar.py",
        class_name="SignatureStore",
        targets=(
            CoverageTarget(
                "merge (SignatureStore.merge_from / DiscoveryState._fold_in)",
                (
                    ("repro/graph/columnar.py", "SignatureStore.merge_from"),
                    ("repro/core/state.py", "DiscoveryState._fold_in"),
                ),
            ),
            CoverageTarget(
                "snapshot encode (SignatureStore.snapshot)",
                (("repro/graph/columnar.py", "SignatureStore.snapshot"),),
            ),
            CoverageTarget(
                "snapshot decode (SignatureStore.from_snapshot)",
                (("repro/graph/columnar.py", "SignatureStore.from_snapshot"),),
            ),
            CoverageTarget(
                "copy (SignatureStore.copy)",
                (("repro/graph/columnar.py", "SignatureStore.copy"),),
            ),
        ),
    ),
    StateContract(
        module_tail="repro/schema/model.py",
        class_name="_TypeBase",
        targets=(
            CoverageTarget(
                "merge (_TypeBase._absorb_base)",
                (("repro/schema/model.py", "_TypeBase._absorb_base"),),
            ),
            CoverageTarget(
                "copy (NodeType.copy / EdgeType.copy)",
                (
                    ("repro/schema/model.py", "NodeType.copy"),
                    ("repro/schema/model.py", "EdgeType.copy"),
                ),
            ),
            CoverageTarget(
                "fingerprint (_type_fingerprint)",
                (("repro/schema/model.py", "_type_fingerprint"),),
            ),
        ),
    ),
    StateContract(
        module_tail="repro/schema/model.py",
        class_name="EdgeType",
        targets=(
            CoverageTarget(
                "merge (EdgeType.absorb)",
                (("repro/schema/model.py", "EdgeType.absorb"),),
            ),
            CoverageTarget(
                "copy (EdgeType.copy)",
                (("repro/schema/model.py", "EdgeType.copy"),),
            ),
            CoverageTarget(
                "fingerprint (_type_fingerprint)",
                (("repro/schema/model.py", "_type_fingerprint"),),
            ),
        ),
    ),
)


class StateCompletenessRule(Rule):
    """PGL200/PGL201: every state field threaded through its lifecycle."""

    rule_id = UNCOVERED_FIELD
    rule_ids = (CONTRACT_ERROR, UNCOVERED_FIELD)
    name = "state-completeness"
    description = (
        "every __init__/dataclass field of registered state classes must be "
        "referenced by its merge, checkpoint, copy, and fingerprint paths"
    )

    def __init__(
        self,
        contracts: Sequence[StateContract] = DEFAULT_CONTRACTS,
        scope: Sequence[str] | None = None,
        exclude: Sequence[str] | None = None,
    ):
        super().__init__(scope=scope, exclude=exclude)
        self.contracts = tuple(contracts)

    def check_project(self, project: Project) -> Iterable[Diagnostic]:
        for contract in self.contracts:
            yield from self._check_contract(project, contract)

    def _check_contract(
        self, project: Project, contract: StateContract
    ) -> Iterable[Diagnostic]:
        module = project.module_ending_with(contract.module_tail)
        if module is None:
            # The state module is not part of this run (e.g. the analyzer
            # was pointed at a subtree); nothing to check.
            return
        class_def = _class_def(module.tree, contract.class_name)
        if class_def is None:
            yield Diagnostic(
                module.display,
                1,
                CONTRACT_ERROR,
                f"state contract references unknown class "
                f"{contract.class_name!r}; update DEFAULT_CONTRACTS",
            )
            return
        fields = [
            (name, line)
            for name, line in _own_fields(class_def)
            if name not in contract.exempt
        ]
        for target in contract.targets:
            referenced, missing_fns = self._target_references(project, target)
            for tail, qualname in missing_fns:
                yield Diagnostic(
                    module.display,
                    class_def.lineno,
                    CONTRACT_ERROR,
                    f"coverage target {qualname!r} not found in module "
                    f"*{tail}; update DEFAULT_CONTRACTS",
                )
            if missing_fns:
                continue
            if referenced is None:
                # Target module absent from this run; skip the target.
                continue
            for name, line in fields:
                if name not in referenced:
                    yield Diagnostic(
                        module.display,
                        line,
                        UNCOVERED_FIELD,
                        f"field {contract.class_name}.{name} is not "
                        f"referenced by {target.label}; thread it through "
                        "or suppress with a justification",
                    )

    @staticmethod
    def _target_references(
        project: Project, target: CoverageTarget
    ) -> tuple[frozenset[str] | None, list[tuple[str, str]]]:
        referenced: set[str] = set()
        missing: list[tuple[str, str]] = []
        saw_module = False
        for tail, qualname in target.functions:
            module = project.module_ending_with(tail)
            if module is None:
                continue
            saw_module = True
            found = None
            for name, node in module.functions():
                if name == qualname:
                    found = node
                    break
            if found is None:
                missing.append((tail, qualname))
                continue
            referenced.update(_referenced_names(found))
        if not saw_module:
            return None, missing
        return frozenset(referenced), missing

"""Rule registry: every shipped rule family, plus the default analyzer.

Rule ids are stable API (suppression comments reference them):

* ``PGL101`` ordered consumption of hash-ordered sets
* ``PGL102`` nondeterministic sources (clock, unseeded RNG, environment)
* ``PGL201`` state-completeness contracts (merge/checkpoint/fingerprint)
* ``PGL301`` element materialisation on the columnar hot path
* ``PGL302`` per-row Python loops over value columns on the hot path
* ``PGL401`` unpicklable callables submitted to process pools
* ``PGL501`` mutable default arguments
* ``PGL502`` accumulator ``merge_from``/``copy``/``observe*`` drift
* ``PGL601`` pickled artifacts written without the atomic durability helper
* ``PGL701`` durable-session mutation reachable before the WAL append
* ``PGL702`` interprocedural pickle-to-raw-write paths around the helpers
* ``PGL703`` renames without fsync bracketing
* ``PGL801`` handles acquired without with/try-finally/owner release
* ``PGL802`` multi-field state mutation torn by a raise in between
* ``PGL803`` shared-memory handles: ownership plus a module unlink path
* ``PGL901`` shared process-wide state mutated outside owner/lock scope
* ``PGL001``-``PGL003`` suppression hygiene (framework meta-rules)
"""

from __future__ import annotations

from repro.analysis.framework import Analyzer, Rule
from repro.analysis.rules.api_hygiene import (
    AccumulatorSignatureRule,
    MutableDefaultRule,
)
from repro.analysis.rules.concurrency import SharedStateMutationRule
from repro.analysis.rules.crash_consistency import (
    InterprocDurableWriteRule,
    RenameFsyncRule,
    WalBeforeApplyRule,
)
from repro.analysis.rules.crossproc import ProcessPoolSubmissionRule
from repro.analysis.rules.durable_io import DurableArtifactWriteRule
from repro.analysis.rules.determinism import (
    NondeterministicSourceRule,
    OrderedSetConsumptionRule,
)
from repro.analysis.rules.exception_safety import (
    PartialMutationRule,
    ResourceLifecycleRule,
    SharedMemoryLifecycleRule,
)
from repro.analysis.rules.hotpath import (
    ColumnLoopRule,
    ElementMaterialisationRule,
)
from repro.analysis.rules.state_completeness import StateCompletenessRule


def all_rules() -> list[Rule]:
    """One fresh instance of every shipped rule, repo-scoped."""
    return [
        OrderedSetConsumptionRule(),
        NondeterministicSourceRule(),
        StateCompletenessRule(),
        ElementMaterialisationRule(),
        ColumnLoopRule(),
        ProcessPoolSubmissionRule(),
        MutableDefaultRule(),
        AccumulatorSignatureRule(),
        DurableArtifactWriteRule(),
        WalBeforeApplyRule(),
        InterprocDurableWriteRule(),
        RenameFsyncRule(),
        ResourceLifecycleRule(),
        PartialMutationRule(),
        SharedMemoryLifecycleRule(),
        SharedStateMutationRule(),
    ]


def default_analyzer() -> Analyzer:
    """The analyzer the CLI and the CI gate run."""
    return Analyzer(all_rules())


__all__ = [
    "AccumulatorSignatureRule",
    "ColumnLoopRule",
    "DurableArtifactWriteRule",
    "ElementMaterialisationRule",
    "InterprocDurableWriteRule",
    "MutableDefaultRule",
    "NondeterministicSourceRule",
    "OrderedSetConsumptionRule",
    "PartialMutationRule",
    "ProcessPoolSubmissionRule",
    "RenameFsyncRule",
    "SharedMemoryLifecycleRule",
    "SharedStateMutationRule",
    "StateCompletenessRule",
    "WalBeforeApplyRule",
    "all_rules",
    "default_analyzer",
]

"""Rule registry: every shipped rule family, plus the default analyzer.

Rule ids are stable API (suppression comments reference them):

* ``PGL101`` ordered consumption of hash-ordered sets
* ``PGL102`` nondeterministic sources (clock, unseeded RNG, environment)
* ``PGL201`` state-completeness contracts (merge/checkpoint/fingerprint)
* ``PGL301`` element materialisation on the columnar hot path
* ``PGL302`` per-row Python loops over value columns on the hot path
* ``PGL401`` unpicklable callables submitted to process pools
* ``PGL501`` mutable default arguments
* ``PGL502`` accumulator ``merge_from``/``copy``/``observe*`` drift
* ``PGL601`` pickled artifacts written without the atomic durability helper
* ``PGL001``-``PGL003`` suppression hygiene (framework meta-rules)
"""

from __future__ import annotations

from repro.analysis.framework import Analyzer, Rule
from repro.analysis.rules.api_hygiene import (
    AccumulatorSignatureRule,
    MutableDefaultRule,
)
from repro.analysis.rules.crossproc import ProcessPoolSubmissionRule
from repro.analysis.rules.durable_io import DurableArtifactWriteRule
from repro.analysis.rules.determinism import (
    NondeterministicSourceRule,
    OrderedSetConsumptionRule,
)
from repro.analysis.rules.hotpath import (
    ColumnLoopRule,
    ElementMaterialisationRule,
)
from repro.analysis.rules.state_completeness import StateCompletenessRule


def all_rules() -> list[Rule]:
    """One fresh instance of every shipped rule, repo-scoped."""
    return [
        OrderedSetConsumptionRule(),
        NondeterministicSourceRule(),
        StateCompletenessRule(),
        ElementMaterialisationRule(),
        ColumnLoopRule(),
        ProcessPoolSubmissionRule(),
        MutableDefaultRule(),
        AccumulatorSignatureRule(),
        DurableArtifactWriteRule(),
    ]


def default_analyzer() -> Analyzer:
    """The analyzer the CLI and the CI gate run."""
    return Analyzer(all_rules())


__all__ = [
    "AccumulatorSignatureRule",
    "ColumnLoopRule",
    "DurableArtifactWriteRule",
    "ElementMaterialisationRule",
    "MutableDefaultRule",
    "NondeterministicSourceRule",
    "OrderedSetConsumptionRule",
    "ProcessPoolSubmissionRule",
    "StateCompletenessRule",
    "all_rules",
    "default_analyzer",
]

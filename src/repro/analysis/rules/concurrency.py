"""Concurrency and lock-discipline rules (PGL9xx).

The ROADMAP's multi-tenant service will run discovery sessions on
threads sharing one process, so process-wide mutable state -- the global
``Interner`` behind ``global_interner()`` and the token-id cache in
``lsh/minhash.py`` -- becomes a data race the moment a second thread
arrives.  ``PGL901`` enforces the two disciplines that keep it safe:

* **Designated owners** -- a registered shared global may be mutated
  only inside its owner function(s) (``_token_id`` for the token cache,
  ``global_interner`` for the global interner) or under a ``with
  <...lock...>:`` block.  Everything else must go through the owner.
* **Locked classes** -- a registered class (``Interner``) must guard
  every ``self`` mutation outside ``__init__``/pickle hooks with ``with
  self.<lock>:``.  The lock field itself is exempt (it is created in
  ``__init__`` and re-created by ``__setstate__``).

Both tables are name-keyed so fixtures exercise the rule with the same
names the real tree uses.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.analysis.astutil import dotted_name, walk_local
from repro.analysis.framework import Diagnostic, ModuleContext, Rule

#: shared module-level globals -> bare names of their owner functions.
SHARED_GLOBALS: dict[str, frozenset[str]] = {
    "_TOKEN_ID_CACHE": frozenset({"_token_id"}),
    "_GLOBAL": frozenset({"global_interner"}),
}

#: classes whose self-state mutations must hold the named lock field.
LOCKED_CLASSES: dict[str, str] = {"Interner": "_lock"}

#: container methods that mutate their receiver in place.
_MUTATING_METHODS = frozenset(
    {
        "append",
        "add",
        "update",
        "setdefault",
        "pop",
        "popitem",
        "clear",
        "extend",
        "insert",
        "remove",
        "discard",
        "__setitem__",
    }
)

#: methods where unlocked mutation is sanctioned: construction happens
#: before the object is shared, and pickle hooks run on private copies.
_UNLOCKED_METHODS = frozenset({"__init__", "__getstate__", "__setstate__"})


def _root_name(expression: ast.expr) -> str | None:
    """Leftmost name of an attribute/subscript chain."""
    while isinstance(expression, (ast.Attribute, ast.Subscript)):
        expression = expression.value
    if isinstance(expression, ast.Name):
        return expression.id
    return None


def _is_lock_expression(expression: ast.expr) -> bool:
    dotted = dotted_name(expression)
    return dotted is not None and "lock" in dotted.lower()


def _locked_zone(function: ast.AST) -> set[int]:
    """ids of nodes inside any ``with <...lock...>:`` block."""
    zone: set[int] = set()
    for node in walk_local(function):
        if isinstance(node, (ast.With, ast.AsyncWith)) and any(
            _is_lock_expression(item.context_expr) for item in node.items
        ):
            for child in ast.walk(node):
                zone.add(id(child))
    return zone


def _global_mutation(node: ast.AST, names: Iterable[str]) -> str | None:
    """The shared global ``node`` mutates, else None."""
    wanted = set(names)
    if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
        targets = (
            node.targets if isinstance(node, ast.Assign) else [node.target]
        )
        for target in targets:
            root = _root_name(target)
            if root in wanted and not isinstance(target, ast.Name):
                return root  # subscript/attribute store into the global
            if (
                isinstance(target, ast.Name)
                and target.id in wanted
                and isinstance(node, ast.AugAssign)
            ):
                return target.id
    if isinstance(node, ast.Delete):
        for target in node.targets:
            root = _root_name(target)
            if root in wanted:
                return root
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        if node.func.attr in _MUTATING_METHODS:
            root = _root_name(node.func.value)
            if root in wanted:
                return root
    return None


def _rebinds_global(function: ast.AST, names: Iterable[str]) -> str | None:
    """A ``global NAME`` declaration + rebind inside ``function``."""
    wanted = set(names)
    declared: set[str] = set()
    for node in walk_local(function):
        if isinstance(node, ast.Global):
            declared.update(name for name in node.names if name in wanted)
    if not declared:
        return None
    for node in walk_local(function):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id in declared:
                    return target.id
    return None


class SharedStateMutationRule(Rule):
    """PGL901: shared mutable state mutated outside owner or lock."""

    rule_id = "PGL901"
    name = "shared-state-mutation"
    description = (
        "process-wide shared state (global interner, module caches) "
        "mutated outside its designated owner or a lock scope"
    )
    default_scope = ("src/repro/",)

    shared_globals = SHARED_GLOBALS
    locked_classes = LOCKED_CLASSES

    def check_module(self, ctx: ModuleContext) -> Iterable[Diagnostic]:
        defined = {
            name
            for node in ctx.tree.body
            if isinstance(node, (ast.Assign, ast.AnnAssign))
            for name in self._module_binding_names(node)
            if name in self.shared_globals
        }
        for qualname, function in ctx.functions():
            yield from self._check_function(ctx, qualname, function, defined)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef) and node.name in (
                self.locked_classes
            ):
                yield from self._check_locked_class(ctx, node)

    @staticmethod
    def _module_binding_names(node: ast.AST) -> Iterable[str]:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    yield target.id
        elif isinstance(node, ast.AnnAssign) and isinstance(
            node.target, ast.Name
        ):
            yield node.target.id

    def _check_function(
        self,
        ctx: ModuleContext,
        qualname: str,
        function: ast.AST,
        defined: set[str],
    ) -> Iterable[Diagnostic]:
        if not defined:
            return
        bare_name = qualname.rsplit(".", 1)[-1]
        owned = {
            name
            for name, owners in self.shared_globals.items()
            if bare_name in owners
        }
        patrolled = defined - owned
        if not patrolled:
            return
        locked = _locked_zone(function)
        rebound = _rebinds_global(function, patrolled)
        if rebound is not None:
            yield ctx.diagnostic(
                function,
                self.rule_id,
                f"{qualname} rebinds shared global {rebound}; only its "
                "owner may replace process-wide state",
            )
        for node in walk_local(function):
            name = _global_mutation(node, patrolled)
            if name is None or id(node) in locked:
                continue
            owners = ", ".join(sorted(self.shared_globals[name]))
            yield ctx.diagnostic(
                node,
                self.rule_id,
                f"{qualname} mutates shared global {name} outside its "
                f"owner ({owners}) and outside any lock scope; route the "
                "mutation through the owner or hold the lock",
            )

    def _check_locked_class(
        self, ctx: ModuleContext, class_node: ast.ClassDef
    ) -> Iterable[Diagnostic]:
        lock_field = self.locked_classes[class_node.name]
        for statement in class_node.body:
            if not isinstance(
                statement, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            if statement.name in _UNLOCKED_METHODS:
                continue
            locked = _locked_zone(statement)
            for node in walk_local(statement):
                field = self._self_mutation(node)
                if field is None or field == lock_field:
                    continue
                if id(node) in locked:
                    continue
                yield ctx.diagnostic(
                    node,
                    self.rule_id,
                    f"{class_node.name}.{statement.name} mutates "
                    f"self.{field} outside `with self.{lock_field}:`; "
                    f"{class_node.name} is shared process-wide and every "
                    "mutation must hold its lock",
                )

    @staticmethod
    def _self_mutation(node: ast.AST) -> str | None:
        """The self field mutated by ``node``, else None."""

        def self_field(expression: ast.expr) -> str | None:
            while isinstance(expression, ast.Subscript):
                expression = expression.value
            if (
                isinstance(expression, ast.Attribute)
                and isinstance(expression.value, ast.Name)
                and expression.value.id == "self"
            ):
                return expression.attr
            return None

        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets
                if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                field = self_field(target)
                if field is not None:
                    return field
        if isinstance(node, ast.Delete):
            for target in node.targets:
                field = self_field(target)
                if field is not None:
                    return field
        if isinstance(node, ast.Call) and isinstance(
            node.func, ast.Attribute
        ):
            if node.func.attr in _MUTATING_METHODS:
                receiver = node.func.value
                field = self_field(receiver)
                if field is not None:
                    return field
        return None

"""Exception-safety and resource-lifecycle rules (PGL8xx).

``PGL801`` -- resource lifecycle: ``open()``/``Path.open()``/
``ProcessPoolExecutor()`` handles must be owned by somebody.  An
acquisition is fine when it is a ``with`` context, is returned, is
passed straight into another API, or is bound to a name that is later
closed in a ``try/finally`` (or exception handler), re-entered as a
``with`` block, returned, or stored for a longer-lived owner
(``self.attr`` assignments require a ``*.attr.close()``/``shutdown()``
somewhere in the same module -- the ``WriteAheadLog._handle`` pattern).
Anything else leaks the handle on the first exception.

``PGL802`` -- partial multi-field mutation: a method of a session/state
class that mutates one ``self`` field, then performs a raise-capable
operation (a literal ``raise`` or a resolved call that can raise, per
the call graph), then mutates a *different* field, leaves the object
torn when the exception fires between the two writes.  This is the bug
class behind the rejected-changeset poisoning fixed in PR 7: sequence
bumped, reports appended, registry already rewritten.  Raise-capable
operations lexically inside a ``try`` with handlers or a ``finally``
are assumed compensated.

``PGL803`` -- shared-memory lifecycle: ``SharedMemory(...)`` handles get
the PGL801 ownership check with the shm release vocabulary (``close``,
``unlink``, ``release``, ``release_all``), *plus* a module-level unlink
obligation: a module that creates segments (``create=True``) without any
``.unlink()`` call leaks ``/dev/shm`` entries past process death --
``close`` alone only drops the mapping.  Handing the handle to an owner
(registry, finalizer) satisfies the per-call check exactly as in
PGL801; only the creating module must hold an unlink path.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.analysis.astutil import call_name, walk_local
from repro.analysis.callgraph import FunctionInfo, project_callgraph
from repro.analysis.framework import (
    Diagnostic,
    ModuleContext,
    Project,
    Rule,
)

#: constructor names that acquire a handle needing explicit shutdown.
_EXECUTOR_NAMES = frozenset({"ProcessPoolExecutor", "ThreadPoolExecutor"})

#: method names that release a handle.
_RELEASE_METHODS = frozenset({"close", "shutdown", "terminate"})

#: method names that release a shared-memory handle (PGL803); ``release``
#: and ``release_all`` cover registry-owned blocks.
_SHM_RELEASE_METHODS = frozenset(
    {"close", "unlink", "release", "release_all"}
)


def _acquisition(call: ast.Call) -> str | None:
    """Describe ``call`` when it acquires a closable handle."""
    func = call.func
    if isinstance(func, ast.Name) and func.id == "open":
        return "open()"
    if isinstance(func, ast.Attribute) and func.attr == "open":
        return ".open()"
    name = call_name(call)
    if name in _EXECUTOR_NAMES:
        return f"{name}()"
    return None


def _local_parents(function: ast.AST) -> dict[int, ast.AST]:
    parents: dict[int, ast.AST] = {}
    for node in walk_local(function):
        for child in ast.iter_child_nodes(node):
            parents[id(child)] = node
    return parents


def _cleanup_zone(function: ast.AST) -> set[int]:
    """ids of nodes inside any ``finally`` block or exception handler."""
    zone: set[int] = set()
    for node in walk_local(function):
        if isinstance(node, (ast.Try, getattr(ast, "TryStar", ast.Try))):
            roots: list[ast.AST] = list(node.finalbody)
            roots.extend(node.handlers)
            for root in roots:
                zone.add(id(root))
                for child in ast.walk(root):
                    zone.add(id(child))
    return zone


def _release_call(
    node: ast.AST, methods: frozenset[str] = _RELEASE_METHODS
) -> ast.expr | None:
    """Receiver of ``<receiver>.close()``-style calls, else None."""
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in methods
    ):
        return node.func.value
    return None


class ResourceLifecycleRule(Rule):
    """PGL801: every acquired handle has an owner that closes it."""

    rule_id = "PGL801"
    name = "resource-lifecycle"
    description = (
        "open()/ProcessPoolExecutor() handle acquired without with, "
        "try/finally close, or an owning object that closes it"
    )
    default_scope = ("src/repro/",)
    #: the release vocabulary this rule's ownership checks accept.
    release_methods = _RELEASE_METHODS

    def acquisition(self, call: ast.Call) -> str | None:
        """Describe ``call`` when it acquires a handle this rule patrols."""
        return _acquisition(call)

    def check_module(self, ctx: ModuleContext) -> Iterable[Diagnostic]:
        module_released_attrs = self._module_released_attrs(ctx)
        for qualname, function in ctx.functions():
            parents = _local_parents(function)
            cleanup = _cleanup_zone(function)
            for node in walk_local(function):
                if not isinstance(node, ast.Call):
                    continue
                what = self.acquisition(node)
                if what is None:
                    continue
                if self._managed(
                    node, parents, function, cleanup, module_released_attrs
                ):
                    continue
                yield ctx.diagnostic(
                    node,
                    self.rule_id,
                    f"{what} handle in {qualname} is never released: use "
                    "a with block, close it in try/finally, or hand it to "
                    "an owner that does",
                )

    def _module_released_attrs(self, ctx: ModuleContext) -> set[str]:
        """Attribute names released via ``*.attr.close()`` in this module."""
        released: set[str] = set()
        for node in ast.walk(ctx.tree):
            receiver = _release_call(node, self.release_methods)
            if isinstance(receiver, ast.Attribute):
                released.add(receiver.attr)
        return released

    def _managed(
        self,
        call: ast.Call,
        parents: dict[int, ast.AST],
        function: ast.AST,
        cleanup: set[int],
        module_released_attrs: set[str],
    ) -> bool:
        parent = parents.get(id(call))
        if isinstance(parent, ast.withitem):
            return True
        if isinstance(parent, (ast.Return, ast.Await)):
            return True
        if isinstance(parent, ast.Call):
            # Passed straight into another API (ExitStack.enter_context,
            # TextIOWrapper, ...): ownership transfers with the value.
            return True
        if isinstance(parent, ast.Assign) and len(parent.targets) == 1:
            target = parent.targets[0]
            if isinstance(target, ast.Name):
                return self._name_released(
                    target.id, function, cleanup
                )
            if isinstance(target, ast.Attribute):
                return target.attr in module_released_attrs
        return False

    def _name_released(
        self, name: str, function: ast.AST, cleanup: set[int]
    ) -> bool:
        for node in walk_local(function):
            receiver = _release_call(node, self.release_methods)
            if (
                receiver is not None
                and isinstance(receiver, ast.Name)
                and receiver.id == name
                and id(node) in cleanup
            ):
                return True
            if isinstance(node, ast.withitem):
                context = node.context_expr
                if isinstance(context, ast.Name) and context.id == name:
                    return True
            if (
                isinstance(node, ast.Return)
                and isinstance(node.value, ast.Name)
                and node.value.id == name
            ):
                return True
            if isinstance(node, ast.Call) and any(
                isinstance(argument, ast.Name) and argument.id == name
                for argument in node.args
            ):
                return True
            if (
                isinstance(node, ast.Assign)
                and isinstance(node.value, ast.Name)
                and node.value.id == name
                and any(
                    isinstance(t, (ast.Attribute, ast.Subscript))
                    for t in node.targets
                )
            ):
                return True
        return False


class SharedMemoryLifecycleRule(ResourceLifecycleRule):
    """PGL803: SharedMemory handles are owned, and creators unlink.

    Per-acquisition ownership follows PGL801 with the shm release
    vocabulary (``close``/``unlink``/``release``/``release_all``): a
    with block, a try/finally release, handing the handle to an owner
    (registry, ``weakref.finalize``), or returning it all satisfy the
    check.  On top of that, every ``SharedMemory(..., create=True)``
    site requires *some* ``.unlink()`` call in the same module --
    ``close()`` only unmaps; without an unlink path the segment outlives
    the process in ``/dev/shm``.
    """

    rule_id = "PGL803"
    name = "shared-memory-lifecycle"
    description = (
        "SharedMemory handle without with/try-finally release or owner, "
        "or created in a module with no unlink path"
    )
    default_scope = ("src/repro/",)
    release_methods = _SHM_RELEASE_METHODS

    def acquisition(self, call: ast.Call) -> str | None:
        if call_name(call) == "SharedMemory":
            return "SharedMemory()"
        return None

    def check_module(self, ctx: ModuleContext) -> Iterable[Diagnostic]:
        yield from super().check_module(ctx)
        if self._module_unlinks(ctx):
            return
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and self.acquisition(node) is not None
                and any(
                    keyword.arg == "create"
                    and isinstance(keyword.value, ast.Constant)
                    and keyword.value.value is True
                    for keyword in node.keywords
                )
            ):
                yield ctx.diagnostic(
                    node,
                    self.rule_id,
                    "SharedMemory segment created but this module never "
                    "calls .unlink(): close() only unmaps, the segment "
                    "would outlive the process in /dev/shm",
                )

    @staticmethod
    def _module_unlinks(ctx: ModuleContext) -> bool:
        return any(
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "unlink"
            for node in ast.walk(ctx.tree)
        )


def _mutated_field(node: ast.AST) -> str | None:
    """The ``self`` field a statement mutates, else None."""
    targets: Iterable[ast.expr]
    if isinstance(node, ast.Assign):
        targets = node.targets
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        targets = [node.target]
    elif isinstance(node, ast.Delete):
        targets = node.targets
    else:
        return None
    for target in targets:
        expression = target
        while isinstance(expression, ast.Subscript):
            expression = expression.value
        if (
            isinstance(expression, ast.Attribute)
            and isinstance(expression.value, ast.Name)
            and expression.value.id == "self"
        ):
            return expression.attr
    return None


class PartialMutationRule(Rule):
    """PGL802: multi-field mutation torn by an exception in between."""

    rule_id = "PGL802"
    name = "partial-state-mutation"
    description = (
        "session/state method mutates two fields with a raise-capable "
        "operation between them and no handler/finally to compensate"
    )
    default_scope = ("src/repro/",)

    #: class-name substrings that mark stateful protocol objects.
    patrolled_classes = ("Session", "State")
    #: methods whose partial effects are unobservable (fresh object) or
    #: that exist to rewrite state wholesale.
    exempt_methods = frozenset({"__init__", "__setstate__"})

    def check_project(self, project: Project) -> Iterable[Diagnostic]:
        graph = project_callgraph(project)
        for info in graph.functions.values():
            if not self.applies(info.module.display):
                continue
            class_name = info.class_name
            if class_name is None or not any(
                marker in class_name for marker in self.patrolled_classes
            ):
                continue
            if info.name in self.exempt_methods:
                continue
            diagnostic = self._check_method(graph, info)
            if diagnostic is not None:
                yield diagnostic

    def _check_method(
        self, graph, info: FunctionInfo
    ) -> Diagnostic | None:
        protected = _protected_zone(info.node)
        mutated: list[str] = []
        risk: ast.AST | None = None
        risk_label = ""
        for node in _statements_in_order(info.node):
            field = _mutated_field(node)
            if field is not None:
                if risk is not None and any(
                    other != field for other in mutated
                ):
                    fields = sorted({*mutated, field})
                    return info.module.diagnostic(
                        node,
                        self.rule_id,
                        f"{info.qualname} mutates self.{field} after "
                        f"{risk_label} (line {risk.lineno}) already "
                        "followed earlier mutations of "
                        + ", ".join(f"self.{name}" for name in fields if name != field)
                        + "; an exception in between leaves the object "
                        "torn -- reorder the writes, or compensate in a "
                        "handler/finally",
                    )
                mutated.append(field)
                continue
            if id(node) in protected or not mutated:
                continue
            if isinstance(node, ast.Raise):
                risk = node
                risk_label = "a raise"
            elif isinstance(node, ast.Call):
                if any(
                    graph.raises_within(callee)
                    for callee in graph.resolve(node, info)
                ):
                    risk = node
                    risk_label = (
                        f"the raise-capable call {call_name(node)}()"
                    )
        return None


def _protected_zone(function: ast.AST) -> set[int]:
    """ids of nodes inside a ``try`` that has handlers or a finally."""
    zone: set[int] = set()
    for node in walk_local(function):
        if isinstance(node, (ast.Try, getattr(ast, "TryStar", ast.Try))):
            if not node.handlers and not node.finalbody:
                continue
            for child in ast.walk(node):
                zone.add(id(child))
    return zone


def _statements_in_order(function: ast.AST) -> Iterable[ast.AST]:
    """Local nodes in source order, skipping nested scopes."""
    stack: list[ast.AST] = list(
        reversed(list(ast.iter_child_nodes(function)))
    )
    while stack:
        node = stack.pop()
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        yield node
        stack.extend(reversed(list(ast.iter_child_nodes(node))))

"""API hygiene rules (PGL5xx).

``PGL501`` -- mutable default arguments (``def f(x=[])``): the default
is evaluated once and shared across calls, which in accumulator-heavy
code turns into cross-instance state bleed.  ``frozenset()``/``tuple()``
defaults are immutable and fine.

``PGL502`` -- accumulator protocol drift.  The merge lattice and the
columnar ≡ element-wise oracle tests rely on a uniform protocol:
``merge_from(self, other)`` and ``copy(self)`` with exactly those
parameters, and every ``observe_column``-style bulk method shipping
alongside an element-wise ``observe`` oracle on the same class.  A
signature that drifts breaks callers that treat accumulators uniformly
(``TypeSummaries.merge_from`` fans out to its members positionally).
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.analysis.astutil import describe
from repro.analysis.framework import Diagnostic, ModuleContext, Rule

#: Default expressions that are mutable containers.
_MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray", "defaultdict"})


def _mutable_default(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in _MUTABLE_CALLS
    return False


class MutableDefaultRule(Rule):
    """PGL501: mutable default argument."""

    rule_id = "PGL501"
    name = "mutable-default"
    description = "mutable default argument shared across calls"

    def check_module(self, ctx: ModuleContext) -> Iterable[Diagnostic]:
        for qualname, function in ctx.functions():
            if not isinstance(
                function, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            defaults = [
                *function.args.defaults,
                *(
                    default
                    for default in function.args.kw_defaults
                    if default is not None
                ),
            ]
            for default in defaults:
                if _mutable_default(default):
                    yield ctx.diagnostic(
                        default,
                        self.rule_id,
                        f"mutable default {describe(default)} in {qualname}; "
                        "default to None and create the container inside",
                    )


#: Canonical accumulator protocol: method name -> required parameters
#: after ``self`` (no varargs, no defaults).
_PROTOCOL = {
    "merge_from": ("other",),
    "copy": (),
}

#: Class-name suffixes that opt a class into the observe-pairing check.
_ACCUMULATOR_SUFFIXES = ("Accumulator", "Tracker", "Summaries")


class AccumulatorSignatureRule(Rule):
    """PGL502: accumulator merge_from/copy/observe protocol drift."""

    rule_id = "PGL502"
    name = "accumulator-signature"
    description = (
        "merge_from/copy signature drift, or observe_column without an "
        "element-wise observe oracle on an accumulator class"
    )
    default_scope = ("src/repro/",)

    def check_module(self, ctx: ModuleContext) -> Iterable[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(ctx, node)

    def _check_class(self, ctx, class_def):
        methods = {
            statement.name: statement
            for statement in class_def.body
            if isinstance(statement, ast.FunctionDef)
        }
        # The merge_from/copy protocol only binds classes that are part of
        # the merge lattice; defining merge_from is what opts a class in
        # (SchemaGraph.copy(name) is a graph container API, not drift).
        if "merge_from" not in methods:
            return
        for name, expected in _PROTOCOL.items():
            method = methods.get(name)
            if method is None:
                continue
            problem = self._signature_problem(method, expected)
            if problem is not None:
                yield ctx.diagnostic(
                    method,
                    self.rule_id,
                    f"{class_def.name}.{name} {problem}; the accumulator "
                    f"protocol is {name}(self"
                    + ("".join(f", {p}" for p in expected))
                    + ")",
                )
        if class_def.name.endswith(_ACCUMULATOR_SUFFIXES):
            has_bulk = any(
                name.startswith("observe_") and "column" in name
                for name in methods
            )
            if has_bulk and "observe" not in methods:
                yield ctx.diagnostic(
                    class_def,
                    self.rule_id,
                    f"{class_def.name} has a columnar observe_* method but "
                    "no element-wise observe oracle; the columnar path must "
                    "stay cross-checkable",
                )

    @staticmethod
    def _signature_problem(
        method: ast.FunctionDef, expected: tuple[str, ...]
    ) -> str | None:
        args = method.args
        if args.vararg is not None or args.kwarg is not None:
            return "takes *args/**kwargs"
        names = [arg.arg for arg in args.posonlyargs + args.args]
        if names[:1] != ["self"]:
            return "is not an instance method"
        if tuple(names[1:]) != expected or args.kwonlyargs:
            return f"has parameters {tuple(names[1:])!r}"
        if args.defaults:
            return "has default values"
        return None

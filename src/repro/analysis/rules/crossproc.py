"""Cross-process safety rule (PGL4xx).

Shard workers run in a ``ProcessPoolExecutor``; everything submitted to
one crosses a pickle boundary.  Lambdas, nested functions (closures),
and bound methods either fail to pickle outright or drag their whole
receiver across the boundary -- the sharding design requires plain
module-level worker functions plus explicit picklable payloads.

``PGL401`` flags, at any ``<pool>.submit(fn, ...)`` / ``<pool>.map(fn,
...)`` call site or ``ProcessPoolExecutor(initializer=...)`` argument:
lambdas, names bound to nested functions in the enclosing scope, and
``self.method`` / ``obj.method`` bound-method references.  Receiver
detection is name-based (``pool`` / ``executor`` in the receiver name,
or a direct ``ProcessPoolExecutor(...)`` expression), so thread pools
named e.g. ``thread_runner`` are not patrolled -- picklability is a
process-pool problem.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.analysis.astutil import call_name, describe, walk_local
from repro.analysis.framework import Diagnostic, ModuleContext, Rule

_POOL_NAME_HINTS = ("pool", "executor")

#: Module-ish receivers whose attributes are plain functions, not bound
#: methods (``np.frexp`` is fine; ``self.worker`` is not).
_MODULEISH = frozenset({"np", "numpy", "math", "operator", "functools", "os"})


def _is_pool_receiver(expression: ast.expr) -> bool:
    if isinstance(expression, ast.Call):
        return call_name(expression) == "ProcessPoolExecutor"
    name = None
    if isinstance(expression, ast.Name):
        name = expression.id
    elif isinstance(expression, ast.Attribute):
        name = expression.attr
    if name is None:
        return False
    lowered = name.lower()
    return any(hint in lowered for hint in _POOL_NAME_HINTS)


class ProcessPoolSubmissionRule(Rule):
    """PGL401: unpicklable callable handed to a process pool."""

    rule_id = "PGL401"
    name = "process-pool-submission"
    description = (
        "lambda/closure/bound method submitted to a ProcessPoolExecutor; "
        "shard workers must be module-level functions"
    )
    default_scope = ("src/repro/",)

    def check_module(self, ctx: ModuleContext) -> Iterable[Diagnostic]:
        for qualname, function in ctx.functions():
            nested = {
                statement.name
                for statement in ast.walk(function)
                if isinstance(
                    statement, (ast.FunctionDef, ast.AsyncFunctionDef)
                )
                and statement is not function
            }
            for node in walk_local(function):
                if not isinstance(node, ast.Call):
                    continue
                yield from self._check_call(ctx, qualname, node, nested)

    def _check_call(self, ctx, qualname, node, nested):
        callables: list[ast.expr] = []
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in {"submit", "map"}
            and _is_pool_receiver(node.func.value)
            and node.args
        ):
            callables.append(node.args[0])
        if call_name(node) == "ProcessPoolExecutor":
            callables.extend(
                keyword.value
                for keyword in node.keywords
                if keyword.arg == "initializer"
            )
        for target in callables:
            problem = self._unpicklable(target, nested)
            if problem is not None:
                yield ctx.diagnostic(
                    node,
                    self.rule_id,
                    f"{problem} {describe(target)} submitted to a process "
                    f"pool in {qualname}; use a module-level function with "
                    "picklable arguments",
                )

    @staticmethod
    def _unpicklable(target: ast.expr, nested: set[str]) -> str | None:
        if isinstance(target, ast.Lambda):
            return "lambda"
        if isinstance(target, ast.Name) and target.id in nested:
            return "nested function (closure)"
        if isinstance(target, ast.Attribute):
            base = target.value
            if isinstance(base, ast.Name) and base.id in _MODULEISH:
                return None
            return "bound method"
        return None

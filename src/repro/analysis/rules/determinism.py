"""Determinism rules (PGL1xx).

``PGL101`` -- ordered consumption of hash-ordered sets.  Python sets
iterate in ``PYTHONHASHSEED``-dependent order, so feeding one into an
ordered sink (``list``/``tuple`` casts, ``str.join``, list/generator
comprehensions, append-loops) makes output depend on the interpreter
run.  The sanctioned consumers are ``sorted(...)`` and the genuinely
order-insensitive reducers (``set``/``frozenset``/``sum``/``min``/
``max``/``len``/``any``/``all``).

``PGL102`` -- nondeterministic *sources* in discovery code: wall-clock
reads (``time.*``), unseeded ``random``/``np.random``, and environment
lookups.  Bench harness code is excluded by scope; the few legitimate
wall-clock diagnostics in ``util.Timer`` and friends carry justified
suppressions.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.analysis.astutil import (
    ORDER_INSENSITIVE_CALLS,
    call_name,
    describe,
    dotted_name,
    is_setish,
    local_set_names,
    walk_local,
)
from repro.analysis.framework import Diagnostic, ModuleContext, Rule

#: Casts that freeze a hash-ordered iteration into an ordered container.
_ORDERED_CASTS = frozenset({"list", "tuple"})

#: Loop-body calls that accumulate into an ordered container.
_ORDERED_MUTATORS = frozenset({"append", "extend", "insert"})

#: ``random`` module functions that consume the global, unseeded stream.
_UNSEEDED_RANDOM = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "gauss",
        "getrandbits",
        "rand",
        "randn",
        "permutation",
    }
)


def _parent_map(function: ast.AST) -> dict[ast.AST, ast.AST]:
    parents: dict[ast.AST, ast.AST] = {}
    for node in walk_local(function):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def _sanctioned(node: ast.expr, parents: dict[ast.AST, ast.AST]) -> bool:
    """True when ``node`` is directly an argument of an order-insensitive
    call (``sorted(list(s))`` is fine -- sorted fixes the order)."""
    parent = parents.get(node)
    if isinstance(parent, ast.Call) and node in parent.args:
        name = call_name(parent)
        return name in ORDER_INSENSITIVE_CALLS
    return False


class OrderedSetConsumptionRule(Rule):
    """PGL101: hash-ordered set iterated into an ordered sink."""

    rule_id = "PGL101"
    name = "ordered-set-consumption"
    description = (
        "set/frozenset iteration feeding an ordered sink (list/tuple cast, "
        "join, comprehension, append loop) without sorted(...)"
    )
    default_scope = (
        "src/repro/core/",
        "src/repro/schema/",
        "src/repro/lsh/",
        "src/repro/graph/",
    )

    def check_module(self, ctx: ModuleContext) -> Iterable[Diagnostic]:
        for _qualname, function in ctx.functions():
            locals_ = local_set_names(function)
            parents = _parent_map(function)
            for node in walk_local(function):
                yield from self._check_node(ctx, node, locals_, parents)

    def _check_node(self, ctx, node, locals_, parents):
        if isinstance(node, ast.Call):
            name = call_name(node)
            if (
                name in _ORDERED_CASTS
                and isinstance(node.func, ast.Name)
                and len(node.args) == 1
                and is_setish(node.args[0], locals_)
                and not _sanctioned(node, parents)
            ):
                yield ctx.diagnostic(
                    node,
                    self.rule_id,
                    f"{name}({describe(node.args[0])}) freezes hash-ordered "
                    "set iteration; use sorted(...) or keep it a set",
                )
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "join"
                and len(node.args) == 1
                and is_setish(node.args[0], locals_)
            ):
                yield ctx.diagnostic(
                    node,
                    self.rule_id,
                    f"join over hash-ordered set {describe(node.args[0])}; "
                    "join over sorted(...) instead",
                )
        elif isinstance(node, (ast.ListComp, ast.GeneratorExp)):
            if node.generators and is_setish(
                node.generators[0].iter, locals_
            ) and not _sanctioned(node, parents):
                kind = (
                    "list comprehension"
                    if isinstance(node, ast.ListComp)
                    else "generator"
                )
                yield ctx.diagnostic(
                    node,
                    self.rule_id,
                    f"{kind} over hash-ordered set "
                    f"{describe(node.generators[0].iter)} feeds an ordered "
                    "consumer; iterate sorted(...) instead",
                )
        elif isinstance(node, ast.For):
            iterable = node.iter
            if isinstance(iterable, ast.Call) and call_name(iterable) in {
                "enumerate",
                "zip",
            }:
                setish_args = [
                    arg for arg in iterable.args if is_setish(arg, locals_)
                ]
                if not setish_args:
                    return
                target = setish_args[0]
            elif is_setish(iterable, locals_):
                target = iterable
            else:
                return
            if self._body_orders(node):
                yield ctx.diagnostic(
                    node,
                    self.rule_id,
                    f"loop over hash-ordered set {describe(target)} "
                    "accumulates into an ordered container; iterate "
                    "sorted(...) instead",
                )

    @staticmethod
    def _body_orders(loop: ast.For) -> bool:
        """A loop is order-sensitive when it appends/yields in body order."""
        for statement in loop.body:
            for node in ast.walk(statement):
                if isinstance(node, ast.Call):
                    name = call_name(node)
                    if name in _ORDERED_MUTATORS:
                        return True
                elif isinstance(node, (ast.Yield, ast.YieldFrom)):
                    return True
        return False


class NondeterministicSourceRule(Rule):
    """PGL102: clock / unseeded RNG / environment reads in discovery code."""

    rule_id = "PGL102"
    name = "nondeterministic-source"
    description = (
        "time.*, unseeded random/np.random, or os.environ in non-bench "
        "discovery code"
    )
    default_scope = ("src/repro/",)
    default_exclude = ("src/repro/bench/", "src/repro/analysis/")

    def check_module(self, ctx: ModuleContext) -> Iterable[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "time":
                yield ctx.diagnostic(
                    node,
                    self.rule_id,
                    "importing from time in discovery code; wall-clock reads "
                    "make runs irreproducible",
                )
            elif isinstance(node, ast.Call):
                yield from self._check_call(ctx, node)
            elif isinstance(node, ast.Attribute):
                if dotted_name(node) == "os.environ":
                    yield ctx.diagnostic(
                        node,
                        self.rule_id,
                        "os.environ read in discovery code; behaviour must "
                        "not depend on the environment",
                    )

    def _check_call(self, ctx, node):
        dotted = dotted_name(node.func)
        if dotted is None:
            return
        if dotted.startswith("time."):
            yield ctx.diagnostic(
                node,
                self.rule_id,
                f"{dotted}() in discovery code; wall-clock reads make runs "
                "irreproducible",
            )
        elif dotted in {"os.getenv", "os.environ.get"}:
            yield ctx.diagnostic(
                node,
                self.rule_id,
                f"{dotted}() in discovery code; behaviour must not depend "
                "on the environment",
            )
        elif dotted.startswith(("random.", "np.random.", "numpy.random.")):
            tail = dotted.rsplit(".", 1)[1]
            if tail in {"default_rng", "RandomState", "Random"}:
                if not node.args and not node.keywords:
                    yield ctx.diagnostic(
                        node,
                        self.rule_id,
                        f"{dotted}() without an explicit seed; pass a seed "
                        "for reproducible randomness",
                    )
            elif tail in _UNSEEDED_RANDOM:
                yield ctx.diagnostic(
                    node,
                    self.rule_id,
                    f"{dotted}() consumes the global unseeded RNG stream; "
                    "use a seeded Generator instead",
                )

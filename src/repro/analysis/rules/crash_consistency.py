"""Crash-consistency protocol rules (PGL7xx).

PR 7's durability guarantees are *orderings*, not local facts: a durable
session may mutate state only after the change-set is in the WAL, bytes
become durable only through the atomic artifact helpers, and a rename
publishes data only when fsyncs bracket it.  Crash tests probe these
protocols at record boundaries; these rules prove them over the call
graph for every code path, including ones no test exercises yet.

``PGL701`` -- WAL-before-apply: in ``apply``/``add_batch`` of
``DurableSchemaSession``/``DurableShardedSchemaSession`` (or any
subclass), a session-state mutation or ``super().apply``/``add_batch``
call must not be reachable before the ``WriteAheadLog.append`` call in
linearized execution order (the ``_logged_apply`` lambda protocol is
understood: the wrapped apply runs where the helper invokes it).  Events
guarded by a ``_replaying`` test are exempt -- replay re-applies records
already in the log.

``PGL702`` -- the interprocedural generalisation of ``PGL601``: a
function that pickles and, through resolved calls (bounded depth, never
descending into ``atomic_write_bytes``/``write_artifact`` or
``core/durability.py``), reaches a raw write site -- or a raw write site
whose callees pickle -- tears on crash exactly like the single-function
case.  Same-function pairs stay ``PGL601``'s; this rule fires only on
cross-function paths.

``PGL703`` -- rename discipline: every ``os.rename``/``os.replace``/
``Path.rename`` must be preceded by a file ``os.fsync`` in linearized
order, and the function must fsync the target's directory (a rename
without both is not crash-durable: the data or the directory entry can
be lost).
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.analysis.astutil import dotted_name, walk_local
from repro.analysis.callgraph import (
    CallGraph,
    Event,
    FunctionInfo,
    first_unpreceded,
    project_callgraph,
)
from repro.analysis.framework import Diagnostic, Project, Rule
from repro.analysis.rules.durable_io import _PICKLE_CALLS, _write_site

#: class names whose change-feed methods must log before mutating.
DURABLE_SESSION_CLASSES = frozenset(
    {"DurableSchemaSession", "DurableShardedSchemaSession"}
)

#: methods forming the durable change feed.
_FEED_METHODS = frozenset({"apply", "add_batch"})

#: attribute names that denote the session's write-ahead log.
_WAL_ATTRS = frozenset({"_wal", "wal"})

#: guard-test substrings marking the sanctioned WAL-replay re-entry path.
_REPLAY_MARKERS = ("_replaying", "replaying")

#: blessed durable-write helpers: call paths through these are atomic.
_BLESSED_FUNCTIONS = frozenset({"atomic_write_bytes", "write_artifact"})
_BLESSED_MODULE_TAIL = "core/durability.py"


def _is_super_call(expression: ast.expr) -> bool:
    return (
        isinstance(expression, ast.Call)
        and isinstance(expression.func, ast.Name)
        and expression.func.id == "super"
    )


def _self_rooted(expression: ast.expr) -> bool:
    """Whether an assignment target reaches into ``self``."""
    while isinstance(expression, (ast.Attribute, ast.Subscript)):
        expression = expression.value
    return isinstance(expression, ast.Name) and expression.id == "self"


def _wal_append_call(node: ast.Call) -> bool:
    func = node.func
    if not (isinstance(func, ast.Attribute) and func.attr == "append"):
        return False
    receiver = func.value
    if isinstance(receiver, ast.Attribute):
        return receiver.attr in _WAL_ATTRS
    return isinstance(receiver, ast.Name) and receiver.id in _WAL_ATTRS


def _classify_wal_protocol(node: ast.AST, owner: FunctionInfo) -> str | None:
    """Event classifier for PGL701: ``append`` vs ``mutation``."""
    if isinstance(node, ast.Call):
        if _wal_append_call(node):
            return "append"
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _FEED_METHODS
            and _is_super_call(func.value)
        ):
            return "mutation"
        return None
    if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
        targets = (
            node.targets if isinstance(node, ast.Assign) else [node.target]
        )
        if any(_self_rooted(target) for target in targets):
            return "mutation"
    if isinstance(node, ast.Delete) and any(
        _self_rooted(target) for target in node.targets
    ):
        return "mutation"
    return None


def _replay_guarded(event: Event) -> bool:
    return any(
        marker in guard
        for guard in event.guards
        for marker in _REPLAY_MARKERS
    )


class WalBeforeApplyRule(Rule):
    """PGL701: durable sessions must log before they mutate."""

    rule_id = "PGL701"
    name = "wal-before-apply"
    description = (
        "state mutation or super().apply reachable before the "
        "WriteAheadLog.append in a durable session's change-feed method"
    )
    default_scope = ("src/repro/",)

    def check_project(self, project: Project) -> Iterable[Diagnostic]:
        graph = project_callgraph(project)
        for info in list(graph.functions.values()):
            if not self.applies(info.module.display):
                continue
            if info.name not in _FEED_METHODS or info.class_name is None:
                continue
            if not graph.is_subclass_of(
                info.class_name, DURABLE_SESSION_CLASSES
            ):
                continue
            events = graph.linearize(info, _classify_wal_protocol)
            violation = first_unpreceded(
                events, "mutation", "append", exempt=_replay_guarded
            )
            if violation is None:
                continue
            anchor = (
                violation.node
                if violation.function.module is info.module
                else info.node
            )
            chain = " -> ".join(violation.stack)
            yield info.module.diagnostic(
                anchor,
                self.rule_id,
                f"{info.qualname} reaches a state mutation (via {chain}) "
                "before the WriteAheadLog.append; durable sessions must "
                "log the change-set first so a crash never loses "
                "acknowledged state",
            )


class InterprocDurableWriteRule(Rule):
    """PGL702: pickled bytes reach disk around the atomic helpers."""

    rule_id = "PGL702"
    name = "interproc-durable-write"
    description = (
        "pickle and a raw write site connected by a resolved call path "
        "that does not flow through atomic_write_bytes/write_artifact"
    )
    default_scope = ("src/repro/",)
    default_exclude = (_BLESSED_MODULE_TAIL,)

    #: resolved-call path length bound.
    depth = 3

    def check_project(self, project: Project) -> Iterable[Diagnostic]:
        graph = project_callgraph(project)
        pickles: set[tuple[str, str]] = set()
        writes: set[tuple[str, str]] = set()
        for info in graph.functions.values():
            for node in walk_local(info.node):
                if not isinstance(node, ast.Call):
                    continue
                if dotted_name(node.func) in _PICKLE_CALLS:
                    pickles.add(info.key)
                if _write_site(node) is not None:
                    writes.add(info.key)
        for info in graph.functions.values():
            if not self.applies(info.module.display):
                continue
            if info.key in pickles:
                yield from self._paths_from(
                    graph, info, writes, kind="write"
                )
            if info.key in writes:
                yield from self._paths_from(
                    graph, info, pickles, kind="pickle"
                )

    def _paths_from(
        self,
        graph: CallGraph,
        origin: FunctionInfo,
        targets: set[tuple[str, str]],
        *,
        kind: str,
    ) -> Iterable[Diagnostic]:
        """DFS resolved call chains from ``origin`` into ``targets``.

        Blessed helpers terminate a path (bytes flowing through them are
        atomic), and the origin itself is never a target -- PGL601 owns
        the single-function case.
        """
        reported: set[tuple[str, str]] = set()
        stack: list[tuple[FunctionInfo, ast.Call, tuple[str, ...], int]] = []
        for node in walk_local(origin.node):
            if isinstance(node, ast.Call):
                for callee in graph.resolve(node, origin):
                    stack.append((callee, node, (origin.qualname,), self.depth))
        while stack:
            current, first_call, chain, budget = stack.pop()
            if self._blessed(current) or current.key == origin.key:
                continue
            if current.key in targets and current.key not in reported:
                reported.add(current.key)
                path = " -> ".join((*chain, current.qualname))
                what = (
                    "a raw byte write"
                    if kind == "write"
                    else "a pickle of durable state"
                )
                yield origin.module.diagnostic(
                    first_call,
                    self.rule_id,
                    f"{origin.qualname} reaches {what} through the call "
                    f"path {path} without flowing through "
                    "repro.core.durability.atomic_write_bytes/"
                    "write_artifact; a crash mid-write tears the artifact",
                )
            if budget <= 1:
                continue
            next_chain = (*chain, current.qualname)
            if len(next_chain) > self.depth + 1:
                continue
            for callee in graph.callees(current):
                if callee.qualname not in next_chain:
                    stack.append((callee, first_call, next_chain, budget - 1))

    @staticmethod
    def _blessed(info: FunctionInfo) -> bool:
        return (
            info.name in _BLESSED_FUNCTIONS
            or info.module.display.endswith(_BLESSED_MODULE_TAIL)
        )


_RENAME_DOTTED = frozenset({"os.rename", "os.replace"})


def _classify_rename_protocol(node: ast.AST, owner: FunctionInfo) -> str | None:
    if not isinstance(node, ast.Call):
        return None
    dotted = dotted_name(node.func)
    if dotted in _RENAME_DOTTED:
        return "rename"
    if (
        isinstance(node.func, ast.Attribute)
        and node.func.attr == "rename"
        and dotted != "os.rename"
    ):
        return "rename"
    if dotted == "os.fsync":
        return "fsync"
    name = (
        node.func.attr
        if isinstance(node.func, ast.Attribute)
        else node.func.id
        if isinstance(node.func, ast.Name)
        else ""
    )
    if "fsync" in name and "dir" in name:
        return "dirsync"
    return None


class RenameFsyncRule(Rule):
    """PGL703: renames must be fsync-bracketed."""

    rule_id = "PGL703"
    name = "rename-fsync-bracketing"
    description = (
        "os.rename/os.replace/Path.rename without a preceding file fsync "
        "or without a directory fsync in the same protocol"
    )
    default_scope = ("src/repro/",)

    def check_project(self, project: Project) -> Iterable[Diagnostic]:
        graph = project_callgraph(project)
        for info in graph.functions.values():
            if not self.applies(info.module.display):
                continue
            local_renames = [
                node
                for node in walk_local(info.node)
                if isinstance(node, ast.Call)
                and _classify_rename_protocol(node, info) == "rename"
            ]
            if not local_renames:
                continue
            events = graph.linearize(info, _classify_rename_protocol)
            violation = first_unpreceded(events, "rename", "fsync")
            if violation is not None and violation.function.key == info.key:
                yield info.module.diagnostic(
                    violation.node,
                    self.rule_id,
                    f"rename in {info.qualname} without a preceding file "
                    "fsync; after a crash the renamed file may hold "
                    "unflushed garbage",
                )
            if not any(event.kind == "dirsync" for event in events):
                yield info.module.diagnostic(
                    local_renames[0],
                    self.rule_id,
                    f"rename in {info.qualname} without a directory fsync "
                    "anywhere in the protocol; after a crash the directory "
                    "entry itself may be lost",
                )

"""Durable-artifact IO rule (PGL6xx).

Checkpoints, WAL segments, and shard manifests survive process crashes
only because every byte reaches disk through the blessed helpers in
``repro.core.durability`` (``atomic_write_bytes`` / ``write_artifact``):
temp file, fsync, atomic rename, digest header.  A bare
``open(path, "wb")`` + ``pickle.dump`` tears on crash, carries no
integrity check, and silently reintroduces the exact corruption class
the recovery path guards against.

``PGL601`` flags, inside any single function that also pickles
(``pickle.dump`` / ``pickle.dumps``), each write-mode ``open(...)`` /
``path.open("wb")`` / ``path.write_bytes(...)`` call.  Read-only opens
and pickling without a same-function write site are ignored -- the
detection is deliberately local and syntactic so every flag points at a
concrete bare write of pickled state.  The durability module itself is
excluded: it is where the sanctioned write path lives.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.analysis.astutil import describe, dotted_name, walk_local
from repro.analysis.framework import Diagnostic, ModuleContext, Rule

#: ``open`` mode characters that make a handle writable.
_WRITE_MODE_MARKERS = ("w", "a", "x", "+")

_PICKLE_CALLS = frozenset({"pickle.dump", "pickle.dumps"})


def _mode_argument(node: ast.Call, position: int) -> ast.expr | None:
    for keyword in node.keywords:
        if keyword.arg == "mode":
            return keyword.value
    if len(node.args) > position:
        return node.args[position]
    return None


def _is_write_mode(mode: ast.expr | None) -> bool:
    if mode is None:
        return False
    if not isinstance(mode, ast.Constant) or not isinstance(mode.value, str):
        # Dynamic modes are rare and opaque; treat them as writable so
        # the durable path cannot be smuggled past the rule.
        return True
    return any(marker in mode.value for marker in _WRITE_MODE_MARKERS)


def _write_site(node: ast.Call) -> str | None:
    """Describe ``node`` when it opens something for writing, else None."""
    func = node.func
    if isinstance(func, ast.Name) and func.id == "open":
        if _is_write_mode(_mode_argument(node, 1)):
            return "open() for writing"
        return None
    if isinstance(func, ast.Attribute) and func.attr == "open":
        if _is_write_mode(_mode_argument(node, 0)):
            return f"{describe(func.value)}.open() for writing"
        return None
    if isinstance(func, ast.Attribute) and func.attr == "write_bytes":
        return f"{describe(func.value)}.write_bytes()"
    return None


class DurableArtifactWriteRule(Rule):
    """PGL601: pickled state written without the atomic helper."""

    rule_id = "PGL601"
    name = "durable-artifact-write"
    description = (
        "bare write-mode open/write_bytes in a function that pickles; "
        "durable artifacts must go through repro.core.durability"
    )
    default_scope = ("src/repro/",)
    default_exclude = ("core/durability.py",)

    def check_module(self, ctx: ModuleContext) -> Iterable[Diagnostic]:
        for qualname, function in ctx.functions():
            calls = [
                node
                for node in walk_local(function)
                if isinstance(node, ast.Call)
            ]
            if not any(
                dotted_name(call.func) in _PICKLE_CALLS for call in calls
            ):
                continue
            for call in calls:
                site = _write_site(call)
                if site is not None:
                    yield ctx.diagnostic(
                        call,
                        self.rule_id,
                        f"{site} alongside pickle in {qualname}; write "
                        "durable artifacts via repro.core.durability."
                        "write_artifact/atomic_write_bytes (temp file + "
                        "fsync + atomic rename + digest)",
                    )

"""Hot-path hygiene rules (PGL3xx).

The columnar ingest path exists so that batch ingestion never
materialises per-element ``Node``/``Edge`` objects or walks value
columns row-by-row in Python -- that is the whole performance claim of
the columnar core.  These rules patrol the functions that form that
call graph, identified by name: ``_ingest_columnar``, ``record_into``,
and anything matching ``*_columnar`` / ``columnar_*``.

``PGL301`` -- per-element materialisation inside a hot function:
``Node(...)``/``Edge(...)`` construction or calls to the element-wise
converters ``to_elements()`` / ``to_property_graph()`` /
``from_elements()``.

``PGL302`` -- per-row Python loops over value columns: a ``for`` loop or
comprehension whose iterable reaches into ``<block>.columns[...]``
(the sanctioned access is vectorised ``ValueColumn.take(rows)`` feeding
``observe_column``-family accumulators).
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.analysis.astutil import call_name, describe, walk_local
from repro.analysis.framework import Diagnostic, ModuleContext, Rule

#: Function (qual)names forming the columnar ingest call graph.
_HOT_EXACT = frozenset({"_ingest_columnar", "record_into"})

#: Constructors/converters that materialise per-element objects.
_ELEMENT_CONSTRUCTORS = frozenset({"Node", "Edge"})
_ELEMENT_CONVERTERS = frozenset(
    {"to_elements", "to_property_graph", "from_elements"}
)


def is_hot_function(qualname: str) -> bool:
    """Whether a function (by dotted qualname) is on the hot path."""
    name = qualname.rsplit(".", 1)[-1]
    return (
        name in _HOT_EXACT
        or name.endswith("_columnar")
        or name.startswith("columnar_")
    )


class ElementMaterialisationRule(Rule):
    """PGL301: Node/Edge materialisation inside the columnar hot path."""

    rule_id = "PGL301"
    name = "hot-path-materialisation"
    description = (
        "Node/Edge construction or to_elements()/to_property_graph() inside "
        "the columnar ingest call graph"
    )
    default_scope = ("src/repro/",)

    def check_module(self, ctx: ModuleContext) -> Iterable[Diagnostic]:
        for qualname, function in ctx.functions():
            if not is_hot_function(qualname):
                continue
            for node in walk_local(function):
                if not isinstance(node, ast.Call):
                    continue
                name = call_name(node)
                if (
                    name in _ELEMENT_CONSTRUCTORS
                    and isinstance(node.func, ast.Name)
                ):
                    yield ctx.diagnostic(
                        node,
                        self.rule_id,
                        f"{name}(...) materialised inside hot function "
                        f"{qualname}; the columnar path must stay "
                        "element-object free",
                    )
                elif (
                    name in _ELEMENT_CONVERTERS
                    and isinstance(node.func, ast.Attribute)
                ):
                    yield ctx.diagnostic(
                        node,
                        self.rule_id,
                        f".{name}() called inside hot function {qualname}; "
                        "element-wise conversion does not belong on the "
                        "columnar path",
                    )


class ColumnLoopRule(Rule):
    """PGL302: per-row Python loop over value columns on the hot path."""

    rule_id = "PGL302"
    name = "hot-path-column-loop"
    description = (
        "for loop / comprehension iterating <block>.columns[...] inside the "
        "columnar ingest call graph (use ValueColumn.take + observe_column)"
    )
    default_scope = ("src/repro/",)

    def check_module(self, ctx: ModuleContext) -> Iterable[Diagnostic]:
        for qualname, function in ctx.functions():
            if not is_hot_function(qualname):
                continue
            for node in walk_local(function):
                iterables: list[ast.expr] = []
                if isinstance(node, ast.For):
                    iterables = [node.iter]
                elif isinstance(
                    node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
                ):
                    iterables = [gen.iter for gen in node.generators]
                for iterable in iterables:
                    column = self._column_subscript(iterable)
                    if column is not None:
                        yield ctx.diagnostic(
                            node,
                            self.rule_id,
                            f"per-row loop over value column "
                            f"{describe(column)} inside hot function "
                            f"{qualname}; use ValueColumn.take(rows) with an "
                            "observe_column accumulator",
                        )

    @staticmethod
    def _column_subscript(expression: ast.expr) -> ast.expr | None:
        """The ``<x>.columns[...]`` subscript inside ``expression``, if any."""
        for node in ast.walk(expression):
            if (
                isinstance(node, ast.Subscript)
                and isinstance(node.value, ast.Attribute)
                and node.value.attr == "columns"
            ):
                return node
        return None

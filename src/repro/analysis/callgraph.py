"""Project-wide call graph and protocol-ordering queries.

The per-function rules of PR 6 can only see one function at a time, but
the invariants added since are *protocols* spanning call chains: "the
WAL append happens before any state mutation", "every durable byte flows
through ``atomic_write_bytes``", "renames are fsync-bracketed".  This
module gives rules the three queries those protocols need:

* **Resolution** -- :meth:`CallGraph.resolve` maps a call site to the
  project functions it may invoke: bare names to module functions (same
  module first, then unambiguous imports/project-wide), ``self.m()`` /
  ``cls.m()`` to methods found by walking the class and its (project
  local, name-matched) bases, ``super().m()`` to base-class methods, and
  ``ClassName.m()`` through the class table.  Resolution is deliberately
  syntactic and *partial*: an unresolvable call simply contributes no
  edges, so every interprocedural finding is witnessed by a concrete
  resolved chain.
* **Reachability** -- :meth:`CallGraph.reachable` is the bounded-depth
  transitive closure of resolved call edges (used e.g. to decide whether
  a callee can raise).
* **Must-precede ordering** -- :meth:`CallGraph.linearize` flattens a
  function into an ordered event list: statements in source order,
  resolved direct callees inlined at their call site (bounded depth,
  cycle-guarded), and -- the one higher-order feature the durable-session
  protocol needs -- a lambda passed as an argument is inlined at the
  point the callee invokes the corresponding *parameter* (so
  ``_logged_apply(self, ..., lambda: super().apply(cs))`` linearizes as
  ``wal.append`` *then* ``super().apply``, exactly the runtime order).
  :func:`first_unpreceded` then answers "is every B-event preceded by an
  A-event" over that order.

Lambda bodies are otherwise skipped (they are deferred work), nested
``def``/``class`` bodies are never descended into (they are separate
scopes yielded separately by :meth:`ModuleContext.functions`), and each
event records the ``if``-tests guarding it so rules can exempt sanctioned
paths (e.g. the ``_replaying`` re-entry guard of durable sessions).
"""

from __future__ import annotations

import ast
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass

from repro.analysis.astutil import dotted_name
from repro.analysis.framework import ModuleContext, Project

#: default bound for reachability / linearization descent.
DEFAULT_DEPTH = 3


@dataclass(frozen=True)
class FunctionInfo:
    """One project function or method, with its defining context."""

    module: ModuleContext
    qualname: str
    node: ast.AST
    #: dotted qualname of the enclosing class, ``None`` for module level.
    class_qualname: str | None = None

    @property
    def name(self) -> str:
        """Bare function name (last qualname segment)."""
        return self.qualname.rsplit(".", 1)[-1]

    @property
    def class_name(self) -> str | None:
        """Bare name of the enclosing class, ``None`` for module level."""
        if self.class_qualname is None:
            return None
        return self.class_qualname.rsplit(".", 1)[-1]

    @property
    def key(self) -> tuple[str, str]:
        """Stable identity: ``(module display path, qualname)``."""
        return (self.module.display, self.qualname)


@dataclass(frozen=True)
class ClassInfo:
    """One project class with the bare names of its declared bases."""

    module: ModuleContext
    qualname: str
    node: ast.ClassDef
    bases: tuple[str, ...]

    @property
    def name(self) -> str:
        """Bare class name (last qualname segment)."""
        return self.qualname.rsplit(".", 1)[-1]


@dataclass(frozen=True)
class Event:
    """One classified occurrence in a linearized execution order.

    ``kind`` is whatever the rule's classifier returned; ``node`` is the
    AST node (in ``function``'s module) the event anchors to; ``stack``
    is the qualname chain from the patrolled root function down to the
    function that lexically contains ``node``; ``guards`` holds the
    source text of every enclosing ``if``/``while`` test along the
    chain, outermost first (rules use it for sanctioned-path exemptions).
    """

    kind: str
    node: ast.AST
    function: FunctionInfo
    stack: tuple[str, ...]
    guards: tuple[str, ...] = ()


#: classifier signature: ``(node, owner) -> kind or None``.  ``owner`` is
#: the function whose *source* contains the node -- for an inlined lambda
#: argument that is the calling function, not the callee.
Classifier = Callable[[ast.AST, "FunctionInfo"], "str | None"]


def _base_name(expression: ast.expr) -> str | None:
    """Bare name of a base-class expression (``a.B`` -> ``B``)."""
    if isinstance(expression, ast.Name):
        return expression.id
    if isinstance(expression, ast.Attribute):
        return expression.attr
    if isinstance(expression, ast.Subscript):
        return _base_name(expression.value)
    return None


def _walk_classes(
    body: Sequence[ast.stmt], prefix: str
) -> Iterable[tuple[str, ast.ClassDef]]:
    for statement in body:
        if isinstance(statement, ast.ClassDef):
            qualname = f"{prefix}{statement.name}"
            yield qualname, statement
            yield from _walk_classes(statement.body, prefix=f"{qualname}.")
        elif isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield from _walk_classes(
                statement.body, prefix=f"{prefix}{statement.name}."
            )


class CallGraph:
    """Resolved call edges over every module of one analyzer run."""

    def __init__(self, project: Project):
        self.project = project
        #: (module display, qualname) -> FunctionInfo
        self.functions: dict[tuple[str, str], FunctionInfo] = {}
        #: bare name -> module-level functions with that name
        self._module_level: dict[str, list[FunctionInfo]] = {}
        #: bare class name -> classes with that name
        self.classes: dict[str, list[ClassInfo]] = {}
        #: (bare class name, method name) -> methods
        self._methods: dict[tuple[str, str], list[FunctionInfo]] = {}
        #: memo for :meth:`raises_within`
        self._raise_memo: dict[tuple[tuple[str, str], int], bool] = {}

        for module in project.modules:
            for qualname, class_node in _walk_classes(module.tree.body, ""):
                info = ClassInfo(
                    module,
                    qualname,
                    class_node,
                    tuple(
                        name
                        for name in map(_base_name, class_node.bases)
                        if name is not None
                    ),
                )
                self.classes.setdefault(info.name, []).append(info)
            for qualname, node in module.functions():
                class_qualname = (
                    qualname.rsplit(".", 1)[0] if "." in qualname else None
                )
                # Functions nested inside functions report a dotted
                # prefix too; only treat the prefix as a class when a
                # class with that qualname exists in this module.
                if class_qualname is not None and not any(
                    info.qualname == class_qualname
                    for info in self.classes.get(
                        class_qualname.rsplit(".", 1)[-1], ()
                    )
                    if info.module is module
                ):
                    class_qualname = None
                info = FunctionInfo(module, qualname, node, class_qualname)
                self.functions[info.key] = info
                if class_qualname is None:
                    if "." not in qualname:
                        self._module_level.setdefault(
                            info.name, []
                        ).append(info)
                else:
                    self._methods.setdefault(
                        (info.class_name, info.name), []
                    ).append(info)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def function(self, module_tail: str, qualname: str) -> FunctionInfo | None:
        """Look up one function by module display tail + qualname."""
        for (display, name), info in self.functions.items():
            if name == qualname and display.endswith(module_tail):
                return info
        return None

    def class_mro_names(self, class_name: str) -> list[str]:
        """``class_name`` plus every transitive project base name."""
        seen: list[str] = []
        stack = [class_name]
        while stack:
            current = stack.pop(0)
            if current in seen:
                continue
            seen.append(current)
            for info in self.classes.get(current, ()):
                stack.extend(info.bases)
        return seen

    def is_subclass_of(self, class_name: str, targets: Iterable[str]) -> bool:
        """Whether ``class_name`` is (or transitively derives from) a target."""
        wanted = set(targets)
        return any(name in wanted for name in self.class_mro_names(class_name))

    def resolve_method(
        self, class_name: str, method: str, *, skip_own: bool = False
    ) -> list[FunctionInfo]:
        """Methods ``method`` found on ``class_name`` or its nearest base.

        Walks the name-matched MRO outward and returns the candidates of
        the *first* level that defines the method (so an override wins
        over the base definition).  ``skip_own`` starts the walk at the
        bases -- the ``super().m()`` resolution.
        """
        levels = self.class_mro_names(class_name)
        if skip_own and levels and levels[0] == class_name:
            levels = levels[1:]
        for level in levels:
            found = self._methods.get((level, method))
            if found:
                return list(found)
        return []

    # ------------------------------------------------------------------
    # Call-site resolution
    # ------------------------------------------------------------------
    def resolve(
        self, call: ast.Call, caller: FunctionInfo
    ) -> list[FunctionInfo]:
        """Project functions a call site may invoke (possibly empty)."""
        func = call.func
        if isinstance(func, ast.Name):
            # Same-module module-level function first; otherwise a
            # project-wide unique name (cross-module helper imports).
            local = [
                info
                for info in self._module_level.get(func.id, ())
                if info.module is caller.module
            ]
            if local:
                return local
            everywhere = self._module_level.get(func.id, [])
            return list(everywhere) if len(everywhere) == 1 else []
        if not isinstance(func, ast.Attribute):
            return []
        receiver = func.value
        if isinstance(receiver, ast.Name):
            if receiver.id in {"self", "cls"} and caller.class_name:
                return self.resolve_method(caller.class_name, func.attr)
            if receiver.id in self.classes:
                return self.resolve_method(receiver.id, func.attr)
            return []
        if (
            isinstance(receiver, ast.Call)
            and isinstance(receiver.func, ast.Name)
            and receiver.func.id == "super"
            and caller.class_name
        ):
            return self.resolve_method(
                caller.class_name, func.attr, skip_own=True
            )
        return []

    # ------------------------------------------------------------------
    # Reachability
    # ------------------------------------------------------------------
    def callees(self, function: FunctionInfo) -> list[FunctionInfo]:
        """Directly resolved callees of one function (local body only)."""
        found: list[FunctionInfo] = []
        seen: set[tuple[str, str]] = set()
        for node in _walk_in_order(function.node):
            if isinstance(node, ast.Call):
                for callee in self.resolve(node, function):
                    if callee.key not in seen:
                        seen.add(callee.key)
                        found.append(callee)
        return found

    def reachable(
        self, function: FunctionInfo, depth: int = DEFAULT_DEPTH
    ) -> list[FunctionInfo]:
        """Functions reachable from ``function`` within ``depth`` edges."""
        seen: dict[tuple[str, str], FunctionInfo] = {}
        frontier = [function]
        for _ in range(depth):
            next_frontier: list[FunctionInfo] = []
            for current in frontier:
                for callee in self.callees(current):
                    if callee.key not in seen and callee.key != function.key:
                        seen[callee.key] = callee
                        next_frontier.append(callee)
            frontier = next_frontier
            if not frontier:
                break
        return list(seen.values())

    def raises_within(
        self, function: FunctionInfo, depth: int = DEFAULT_DEPTH
    ) -> bool:
        """Whether a ``raise`` statement is reachable within ``depth``.

        Only *resolved* project callees are considered, so an unknown
        call never makes a function count as raise-capable -- rules using
        this stay precise rather than flagging every call site.
        """
        memo_key = (function.key, depth)
        cached = self._raise_memo.get(memo_key)
        if cached is not None:
            return cached
        self._raise_memo[memo_key] = False  # cycle guard
        result = any(
            isinstance(node, ast.Raise)
            for node in _walk_in_order(function.node)
        )
        if not result and depth > 0:
            result = any(
                self.raises_within(callee, depth - 1)
                for callee in self.callees(function)
            )
        self._raise_memo[memo_key] = result
        return result

    # ------------------------------------------------------------------
    # Must-precede linearization
    # ------------------------------------------------------------------
    def linearize(
        self,
        function: FunctionInfo,
        classify: Classifier,
        depth: int = DEFAULT_DEPTH,
    ) -> list[Event]:
        """Ordered events of ``function`` with callees inlined.

        Source order approximates execution order: branch bodies are
        visited then/else sequentially, loop bodies once.  At each call
        site the classifier sees the call first, then the resolved
        callee's own events are inlined (bounded by ``depth``,
        cycle-guarded by the active stack).  A lambda passed as an
        argument contributes its events where the callee *invokes the
        matching parameter*, not at the passing site.
        """
        events: list[Event] = []
        self._linearize_into(
            events,
            function,
            classify,
            depth,
            stack=(function.qualname,),
            active={function.key},
            guards=(),
            lambda_args={},
            owner=function,
        )
        return events

    def _linearize_into(
        self,
        events: list[Event],
        function: FunctionInfo,
        classify: Classifier,
        depth: int,
        *,
        stack: tuple[str, ...],
        active: set[tuple[str, str]],
        guards: tuple[str, ...],
        lambda_args: dict[str, tuple[ast.Lambda, FunctionInfo]],
        owner: FunctionInfo,
    ) -> None:
        body = getattr(function.node, "body", [])
        self._linearize_body(
            events, body, function, classify, depth,
            stack=stack, active=active, guards=guards,
            lambda_args=lambda_args, owner=owner,
        )

    def _linearize_body(
        self,
        events: list[Event],
        nodes: Iterable[ast.AST],
        function: FunctionInfo,
        classify: Classifier,
        depth: int,
        *,
        stack: tuple[str, ...],
        active: set[tuple[str, str]],
        guards: tuple[str, ...],
        lambda_args: dict[str, tuple[ast.Lambda, FunctionInfo]],
        owner: FunctionInfo,
    ) -> None:
        for node in nodes:
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            branch_guards = guards
            if isinstance(node, (ast.If, ast.While)):
                try:
                    branch_guards = (*guards, ast.unparse(node.test))
                except Exception:  # pragma: no cover - unparse is total
                    branch_guards = (*guards, "<test>")
            kind = classify(node, owner)
            if kind is not None:
                events.append(Event(kind, node, owner, stack, guards))
            if isinstance(node, ast.Lambda):
                continue  # deferred work: inlined only via parameter calls
            if isinstance(node, ast.Call):
                self._inline_call(
                    events, node, function, classify, depth,
                    stack=stack, active=active, guards=guards,
                    lambda_args=lambda_args, owner=owner,
                )
            self._linearize_body(
                events, ast.iter_child_nodes(node), function, classify, depth,
                stack=stack, active=active, guards=branch_guards,
                lambda_args=lambda_args, owner=owner,
            )

    def _inline_call(
        self,
        events: list[Event],
        call: ast.Call,
        function: FunctionInfo,
        classify: Classifier,
        depth: int,
        *,
        stack: tuple[str, ...],
        active: set[tuple[str, str]],
        guards: tuple[str, ...],
        lambda_args: dict[str, tuple[ast.Lambda, FunctionInfo]],
        owner: FunctionInfo,
    ) -> None:
        # A call to a parameter bound to a lambda at the original call
        # site: inline the lambda body *here* -- this is where it runs.
        if isinstance(call.func, ast.Name) and call.func.id in lambda_args:
            lam, lam_owner = lambda_args[call.func.id]
            self._linearize_body(
                events, [lam.body], function, classify, depth,
                stack=stack, active=active, guards=guards,
                lambda_args={}, owner=lam_owner,
            )
            return
        if depth <= 0:
            return
        for callee in self.resolve(call, function):
            if callee.key in active:
                continue
            bound = self._bind_lambda_args(call, callee, owner)
            self._linearize_into(
                events, callee, classify, depth - 1,
                stack=(*stack, callee.qualname),
                active=active | {callee.key},
                guards=guards,
                lambda_args=bound,
                owner=callee,
            )

    @staticmethod
    def _bind_lambda_args(
        call: ast.Call, callee: FunctionInfo, owner: FunctionInfo
    ) -> dict[str, tuple[ast.Lambda, FunctionInfo]]:
        """Map callee parameter names to lambda arguments of the call."""
        node = callee.node
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return {}
        parameters = [a.arg for a in (*node.args.posonlyargs, *node.args.args)]
        bound: dict[str, tuple[ast.Lambda, FunctionInfo]] = {}
        for position, argument in enumerate(call.args):
            if isinstance(argument, ast.Lambda) and position < len(parameters):
                bound[parameters[position]] = (argument, owner)
        for keyword in call.keywords:
            if keyword.arg is not None and isinstance(
                keyword.value, ast.Lambda
            ):
                bound[keyword.arg] = (keyword.value, owner)
        return bound


def project_callgraph(project: Project) -> CallGraph:
    """One shared :class:`CallGraph` per analyzer run.

    Building the graph walks every module, so the rules of one run share
    a single instance cached on the project object itself.
    """
    graph = getattr(project, "_callgraph", None)
    if graph is None:
        graph = CallGraph(project)
        project._callgraph = graph
    return graph


def _walk_in_order(root: ast.AST) -> Iterable[ast.AST]:
    """Walk ``root`` in source order without entering nested scopes."""
    stack: list[ast.AST] = list(
        reversed(list(ast.iter_child_nodes(root)))
    )
    while stack:
        node = stack.pop()
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        yield node
        stack.extend(reversed(list(ast.iter_child_nodes(node))))


def first_unpreceded(
    events: Sequence[Event],
    protected: str,
    protector: str,
    *,
    exempt: Callable[[Event], bool] | None = None,
) -> Event | None:
    """First ``protected`` event with no earlier ``protector`` event.

    The must-precede query: returns ``None`` when every ``protected``
    event (not ``exempt``) is preceded -- in linearized order -- by at
    least one ``protector`` event, else the violating event.
    """
    for event in events:
        if event.kind == protector:
            return None
        if event.kind == protected:
            if exempt is not None and exempt(event):
                continue
            return event
    return None

"""Shared AST helpers: set-typed expression inference, call naming.

The determinism rules need to decide, without a type checker, whether an
expression is *hash-ordered* (a ``set``/``frozenset``).  The inference
here is deliberately shallow and syntactic -- literals, constructor
calls, set operators, set-returning methods, annotated locals, a short
list of attributes known to be sets in this codebase, and
single-function local propagation -- which keeps it predictable: every
flag points at a concrete set expression, and anything the inference
cannot see simply is not flagged.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

#: Attributes that are ``set``/``frozenset`` valued throughout this
#: codebase (schema types, change-sets, interned content).  Adding a name
#: here extends determinism patrol to every consumer of that attribute.
KNOWN_SET_ATTRIBUTES = frozenset(
    {
        "instance_ids",
        "labels",
        "source_tokens",
        "target_tokens",
        "stub_node_ids",
        "property_keys",
    }
)

#: ``set``-returning methods (receiver must itself look set-ish).
_SET_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference", "copy"}
)

#: Order-insensitive consumers: wrapping a set in one of these is the
#: sanctioned way to consume it (``sorted`` fixes the order; the rest
#: never observe it).
ORDER_INSENSITIVE_CALLS = frozenset(
    {"sorted", "set", "frozenset", "sum", "min", "max", "len", "any", "all"}
)


def walk_local(function: ast.AST) -> Iterable[ast.AST]:
    """Walk a function's own body without descending into nested scopes.

    Rules visit every function via :meth:`ModuleContext.functions`, which
    yields nested defs separately -- descending into them here would
    double-report every finding and mix up per-scope local inference.
    """
    stack: list[ast.AST] = [function]
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            stack.append(child)


def call_name(node: ast.Call) -> str | None:
    """The bare called name: ``foo(...)`` -> ``foo``, ``a.b(...)`` -> ``b``."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def dotted_name(node: ast.expr) -> str | None:
    """``a.b.c`` as a string, or None for non-trivial expressions."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _annotation_is_set(annotation: ast.expr | None) -> bool:
    if annotation is None:
        return False
    target = annotation
    if isinstance(target, ast.Subscript):
        target = target.value
    return isinstance(target, ast.Name) and target.id in {"set", "frozenset"}


def local_set_names(function: ast.AST) -> frozenset[str]:
    """Names that are set-typed on *every* assignment inside ``function``.

    Single-function, flow-insensitive: a name counts only when each of
    its assignments is itself a set-ish expression (or a set-annotated
    declaration) -- one non-set assignment disqualifies it, so renames
    and reuse never produce phantom sets.
    """
    setish: set[str] = set()
    nonset: set[str] = set()

    if isinstance(function, (ast.FunctionDef, ast.AsyncFunctionDef)):
        arguments = function.args
        for argument in (
            *arguments.posonlyargs,
            *arguments.args,
            *arguments.kwonlyargs,
        ):
            if _annotation_is_set(argument.annotation):
                setish.add(argument.arg)

    def classify(name: str, value: ast.expr | None, annotation=None) -> None:
        if _annotation_is_set(annotation) or (
            value is not None and is_setish(value, frozenset(setish))
        ):
            setish.add(name)
        else:
            nonset.add(name)

    for node in walk_local(function):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                classify(target.id, node.value)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            classify(node.target.id, node.value, node.annotation)
    return frozenset(setish - nonset)


def is_setish(node: ast.expr, locals_: frozenset[str] = frozenset()) -> bool:
    """True when ``node`` syntactically denotes a set/frozenset value."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in {"set", "frozenset"}:
            return True
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _SET_METHODS
            and is_setish(func.value, locals_)
        ):
            return True
        return False
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
    ):
        return is_setish(node.left, locals_) or is_setish(node.right, locals_)
    if isinstance(node, ast.Name):
        return node.id in locals_
    if isinstance(node, ast.Attribute):
        return node.attr in KNOWN_SET_ATTRIBUTES
    if isinstance(node, ast.IfExp):
        return is_setish(node.body, locals_) and is_setish(node.orelse, locals_)
    return False


def describe(node: ast.expr) -> str:
    """Short source-ish description of an expression for messages."""
    try:
        text = ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on 3.9+
        return node.__class__.__name__
    return text if len(text) <= 60 else text[:57] + "..."


def iter_parented(tree: ast.AST) -> Iterable[tuple[ast.AST, ast.AST | None]]:
    """Yield ``(node, parent)`` over the whole tree."""
    stack: list[tuple[ast.AST, ast.AST | None]] = [(tree, None)]
    while stack:
        node, parent = stack.pop()
        yield node, parent
        for child in ast.iter_child_nodes(node):
            stack.append((child, node))

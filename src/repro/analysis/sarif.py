"""SARIF 2.1.0 emission for the invariant checker.

SARIF (Static Analysis Results Interchange Format) is what code-hosting
review UIs ingest: CI uploads the report and findings annotate the PR
diff inline.  The emitter maps the checker's model onto the minimal
mandatory subset of the standard -- one ``run`` with the ``repro-lint``
driver, one ``rule`` descriptor per shipped rule id, one ``result`` per
diagnostic -- so the output stays valid against the full 2.1.0 schema
without dragging optional vocabulary in.

Parse errors (PGL999) become ``error``-level results; everything else is
reported at ``warning`` level (the CLI's exit status, not the SARIF
level, is the gate).
"""

from __future__ import annotations

import json
from collections.abc import Sequence

from repro.analysis.framework import (
    META_RULE_IDS,
    Diagnostic,
    Rule,
    RunResult,
)

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: rule ids the framework itself can emit without a Rule instance.
_FRAMEWORK_RULES: dict[str, str] = {
    "PGL001": "suppression without justification",
    "PGL002": "suppression references an unknown rule id",
    "PGL003": "suppression matches no diagnostic",
    "PGL999": "unparseable module",
}


def _rule_descriptors(rules: Sequence[Rule]) -> list[dict]:
    descriptors: list[dict] = []
    seen: set[str] = set()
    for rule in rules:
        for rule_id in rule.emitted_ids():
            if rule_id in seen:
                continue
            seen.add(rule_id)
            descriptors.append(
                {
                    "id": rule_id,
                    "name": rule.name,
                    "shortDescription": {"text": rule.description},
                }
            )
    for rule_id in sorted(_FRAMEWORK_RULES):
        if rule_id not in seen:
            descriptors.append(
                {
                    "id": rule_id,
                    "name": "framework",
                    "shortDescription": {"text": _FRAMEWORK_RULES[rule_id]},
                }
            )
    return descriptors


def _result(diagnostic: Diagnostic, rule_index: dict[str, int]) -> dict:
    level = "error" if diagnostic.rule_id == "PGL999" else "warning"
    entry = {
        "ruleId": diagnostic.rule_id,
        "level": level,
        "message": {"text": diagnostic.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": diagnostic.path},
                    "region": {"startLine": max(1, diagnostic.line)},
                }
            }
        ],
    }
    index = rule_index.get(diagnostic.rule_id)
    if index is not None:
        entry["ruleIndex"] = index
    return entry


def sarif_report(result: RunResult, rules: Sequence[Rule]) -> dict:
    """The full SARIF 2.1.0 document for one analyzer run."""
    descriptors = _rule_descriptors(rules)
    rule_index = {d["id"]: i for i, d in enumerate(descriptors)}
    results = [
        _result(diagnostic, rule_index)
        for diagnostic in (*result.parse_errors, *result.diagnostics)
    ]
    return {
        "version": SARIF_VERSION,
        "$schema": SARIF_SCHEMA_URI,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "rules": descriptors,
                    }
                },
                "results": results,
            }
        ],
    }


def render_sarif(result: RunResult, rules: Sequence[Rule]) -> str:
    """Serialized SARIF with stable key order for diffable CI artifacts."""
    return json.dumps(sarif_report(result, rules), indent=2, sort_keys=True)


__all__ = [
    "SARIF_SCHEMA_URI",
    "SARIF_VERSION",
    "render_sarif",
    "sarif_report",
]

"""CLI for the invariant checker: ``python -m repro.analysis src tests``.

Exit status is 0 only when every scanned file parses and no unsuppressed,
un-baselined diagnostic fires -- the CI ``repro-lint`` job gates on
exactly this.  ``--format sarif`` (or ``--sarif FILE``) emits SARIF
2.1.0 for review-UI annotation, ``--baseline``/``--write-baseline``
support incremental adoption of new rule families, and ``--stats``
prints the suppression inventory (which waivers are live, and why).
"""

from __future__ import annotations

import argparse
import sys
from collections import Counter
from collections.abc import Sequence
from pathlib import Path

from repro.analysis.baseline import (
    BaselineError,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.framework import META_RULE_IDS, RunResult
from repro.analysis.rules import all_rules, default_analyzer
from repro.analysis.sarif import render_sarif


def _list_rules() -> str:
    lines = ["Shipped rules (suppress with # repro-lint: ignore[ID] -- why):"]
    for rule in all_rules():
        ids = "/".join(rule.emitted_ids())
        lines.append(f"  {ids:<16} {rule.name}: {rule.description}")
    lines.append(
        f"  {'/'.join(sorted(META_RULE_IDS)):<16} suppression hygiene "
        "(not suppressible)"
    )
    return "\n".join(lines)


def _stats_report(result: RunResult) -> str:
    """Suppression inventory: what is waived, where, and why."""
    lines = ["Suppression inventory:"]
    per_rule: Counter[str] = Counter()
    for suppression in result.used_suppressions:
        per_rule.update(suppression.rule_ids)
    if not result.used_suppressions:
        lines.append("  (no suppressions in use)")
    for rule_id, count in sorted(per_rule.items()):
        lines.append(f"  {rule_id}: {count} active suppression(s)")
    for suppression in sorted(
        result.used_suppressions, key=lambda s: (s.path, s.comment_line)
    ):
        ids = ",".join(suppression.rule_ids)
        lines.append(
            f"    {suppression.path}:{suppression.comment_line} "
            f"[{ids}] -- {suppression.justification}"
        )
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="AST invariant checker for the discovery core.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests"],
        help="files or directories to check (default: src tests)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every shipped rule and exit",
    )
    parser.add_argument(
        "--format",
        choices=("text", "sarif"),
        default="text",
        help="stdout format: human-readable text or SARIF 2.1.0",
    )
    parser.add_argument(
        "--sarif",
        metavar="FILE",
        type=Path,
        help="additionally write a SARIF 2.1.0 report to FILE",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        type=Path,
        help="suppress diagnostics recorded in this baseline file; "
        "only fresh findings gate",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        type=Path,
        help="freeze the current diagnostics as FILE and exit 0",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print the suppression inventory after the run",
    )
    options = parser.parse_args(argv)

    if options.list_rules:
        print(_list_rules())
        return 0

    analyzer = default_analyzer()
    result = analyzer.run(options.paths)

    if options.write_baseline is not None:
        write_baseline(options.write_baseline, result.diagnostics)
        print(
            f"repro-lint: baseline with {len(result.diagnostics)} "
            f"entr{'y' if len(result.diagnostics) == 1 else 'ies'} "
            f"written to {options.write_baseline}",
            file=sys.stderr,
        )
        return 0

    baseline_note = ""
    if options.baseline is not None:
        try:
            entries = load_baseline(options.baseline)
        except BaselineError as error:
            print(f"repro-lint: {error}", file=sys.stderr)
            return 2
        match = apply_baseline(result.diagnostics, entries)
        result.diagnostics = match.fresh
        baseline_note = f", {match.matched} baselined"
        if match.stale:
            baseline_note += f", {len(match.stale)} stale baseline entr" + (
                "y" if len(match.stale) == 1 else "ies"
            )

    if options.sarif is not None:
        options.sarif.write_text(
            render_sarif(result, analyzer.rules) + "\n", encoding="utf-8"
        )
    if options.format == "sarif":
        print(render_sarif(result, analyzer.rules))
    else:
        for diagnostic in result.parse_errors + result.diagnostics:
            print(diagnostic.render())
    status = "clean" if result.ok else "FAILED"
    print(
        f"repro-lint: {status} -- {result.files_checked} files, "
        f"{len(result.diagnostics)} diagnostic(s), "
        f"{len(result.parse_errors)} parse error(s), "
        f"{result.suppressions_used} suppression(s) used"
        f"{baseline_note}",
        file=sys.stderr,
    )
    if options.stats:
        print(_stats_report(result), file=sys.stderr)
    return 0 if result.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())

"""CLI for the invariant checker: ``python -m repro.analysis src tests``.

Exit status is 0 only when every scanned file parses and no unsuppressed
diagnostic fires -- the CI ``repro-lint`` job gates on exactly this.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.analysis.framework import META_RULE_IDS
from repro.analysis.rules import all_rules, default_analyzer


def _list_rules() -> str:
    lines = ["Shipped rules (suppress with # repro-lint: ignore[ID] -- why):"]
    for rule in all_rules():
        ids = "/".join(rule.emitted_ids())
        lines.append(f"  {ids:<16} {rule.name}: {rule.description}")
    lines.append(
        f"  {'/'.join(sorted(META_RULE_IDS)):<16} suppression hygiene "
        "(not suppressible)"
    )
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="AST invariant checker for the discovery core.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests"],
        help="files or directories to check (default: src tests)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every shipped rule and exit",
    )
    options = parser.parse_args(argv)

    if options.list_rules:
        print(_list_rules())
        return 0

    analyzer = default_analyzer()
    result = analyzer.run(options.paths)
    for diagnostic in result.parse_errors + result.diagnostics:
        print(diagnostic.render())
    status = "clean" if result.ok else "FAILED"
    print(
        f"repro-lint: {status} -- {result.files_checked} files, "
        f"{len(result.diagnostics)} diagnostic(s), "
        f"{len(result.parse_errors)} parse error(s), "
        f"{result.suppressions_used} suppression(s) used",
        file=sys.stderr,
    )
    return 0 if result.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())

"""Property-graph substrate: data model, storage engine, IO, patterns."""

from repro.graph.batching import reassemble, split_into_batches, stream_batches
from repro.graph.changes import (
    ChangeSet,
    HashPartitioner,
    changesets_from_elements,
    stable_shard,
)
from repro.graph.columnar import (
    BatchBuilder,
    ElementBatch,
    Interner,
    columnar_changesets_from_rows,
    global_interner,
)
from repro.graph.csv_io import (
    iter_changesets_csv,
    iter_columnar_changesets_csv,
    read_graph_csv,
    write_graph_csv,
)
from repro.graph.json_io import (
    graph_from_elements,
    iter_changesets_jsonl,
    iter_columnar_changesets_jsonl,
    iter_graph_jsonl,
    read_graph_jsonl,
    write_graph_jsonl,
)
from repro.graph.model import Edge, Node, PropertyGraph, label_token
from repro.graph.patterns import (
    EdgePattern,
    NodePattern,
    edge_patterns,
    node_patterns,
    patterns_by_token,
)
from repro.graph.query import EdgeQuery, NodeQuery, query_edges, query_nodes
from repro.graph.statistics import (
    TABLE2_HEADER,
    GraphStatistics,
    compute_statistics,
    label_coverage,
    property_fill_ratio,
)
from repro.graph.store import GraphStore

__all__ = [
    "BatchBuilder",
    "ChangeSet",
    "Edge",
    "EdgePattern",
    "EdgeQuery",
    "ElementBatch",
    "GraphStatistics",
    "GraphStore",
    "HashPartitioner",
    "Interner",
    "Node",
    "NodePattern",
    "NodeQuery",
    "PropertyGraph",
    "TABLE2_HEADER",
    "changesets_from_elements",
    "columnar_changesets_from_rows",
    "compute_statistics",
    "edge_patterns",
    "global_interner",
    "graph_from_elements",
    "iter_changesets_csv",
    "iter_changesets_jsonl",
    "iter_columnar_changesets_csv",
    "iter_columnar_changesets_jsonl",
    "iter_graph_jsonl",
    "label_coverage",
    "label_token",
    "node_patterns",
    "patterns_by_token",
    "property_fill_ratio",
    "query_edges",
    "query_nodes",
    "read_graph_csv",
    "stable_shard",
    "read_graph_jsonl",
    "reassemble",
    "split_into_batches",
    "stream_batches",
    "write_graph_csv",
    "write_graph_jsonl",
]

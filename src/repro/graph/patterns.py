"""Node and edge patterns (Definitions 3.5 and 3.6 of the paper).

A *node pattern* is a pair ``(L, K)`` of a label set and a property-key set;
an *edge pattern* additionally records the source/target label sets
``R = (L_s, L_t)``.  A schema *type* can be associated with several patterns
(same labels, different property sets), which is exactly what lets PG-HIVE
tolerate noisy or incomplete data.  The "Node Pat." / "Edge Pat." columns of
Table 2 count distinct patterns per dataset.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable
from dataclasses import dataclass

from repro.graph.model import Edge, Node, PropertyGraph, label_token


@dataclass(frozen=True, slots=True)
class NodePattern:
    """``(L, K)``: a label set and a property-key set."""

    labels: frozenset[str]
    property_keys: frozenset[str]

    @classmethod
    def of(cls, node: Node) -> "NodePattern":
        """The pattern instantiated by ``node``."""
        return cls(node.labels, node.property_keys)

    @property
    def token(self) -> str:
        """Canonical token of the pattern's label set."""
        return label_token(self.labels)

    @property
    def is_labeled(self) -> bool:
        """True when the label set is non-empty."""
        return bool(self.labels)

    def __str__(self) -> str:
        labels = "{" + ", ".join(sorted(self.labels)) + "}"
        keys = "{" + ", ".join(sorted(self.property_keys)) + "}"
        return f"({labels}, {keys})"


@dataclass(frozen=True, slots=True)
class EdgePattern:
    """``(L, K, R)``: labels, property keys, and endpoint label sets."""

    labels: frozenset[str]
    property_keys: frozenset[str]
    source_labels: frozenset[str]
    target_labels: frozenset[str]

    @classmethod
    def of(cls, edge: Edge, graph: PropertyGraph) -> "EdgePattern":
        """The pattern instantiated by ``edge`` within ``graph``."""
        source = graph.node(edge.source_id)
        target = graph.node(edge.target_id)
        return cls(edge.labels, edge.property_keys, source.labels, target.labels)

    @property
    def token(self) -> str:
        """Canonical token of the pattern's label set."""
        return label_token(self.labels)

    @property
    def endpoint_tokens(self) -> tuple[str, str]:
        """Canonical (source, target) label tokens."""
        return (label_token(self.source_labels), label_token(self.target_labels))

    @property
    def is_labeled(self) -> bool:
        """True when the edge label set is non-empty."""
        return bool(self.labels)

    def __str__(self) -> str:
        labels = "{" + ", ".join(sorted(self.labels)) + "}"
        keys = "{" + ", ".join(sorted(self.property_keys)) + "}"
        src = "{" + ", ".join(sorted(self.source_labels)) + "}"
        tgt = "{" + ", ".join(sorted(self.target_labels)) + "}"
        return f"({labels}, {keys}, ({src}, {tgt}))"


def node_patterns(graph: PropertyGraph) -> Counter[NodePattern]:
    """Distinct node patterns of ``graph`` with their instance counts."""
    counts: Counter[NodePattern] = Counter()
    for node in graph.nodes():
        counts[NodePattern.of(node)] += 1
    return counts


def edge_patterns(graph: PropertyGraph) -> Counter[EdgePattern]:
    """Distinct edge patterns of ``graph`` with their instance counts."""
    counts: Counter[EdgePattern] = Counter()
    for edge in graph.edges():
        counts[EdgePattern.of(edge, graph)] += 1
    return counts


def patterns_by_token(
    patterns: Iterable[NodePattern] | Iterable[EdgePattern],
) -> dict[str, list]:
    """Group patterns by their canonical label token ("type patterns")."""
    grouped: dict[str, list] = {}
    for pattern in patterns:
        grouped.setdefault(pattern.token, []).append(pattern)
    return grouped

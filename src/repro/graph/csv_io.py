"""CSV import/export in a neo4j-admin-like layout.

Nodes file columns:   ``id``, ``labels`` (``;``-separated), one column per
property key.  Edges file columns: ``id``, ``source``, ``target``,
``labels``, one column per property key.  Empty cells mean "property
absent" (not an empty string), matching how graph databases treat missing
properties; values are serialised with a small type-tag-free convention and
re-inferred on load using the schema layer's parsing primitives.
:func:`iter_changesets_csv` streams the same layout as a change feed
without assembling a full graph in memory.
"""

from __future__ import annotations

import csv
from collections.abc import Iterator
from pathlib import Path

from repro.errors import SerializationError
from repro.graph.changes import ChangeSet, changesets_from_elements
from repro.graph.columnar import (
    Interner,
    columnar_changesets_from_rows,
    global_interner,
)
from repro.graph.model import Edge, Node, PropertyGraph, PropertyValue

_LABEL_SEPARATOR = ";"


def _format_value(value: PropertyValue) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value)


def _parse_value(text: str) -> PropertyValue:
    """Parse a CSV cell back into the most specific scalar."""
    if text == "true":
        return True
    if text == "false":
        return False
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


def write_graph_csv(graph: PropertyGraph, directory: str | Path) -> tuple[Path, Path]:
    """Write ``graph`` to ``<dir>/nodes.csv`` and ``<dir>/edges.csv``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    nodes_path = directory / "nodes.csv"
    edges_path = directory / "edges.csv"

    node_keys = graph.all_node_property_keys()
    with nodes_path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["id", "labels", *node_keys])
        for node in graph.nodes():
            row = [node.node_id, _LABEL_SEPARATOR.join(sorted(node.labels))]
            for key in node_keys:
                if key in node.properties:
                    row.append(_format_value(node.properties[key]))
                else:
                    row.append("")
            writer.writerow(row)

    edge_keys = graph.all_edge_property_keys()
    with edges_path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["id", "source", "target", "labels", *edge_keys])
        for edge in graph.edges():
            row = [
                edge.edge_id,
                edge.source_id,
                edge.target_id,
                _LABEL_SEPARATOR.join(sorted(edge.labels)),
            ]
            for key in edge_keys:
                if key in edge.properties:
                    row.append(_format_value(edge.properties[key]))
                else:
                    row.append("")
            writer.writerow(row)
    return nodes_path, edges_path


def _iter_elements_csv(
    nodes_path: Path, edges_path: Path
) -> Iterator[Node | Edge]:
    """Stream nodes then edges off disk, one row at a time."""
    with nodes_path.open(newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header is None or header[:2] != ["id", "labels"]:
            raise SerializationError(f"bad nodes.csv header: {header}")
        keys = header[2:]
        for row in reader:
            labels = frozenset(part for part in row[1].split(_LABEL_SEPARATOR) if part)
            properties = {
                key: _parse_value(cell)
                for key, cell in zip(keys, row[2:])
                if cell != ""
            }
            yield Node(row[0], labels, properties)
    with edges_path.open(newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header is None or header[:4] != ["id", "source", "target", "labels"]:
            raise SerializationError(f"bad edges.csv header: {header}")
        keys = header[4:]
        for row in reader:
            labels = frozenset(part for part in row[3].split(_LABEL_SEPARATOR) if part)
            properties = {
                key: _parse_value(cell)
                for key, cell in zip(keys, row[4:])
                if cell != ""
            }
            yield Edge(row[0], row[1], row[2], labels, properties)


def iter_changesets_csv(
    directory: str | Path, batch_size: int = 1000
) -> Iterator[ChangeSet]:
    """Stream a CSV graph directory as endpoint-complete change-sets.

    Rows stream off disk (never a full :class:`PropertyGraph`); edges
    referencing nodes from earlier change-sets ship marked stub copies,
    so the feed is valid for any session -- see
    :func:`repro.graph.changes.changesets_from_elements` for grouping and
    memory behaviour.
    """
    directory = Path(directory)
    nodes_path = directory / "nodes.csv"
    edges_path = directory / "edges.csv"
    if not nodes_path.exists() or not edges_path.exists():
        raise SerializationError(f"missing nodes.csv/edges.csv under {directory}")
    return changesets_from_elements(
        _iter_elements_csv(nodes_path, edges_path), batch_size
    )


def _iter_rows_csv(
    nodes_path: Path, edges_path: Path, interner: Interner
) -> Iterator[tuple[str, tuple]]:
    """Stream interned columnar rows off disk, no element objects.

    Label cells and property-presence masks repeat massively in real
    exports, so both intern through per-file caches: one dict hit per
    row instead of one split/sort/intern per row.
    """
    with nodes_path.open(newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header is None or header[:2] != ["id", "labels"]:
            raise SerializationError(f"bad nodes.csv header: {header}")
        keys = header[2:]
        yield from _interned_rows(reader, keys, 2, interner, kind="n")
    with edges_path.open(newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header is None or header[:4] != ["id", "source", "target", "labels"]:
            raise SerializationError(f"bad edges.csv header: {header}")
        keys = header[4:]
        yield from _interned_rows(reader, keys, 4, interner, kind="e")


def _interned_rows(reader, keys, offset, interner, kind):
    label_column = offset - 1
    sorted_positions = sorted(range(len(keys)), key=keys.__getitem__)
    label_cache: dict[str, int] = {}
    keyset_cache: dict[tuple[int, ...], int] = {}
    for row in reader:
        cell = row[label_column]
        labelset_id = label_cache.get(cell)
        if labelset_id is None:
            labelset_id = interner.intern_labels(
                part for part in cell.split(_LABEL_SEPARATOR) if part
            )
            label_cache[cell] = labelset_id
        cells = row[offset:]
        present = tuple(
            position
            for position in sorted_positions
            if position < len(cells) and cells[position] != ""
        )
        keyset_id = keyset_cache.get(present)
        if keyset_id is None:
            keyset_id = interner.intern_keys(
                keys[position] for position in present
            )
            keyset_cache[present] = keyset_id
        values = tuple(_parse_value(cells[position]) for position in present)
        if kind == "n":
            yield ("n", (row[0], labelset_id, keyset_id, values))
        else:
            yield ("e", (row[0], row[1], row[2], labelset_id, keyset_id, values))


def iter_columnar_changesets_csv(
    directory: str | Path,
    batch_size: int = 1000,
    interner: Interner | None = None,
) -> Iterator[ChangeSet]:
    """Stream a CSV graph directory as *columnar* insert change-sets.

    The zero-copy counterpart of :func:`iter_changesets_csv`: rows intern
    straight into :class:`~repro.graph.columnar.ElementBatch` payloads
    and no :class:`Node`/:class:`Edge` dataclass is ever instantiated.
    Stub shipping, edge buffering, and memory behaviour mirror the
    element-wise reader.
    """
    directory = Path(directory)
    nodes_path = directory / "nodes.csv"
    edges_path = directory / "edges.csv"
    if not nodes_path.exists() or not edges_path.exists():
        raise SerializationError(f"missing nodes.csv/edges.csv under {directory}")
    interner = interner or global_interner()
    return columnar_changesets_from_rows(
        _iter_rows_csv(nodes_path, edges_path, interner), batch_size, interner
    )


def read_graph_csv(directory: str | Path, name: str = "csv-graph") -> PropertyGraph:
    """Load a graph previously written by :func:`write_graph_csv`."""
    directory = Path(directory)
    nodes_path = directory / "nodes.csv"
    edges_path = directory / "edges.csv"
    if not nodes_path.exists() or not edges_path.exists():
        raise SerializationError(f"missing nodes.csv/edges.csv under {directory}")

    graph = PropertyGraph(name)
    with nodes_path.open(newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header is None or header[:2] != ["id", "labels"]:
            raise SerializationError(f"bad nodes.csv header: {header}")
        keys = header[2:]
        for row in reader:
            labels = frozenset(part for part in row[1].split(_LABEL_SEPARATOR) if part)
            properties = {
                key: _parse_value(cell)
                for key, cell in zip(keys, row[2:])
                if cell != ""
            }
            graph.add_node(Node(row[0], labels, properties))

    with edges_path.open(newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header is None or header[:4] != ["id", "source", "target", "labels"]:
            raise SerializationError(f"bad edges.csv header: {header}")
        keys = header[4:]
        for row in reader:
            labels = frozenset(part for part in row[3].split(_LABEL_SEPARATOR) if part)
            properties = {
                key: _parse_value(cell)
                for key, cell in zip(keys, row[4:])
                if cell != ""
            }
            graph.add_edge(Edge(row[0], row[1], row[2], labels, properties))
    return graph


#: Module-local alias: ``csv_io.iter_changesets(path, batch_size)``.
iter_changesets = iter_changesets_csv

"""Columnar zero-copy ingestion core: :class:`ElementBatch` + interning.

The element-wise hot path materialises every node/edge as a Python
dataclass and re-walks its property dict in four layers (type extraction,
preprocessing, MinHash token sets, accumulators).  Incremental-view-
maintenance systems avoid exactly this by keeping deltas in flat columnar
relations (Szárnyas et al.), and PG-Schema's label/property-set formalism
makes the schema-relevant content of an element fully internable: a
label-set id, a property-key-set id, and typed value columns.

This module provides that representation:

* :class:`Interner` -- a process-wide content store mapping label *sets*,
  token strings, property key *sets*, and LSH token patterns to small
  integer ids.  Token strings carry their content-derived 61-bit MinHash
  ids (shared with :mod:`repro.lsh.minhash`'s process-wide token-id
  cache), so LSH signing of a columnar batch never re-hashes a token.
  Label sets are interned by the *set* (not the joined token string):
  two distinct sets whose tokens collide -- ``{"A+B"}`` vs ``{"A","B"}``
  -- keep distinct ids while sharing embedding/LSH behaviour, exactly as
  element-wise discovery treats them.
* :class:`ElementBatch` -- one change-feed batch as contiguous columns:
  element ids, interned label-set ids, interned key-set ids, per-key
  value columns (``rows`` index array + object values), and, for edges,
  endpoint ids and endpoint label-token string ids.
  ``from_elements``/``to_elements`` convert to and from the dataclass
  world (the element-wise oracle); :class:`BatchBuilder` appends raw rows
  so file readers ingest without ever instantiating a ``Node``/``Edge``.
* :func:`columnar_changesets_from_rows` -- the columnar analogue of
  :func:`repro.graph.changes.changesets_from_elements`: groups a raw row
  stream into endpoint-complete insert :class:`ChangeSet`\\ s whose
  payload is an :class:`ElementBatch` (stub copies marked in
  ``stub_node_ids``), holding one compact record per distinct node id in
  memory instead of one dataclass.
* :func:`partition_columnar` -- the sharded-session partitioning step
  over the id column (stable blake2b routing, stub rows shipped across
  shards), mirroring :meth:`repro.graph.changes.HashPartitioner.partition`.

The interner is process-wide state exactly like the MinHash token-id
cache: ids are assigned in first-intern order and are therefore *not*
stable across processes.  Nothing persistent keys on them -- schemas,
accumulators, and signature caches remain string-keyed -- but discovery
state carries an interner *snapshot* through checkpoints so a restored
process re-warms the content caches (and the sharded manifest encodes
its stub registry by content, not by id).
"""

from __future__ import annotations

import threading
from collections.abc import Iterable, Iterator, Mapping
from hashlib import blake2b
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import ConfigurationError, DanglingEdgeError
from repro.graph.changes import ChangeSet, _ShardDraft
from repro.graph.model import Edge, Node, PropertyGraph, label_token
from repro.lsh.minhash import token_content_id

if TYPE_CHECKING:
    from repro.graph.changes import HashPartitioner


class LabelSet:
    """One interned label set: the labels, their token, its string id."""

    __slots__ = ("labelset_id", "labels", "token", "token_sid")

    def __init__(
        self, labelset_id: int, labels: frozenset[str], token: str, token_sid: int
    ) -> None:
        self.labelset_id = labelset_id
        self.labels = labels
        self.token = token
        self.token_sid = token_sid


class KeySet:
    """One interned property-key set (keys sorted, frozenset cached)."""

    __slots__ = ("keyset_id", "keys", "frozen", "index_of")

    def __init__(self, keyset_id: int, keys: tuple[str, ...]) -> None:
        self.keyset_id = keyset_id
        self.keys = keys
        self.frozen = frozenset(keys)
        self.index_of = {key: position for position, key in enumerate(keys)}


class TokenPattern:
    """One interned LSH structural pattern: token set + MinHash id array."""

    __slots__ = ("tokens", "minhash_ids")

    def __init__(self, tokens: frozenset[str], minhash_ids: np.ndarray) -> None:
        self.tokens = tokens
        self.minhash_ids = minhash_ids


#: Coarse per-value datatype-shape codes folded into element signatures.
#: Exact ``type()`` lookup: ``bool`` is its own dict key so it never
#: collapses into ``int``; subclasses and exotic types fall back to "o".
_SHAPE_CODES = {
    bool: "b",
    int: "i",
    float: "f",
    str: "s",
    type(None): "n",
}


def value_shapes(values: Iterable) -> str:
    """The datatype-shape string of one key-aligned value tuple."""
    get = _SHAPE_CODES.get
    return "".join([get(type(value), "o") for value in values])


class ElementSignature:
    """One interned structural signature: content ids + Merkle digest.

    A signature captures everything structural about an element --
    label set, property-key set, per-key datatype shape, and (edges)
    the endpoint label tokens -- so two rows with equal signatures are
    indistinguishable to preprocessing and MinHash/LSH clustering.  The
    digest is content-derived (stable across processes); the ids are
    process-local like every other interner id.
    """

    __slots__ = (
        "signature_id",
        "labelset_id",
        "keyset_id",
        "shape",
        "src_sid",
        "tgt_sid",
        "digest",
    )

    def __init__(
        self,
        signature_id: int,
        labelset_id: int,
        keyset_id: int,
        shape: str,
        src_sid: int,
        tgt_sid: int,
        digest: bytes,
    ) -> None:
        self.signature_id = signature_id
        self.labelset_id = labelset_id
        self.keyset_id = keyset_id
        self.shape = shape
        self.src_sid = src_sid
        self.tgt_sid = tgt_sid
        self.digest = digest

    @property
    def is_edge(self) -> bool:
        """True for edge signatures (endpoint tokens present)."""
        return self.src_sid >= 0


class Interner:
    """Process-wide content interner backing columnar batches.

    All methods are idempotent: interning the same content twice returns
    the same id.  The interner only grows (like the MinHash caches), and
    its size is bounded by the number of *distinct* label sets, tokens,
    key sets, and structural patterns -- small even for huge graphs.

    Thread safety: mutations hold a reentrant lock with double-checked
    lookup, so the already-interned fast path stays lock-free while
    concurrent sessions (the multi-tenant service) can share the
    process-wide instance.  Reads never lock: writers append backing
    content before publishing an id.
    """

    def __init__(self) -> None:
        # Snapshot/merge go through the intern_* API rather than field
        # copies: snapshot() persists the three content lists, and the
        # restore/merge paths re-intern that content, which rebuilds the
        # id maps and caches as a side effect.  The per-field lint
        # suppressions below record which bucket each field falls into.
        self._string_ids: dict[str, int] = {}  # repro-lint: ignore[PGL201] -- derived id map; rebuilt by intern_string during merge_snapshot
        self._strings: list[str] = []  # repro-lint: ignore[PGL201] -- persisted via snapshot()["strings"]; restored through intern_string
        self._string_minhash: list[int] = []  # repro-lint: ignore[PGL201] -- derived MinHash-per-string cache; recomputed by intern_string
        self._labelset_ids: dict[frozenset[str], int] = {}  # repro-lint: ignore[PGL201] -- derived id map; rebuilt by intern_labels during merge_snapshot
        self._labelsets: list[LabelSet] = []  # repro-lint: ignore[PGL201] -- persisted via snapshot()["labelsets"]; restored through intern_labels
        self._keyset_ids: dict[tuple[str, ...], int] = {}  # repro-lint: ignore[PGL201] -- derived id map; rebuilt by intern_keys during merge_snapshot
        self._keysets: list[KeySet] = []  # repro-lint: ignore[PGL201] -- persisted via snapshot()["keysets"]; restored through intern_keys
        self._node_patterns: dict[tuple[int, int], TokenPattern] = {}  # repro-lint: ignore[PGL201] -- derived pattern cache; deliberately excluded from snapshots, rebuilt on first use
        self._edge_patterns: dict[tuple[int, int, int, int], TokenPattern] = {}  # repro-lint: ignore[PGL201] -- derived pattern cache; deliberately excluded from snapshots, rebuilt on first use
        self._signature_keys: dict[tuple[int, int, str, int, int], int] = {}  # repro-lint: ignore[PGL201] -- derived id map; rebuilt by intern_element_signature during merge_snapshot
        self._signatures: list[ElementSignature] = []  # repro-lint: ignore[PGL201] -- persisted via snapshot()["signatures"]; restored through intern_signature_content
        self._signature_digests: dict[bytes, int] = {}  # repro-lint: ignore[PGL201] -- derived digest map; rebuilt by intern_element_signature during merge_snapshot
        self._labelset_digests: dict[int, bytes] = {}  # repro-lint: ignore[PGL201] -- derived Merkle digest cache; recomputed on first signature use
        self._keyset_digests: dict[int, bytes] = {}  # repro-lint: ignore[PGL201] -- derived Merkle digest cache; recomputed on first signature use
        # Reentrant because intern_labels/intern_keys intern their
        # component strings while already holding it.  Reads stay
        # lock-free: writers append content before publishing the id, so
        # a reader holding an id always finds its backing entries.
        self._lock = threading.RLock()  # repro-lint: ignore[PGL201] -- process-local lock, never part of snapshots; __setstate__ recreates it

    # ------------------------------------------------------------------
    # Token strings
    # ------------------------------------------------------------------
    def intern_string(self, text: str) -> int:
        """Intern one token string; returns its dense string id."""
        sid = self._string_ids.get(text)
        if sid is not None:
            return sid
        with self._lock:
            sid = self._string_ids.get(text)
            if sid is None:
                sid = len(self._strings)
                self._strings.append(text)
                self._string_minhash.append(token_content_id(text))
                # Publish the id last: lock-free readers must never see
                # an id whose backing content is still missing.
                self._string_ids[text] = sid
            return sid

    def string(self, sid: int) -> str:
        """The token string behind ``sid``."""
        return self._strings[sid]

    def string_minhash_id(self, sid: int) -> int:
        """The content-derived 61-bit MinHash token id of string ``sid``."""
        return self._string_minhash[sid]

    # ------------------------------------------------------------------
    # Label sets
    # ------------------------------------------------------------------
    def intern_labels(self, labels: Iterable[str]) -> int:
        """Intern one label set; returns its dense label-set id."""
        frozen = labels if isinstance(labels, frozenset) else frozenset(labels)
        lid = self._labelset_ids.get(frozen)
        if lid is not None:
            return lid
        with self._lock:
            lid = self._labelset_ids.get(frozen)
            if lid is None:
                token = label_token(frozen)
                lid = len(self._labelsets)
                self._labelsets.append(
                    LabelSet(lid, frozen, token, self.intern_string(token))
                )
                self._labelset_ids[frozen] = lid
            return lid

    def labelset(self, lid: int) -> LabelSet:
        """The :class:`LabelSet` behind ``lid``."""
        return self._labelsets[lid]

    # ------------------------------------------------------------------
    # Property-key sets
    # ------------------------------------------------------------------
    def intern_keys(self, keys: Iterable[str]) -> int:
        """Intern one property-key set (sorted); returns its key-set id."""
        ordered = tuple(sorted(keys))
        kid = self._keyset_ids.get(ordered)
        if kid is not None:
            return kid
        with self._lock:
            kid = self._keyset_ids.get(ordered)
            if kid is None:
                kid = len(self._keysets)
                self._keysets.append(KeySet(kid, ordered))
                for key in ordered:
                    self.intern_string(key)
                self._keyset_ids[ordered] = kid
            return kid

    def keyset(self, kid: int) -> KeySet:
        """The :class:`KeySet` behind ``kid``."""
        return self._keysets[kid]

    # ------------------------------------------------------------------
    # LSH structural patterns
    # ------------------------------------------------------------------
    def _build_pattern(self, tokens: set[str]) -> TokenPattern:
        frozen = frozenset(tokens)
        # Sorted: frozenset iteration is hash-seed dependent; downstream
        # signature reductions are order-insensitive, but the stored id
        # array should still be reproducible run to run.
        ids = np.fromiter(
            (
                self._string_minhash[self.intern_string(token)]
                for token in sorted(frozen)
            ),
            dtype=np.uint64,
            count=len(frozen),
        )
        return TokenPattern(frozen, ids)

    def node_pattern(self, token_sid: int, keyset_id: int) -> TokenPattern:
        """The MinHash token pattern of a (label token, key set) pair."""
        key = (token_sid, keyset_id)
        pattern = self._node_patterns.get(key)
        if pattern is not None:
            return pattern
        with self._lock:
            pattern = self._node_patterns.get(key)
            if pattern is None:
                tokens = set(self._keysets[keyset_id].keys)
                token = self._strings[token_sid]
                if token:
                    tokens.add(f"label:{token}")
                pattern = self._build_pattern(tokens)
                self._node_patterns[key] = pattern
            return pattern

    def edge_pattern(
        self, token_sid: int, src_sid: int, tgt_sid: int, keyset_id: int
    ) -> TokenPattern:
        """The MinHash token pattern of an edge structural signature."""
        key = (token_sid, src_sid, tgt_sid, keyset_id)
        pattern = self._edge_patterns.get(key)
        if pattern is not None:
            return pattern
        with self._lock:
            pattern = self._edge_patterns.get(key)
            if pattern is None:
                tokens = set(self._keysets[keyset_id].keys)
                token = self._strings[token_sid]
                if token:
                    tokens.add(f"label:{token}")
                source_token = self._strings[src_sid]
                if source_token:
                    tokens.add(f"src:{source_token}")
                target_token = self._strings[tgt_sid]
                if target_token:
                    tokens.add(f"tgt:{target_token}")
                pattern = self._build_pattern(tokens)
                self._edge_patterns[key] = pattern
            return pattern

    # ------------------------------------------------------------------
    # Element signatures (content-addressable structural dedup)
    # ------------------------------------------------------------------
    @staticmethod
    def _set_digest(items: Iterable[str]) -> bytes:
        """Merkle digest of an ordered string collection.

        Each item is hashed individually before folding, so component
        boundaries are unambiguous: ``("A+B",)`` and ``("A", "B")`` can
        never share a digest the way a plain join would allow.
        """
        hasher = blake2b(digest_size=16)
        for item in items:
            hasher.update(
                blake2b(item.encode("utf-8"), digest_size=16).digest()
            )
        return hasher.digest()

    def _signature_digest(
        self, labelset_id: int, keyset_id: int, shape: str,
        src_sid: int, tgt_sid: int,
    ) -> bytes:
        labelset_digest = self._labelset_digests.get(labelset_id)
        if labelset_digest is None:
            labelset_digest = self._set_digest(
                sorted(self._labelsets[labelset_id].labels)
            )
            self._labelset_digests[labelset_id] = labelset_digest  # repro-lint: ignore[PGL901] -- digest-cache helper; the only caller (intern_element_signature) holds self._lock
        keyset_digest = self._keyset_digests.get(keyset_id)
        if keyset_digest is None:
            keyset_digest = self._set_digest(self._keysets[keyset_id].keys)
            self._keyset_digests[keyset_id] = keyset_digest  # repro-lint: ignore[PGL901] -- digest-cache helper; the only caller (intern_element_signature) holds self._lock
        hasher = blake2b(digest_size=16)
        hasher.update(b"edge" if src_sid >= 0 else b"node")
        hasher.update(labelset_digest)
        hasher.update(keyset_digest)
        hasher.update(shape.encode("ascii"))
        if src_sid >= 0:
            hasher.update(
                blake2b(
                    self._strings[src_sid].encode("utf-8"), digest_size=16
                ).digest()
            )
            hasher.update(
                blake2b(
                    self._strings[tgt_sid].encode("utf-8"), digest_size=16
                ).digest()
            )
        return hasher.digest()

    def intern_element_signature(
        self,
        labelset_id: int,
        keyset_id: int,
        shape: str,
        src_sid: int = -1,
        tgt_sid: int = -1,
    ) -> int:
        """Intern one structural element signature; returns its dense id.

        The signature is a blake2b Merkle hash over the content behind
        ``(labelset_id, keyset_id, per-key datatype shape)`` plus, for
        edges, the endpoint label-token strings (``src_sid``/``tgt_sid``
        stay ``-1`` for nodes).  The already-interned fast path is one
        lock-free dict probe on the process-local id tuple; the digest
        map gives content identity for snapshot merges across processes.
        """
        key = (labelset_id, keyset_id, shape, src_sid, tgt_sid)
        signature_id = self._signature_keys.get(key)
        if signature_id is not None:
            return signature_id
        with self._lock:
            signature_id = self._signature_keys.get(key)
            if signature_id is None:
                digest = self._signature_digest(
                    labelset_id, keyset_id, shape, src_sid, tgt_sid
                )
                signature_id = self._signature_digests.get(digest)
                if signature_id is None:
                    signature_id = len(self._signatures)
                    self._signatures.append(
                        ElementSignature(
                            signature_id,
                            labelset_id,
                            keyset_id,
                            shape,
                            src_sid,
                            tgt_sid,
                            digest,
                        )
                    )
                    self._signature_digests[digest] = signature_id
                # Publish the id-tuple key last (lock-free reader rule).
                self._signature_keys[key] = signature_id
            return signature_id

    def intern_signature_content(
        self,
        labels: Iterable[str],
        keys: Iterable[str],
        shape: str,
        src_token: str | None = None,
        tgt_token: str | None = None,
    ) -> int:
        """Intern a signature from raw content (snapshot restore path)."""
        return self.intern_element_signature(
            self.intern_labels(labels),
            self.intern_keys(keys),
            shape,
            -1 if src_token is None else self.intern_string(src_token),
            -1 if tgt_token is None else self.intern_string(tgt_token),
        )

    def element_signature(self, signature_id: int) -> ElementSignature:
        """The :class:`ElementSignature` behind ``signature_id``."""
        return self._signatures[signature_id]

    def _signature_content(self, signature: ElementSignature) -> tuple:
        """Process-portable content tuple of one signature."""
        return (
            sorted(self._labelsets[signature.labelset_id].labels),
            self._keysets[signature.keyset_id].keys,
            signature.shape,
            self._strings[signature.src_sid]
            if signature.src_sid >= 0
            else None,
            self._strings[signature.tgt_sid]
            if signature.tgt_sid >= 0
            else None,
        )

    # ------------------------------------------------------------------
    # Introspection / persistence
    # ------------------------------------------------------------------
    @property
    def string_count(self) -> int:
        """Number of interned token strings."""
        return len(self._strings)

    @property
    def labelset_count(self) -> int:
        """Number of interned label sets."""
        return len(self._labelsets)

    @property
    def keyset_count(self) -> int:
        """Number of interned property-key sets."""
        return len(self._keysets)

    @property
    def signature_count(self) -> int:
        """Number of interned element signatures (distinct structures)."""
        return len(self._signatures)

    def snapshot(self) -> dict:
        """Content-only snapshot for checkpoints (no process-local ids).

        Patterns are derived state and deliberately excluded: they
        rebuild on first use from the interned content.
        """
        return {
            "strings": list(self._strings),
            "labelsets": [sorted(ls.labels) for ls in self._labelsets],
            "keysets": [ks.keys for ks in self._keysets],
            "signatures": [
                self._signature_content(signature)
                for signature in self._signatures
            ],
        }

    def merge_snapshot(self, snapshot: Mapping) -> "Interner":
        """Re-intern a :meth:`snapshot` (restore path); idempotent."""
        for text in snapshot.get("strings", ()):
            self.intern_string(text)
        for labels in snapshot.get("labelsets", ()):
            self.intern_labels(labels)
        for keys in snapshot.get("keysets", ()):
            self.intern_keys(keys)
        for content in snapshot.get("signatures", ()):
            self.intern_signature_content(*content)
        return self

    def merge_from(self, other: "Interner") -> "Interner":
        """Union another interner's content into this one (state merges).

        Ids are *not* transferred -- they are process-local -- only the
        content, so batches built against ``other`` must be re-encoded
        (which never happens in practice: within one process every state
        shares the process-wide interner and this is a no-op).
        """
        if other is self:
            return self
        return self.merge_snapshot(other.snapshot())

    # ------------------------------------------------------------------
    # Pickling (shard workers receive the interner inside DiscoveryState)
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        # Locks are process-local and unpicklable; drop it here and let
        # the receiving process build a fresh one.
        state = dict(self.__dict__)
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.RLock()


#: The process-wide interner used by default everywhere.
_GLOBAL = Interner()


def global_interner() -> Interner:
    """The process-wide :class:`Interner` (shared by every batch)."""
    return _GLOBAL


class SignatureStore:
    """Ref-counted element-signature store (one per discovery state).

    Signature *content* lives in the process-wide :class:`Interner`
    (grow-only, shared); the per-session refcounts here track how many
    live recorded instances carry each structure.  A positive count lets
    ingest classify a row as a structural *repeat* -- skipping
    preprocessing and LSH clustering, folding only the streaming
    accumulators -- and deletion decrements exactly, removing the entry
    at zero so the structure is first-seen again.  Counts steer
    *performance* only: the repeat and first-seen paths record
    identically, so schema exactness never depends on them (see
    DESIGN.md "Structural dedup").

    Snapshots encode content, not process-local ids, so a store
    round-trips through checkpoints and shard-state merges exactly like
    the interner itself.
    """

    __slots__ = ("interner", "refcounts")

    def __init__(
        self,
        interner: Interner | None = None,
        refcounts: Mapping[int, int] | None = None,
    ) -> None:
        self.interner = interner or _GLOBAL
        self.refcounts: dict[int, int] = dict(refcounts) if refcounts else {}

    def __len__(self) -> int:
        return len(self.refcounts)

    def __repr__(self) -> str:
        return (
            f"SignatureStore(distinct={len(self.refcounts)}, "
            f"instances={sum(self.refcounts.values())})"
        )

    def count(self, signature_id: int) -> int:
        """Live-instance refcount of one signature (0 when unseen)."""
        return self.refcounts.get(signature_id, 0)

    def seen(self, signature_id: int) -> bool:
        """True when the signature has a positive refcount."""
        return signature_id in self.refcounts

    def add(self, signature_id: int, n: int = 1) -> int:
        """Increment a signature's refcount by ``n``; returns the count."""
        updated = self.refcounts.get(signature_id, 0) + n
        self.refcounts[signature_id] = updated
        return updated

    def remove(self, signature_id: int, n: int = 1) -> int:
        """Decrement by ``n``, dropping the entry at zero.

        Tolerates decrements of unseen signatures (mixed element-wise /
        columnar feeds count only columnar inserts): the count floors at
        zero rather than going negative, which is always safe because a
        missing entry merely demotes future rows to the full pipeline.
        """
        updated = self.refcounts.get(signature_id, 0) - n
        if updated > 0:
            self.refcounts[signature_id] = updated
            return updated
        self.refcounts.pop(signature_id, None)
        return 0

    def snapshot(self) -> list:
        """Content-encoded ``(signature content, count)`` pairs."""
        interner = self.interner
        signatures = interner._signatures
        return [
            (interner._signature_content(signatures[signature_id]), count)
            for signature_id, count in self.refcounts.items()
        ]

    @classmethod
    def from_snapshot(
        cls, data, interner: Interner | None = None
    ) -> "SignatureStore":
        """Rebuild a store from :meth:`snapshot` output (restore path)."""
        store = cls(interner)
        refcounts = store.refcounts
        intern_content = store.interner.intern_signature_content
        for content, count in data or ():
            signature_id = intern_content(*content)
            refcounts[signature_id] = refcounts.get(signature_id, 0) + count
        return store

    def merge_from(self, other: "SignatureStore") -> "SignatureStore":
        """Sum another store's refcounts into this one (state merges)."""
        if other is self:
            return self
        refcounts = self.refcounts
        if other.interner is self.interner:
            for signature_id, count in other.refcounts.items():
                refcounts[signature_id] = (
                    refcounts.get(signature_id, 0) + count
                )
            return self
        # Cross-interner merge (restored or worker-shipped states):
        # re-intern by content, exactly like Interner.merge_from.
        intern_content = self.interner.intern_signature_content
        for content, count in other.snapshot():
            signature_id = intern_content(*content)
            refcounts[signature_id] = refcounts.get(signature_id, 0) + count
        return self

    def copy(self) -> "SignatureStore":
        """Independent copy sharing the process-wide interner."""
        return SignatureStore(self.interner, self.refcounts)


class ValueColumn:
    """One property key's values: element row indices + aligned values."""

    __slots__ = ("rows", "values", "_position_of", "_value_list")

    def __init__(self, rows: np.ndarray, values: np.ndarray) -> None:
        self.rows = rows
        self.values = values
        self._position_of: dict[int, int] | None = None
        self._value_list: list | None = None

    def __len__(self) -> int:
        return len(self.rows)

    def take(self, element_rows: list[int]) -> list:
        """Values at a *list* of rows, via a lazily built position index.

        The per-cluster recording path touches many tiny row groups;
        dict indexing beats a numpy ``searchsorted`` round-trip there,
        and the index amortises over every cluster of the batch.
        """
        position_of = self._position_of
        if position_of is None:
            position_of = self._position_of = {
                row: position
                for position, row in enumerate(self.rows.tolist())
            }
            self._value_list = self.values.tolist()
        value_list = self._value_list
        return [value_list[position_of[row]] for row in element_rows]


class ColumnarElements:
    """One element kind (nodes or edges) of a batch, as flat columns."""

    __slots__ = (
        "kind",
        "ids",
        "labelset_ids",
        "token_sids",
        "keyset_ids",
        "columns",
        "source_ids",
        "target_ids",
        "src_token_sids",
        "tgt_token_sids",
        "signature_ids",
        "_labelset_list",
        "_keyset_list",
        "_src_token_list",
        "_tgt_token_list",
        "_signature_list",
    )

    def __init__(
        self,
        kind: str,
        ids: list[str],
        labelset_ids: np.ndarray,
        token_sids: np.ndarray,
        keyset_ids: np.ndarray,
        columns: dict[str, ValueColumn],
        source_ids: list[str] | None = None,
        target_ids: list[str] | None = None,
        src_token_sids: np.ndarray | None = None,
        tgt_token_sids: np.ndarray | None = None,
        signature_ids: np.ndarray | None = None,
    ) -> None:
        self.kind = kind
        self.ids = ids
        self.labelset_ids = labelset_ids
        self.token_sids = token_sids
        self.keyset_ids = keyset_ids
        self.columns = columns
        self.source_ids = source_ids
        self.target_ids = target_ids
        self.src_token_sids = src_token_sids
        self.tgt_token_sids = tgt_token_sids
        self.signature_ids = signature_ids
        self._labelset_list: list[int] | None = None
        self._keyset_list: list[int] | None = None
        self._src_token_list: list[int] | None = None
        self._tgt_token_list: list[int] | None = None
        self._signature_list: list[int] | None = None

    def __len__(self) -> int:
        return len(self.ids)

    @property
    def is_edges(self) -> bool:
        """True for the edge section of a batch."""
        return self.kind == "edges"

    @property
    def labelset_list(self) -> list[int]:
        """``labelset_ids`` as a plain list (lazy; per-cluster indexing)."""
        cached = self._labelset_list
        if cached is None:
            cached = self._labelset_list = self.labelset_ids.tolist()
        return cached

    @property
    def keyset_list(self) -> list[int]:
        """``keyset_ids`` as a plain list (lazy; per-cluster indexing)."""
        cached = self._keyset_list
        if cached is None:
            cached = self._keyset_list = self.keyset_ids.tolist()
        return cached

    @property
    def src_token_list(self) -> list[int]:
        """``src_token_sids`` as a plain list (edges only, lazy)."""
        cached = self._src_token_list
        if cached is None:
            cached = self._src_token_list = self.src_token_sids.tolist()
        return cached

    @property
    def tgt_token_list(self) -> list[int]:
        """``tgt_token_sids`` as a plain list (edges only, lazy)."""
        cached = self._tgt_token_list
        if cached is None:
            cached = self._tgt_token_list = self.tgt_token_sids.tolist()
        return cached

    @property
    def signature_list(self) -> list[int]:
        """``signature_ids`` as a plain list (lazy; dedup classification)."""
        cached = self._signature_list
        if cached is None:
            cached = self._signature_list = self.signature_ids.tolist()
        return cached


_EMPTY_IDS = np.zeros(0, dtype=np.intp)


def _empty_block(kind: str) -> ColumnarElements:
    edges = kind == "edges"
    return ColumnarElements(
        kind,
        [],
        _EMPTY_IDS,
        _EMPTY_IDS,
        _EMPTY_IDS,
        {},
        [] if edges else None,
        [] if edges else None,
        _EMPTY_IDS if edges else None,
        _EMPTY_IDS if edges else None,
        _EMPTY_IDS,
    )


def _object_array(values: list) -> np.ndarray:
    out = np.empty(len(values), dtype=object)
    for position, value in enumerate(values):
        out[position] = value
    return out


class ElementBatch:
    """One insert batch in columnar form (node section + edge section).

    Batches are endpoint-complete by construction: every edge's endpoints
    appear as node rows of the same batch (possibly stub copies), exactly
    like the batch streams of the element-wise readers.
    """

    __slots__ = ("nodes", "edges", "interner")

    def __init__(
        self,
        nodes: ColumnarElements,
        edges: ColumnarElements,
        interner: Interner,
    ) -> None:
        self.nodes = nodes
        self.edges = edges
        self.interner = interner

    @property
    def node_count(self) -> int:
        """Number of node rows (stub copies included)."""
        return len(self.nodes)

    @property
    def edge_count(self) -> int:
        """Number of edge rows."""
        return len(self.edges)

    def __len__(self) -> int:
        return self.node_count + self.edge_count

    def __repr__(self) -> str:
        return f"ElementBatch(nodes={self.node_count}, edges={self.edge_count})"

    # ------------------------------------------------------------------
    # Converters (the element-wise oracle boundary)
    # ------------------------------------------------------------------
    @classmethod
    def from_elements(
        cls,
        nodes: Iterable[Node] = (),
        edges: Iterable[Edge] = (),
        interner: Interner | None = None,
    ) -> "ElementBatch":
        """Build a batch from dataclass elements (endpoint-complete)."""
        builder = BatchBuilder(interner)
        for node in nodes:
            builder.put_node_element(node)
        for edge in edges:
            builder.add_edge_element(edge)
        return builder.freeze()

    @classmethod
    def from_graph(
        cls, graph: PropertyGraph, interner: Interner | None = None
    ) -> "ElementBatch":
        """Build a batch carrying every element of ``graph``."""
        return cls.from_elements(graph.nodes(), graph.edges(), interner)

    def _properties_per_row(self, block: ColumnarElements) -> list[dict]:
        properties: list[dict] = [{} for _ in range(len(block))]
        keysets = self.interner._keysets
        order: list[list[tuple[int, object]]] = [
            [] for _ in range(len(block))
        ]
        for key, column in block.columns.items():
            for row, value in zip(column.rows.tolist(), column.values.tolist()):
                order[row].append((keysets[int(block.keyset_ids[row])].index_of[key], value))
        for row, pairs in enumerate(order):
            keyset = keysets[int(block.keyset_ids[row])]
            pairs.sort()
            properties[row] = {
                keyset.keys[position]: value for position, value in pairs
            }
        return properties

    def to_elements(self) -> tuple[list[Node], list[Edge]]:
        """Materialise dataclass elements (the slow oracle direction)."""
        interner = self.interner
        node_props = self._properties_per_row(self.nodes)
        nodes = [
            Node(
                node_id,
                interner.labelset(int(lid)).labels,
                node_props[row],
            )
            for row, (node_id, lid) in enumerate(
                zip(self.nodes.ids, self.nodes.labelset_ids.tolist())
            )
        ]
        edge_props = self._properties_per_row(self.edges)
        edges = [
            Edge(
                edge_id,
                self.edges.source_ids[row],
                self.edges.target_ids[row],
                interner.labelset(int(lid)).labels,
                edge_props[row],
            )
            for row, (edge_id, lid) in enumerate(
                zip(self.edges.ids, self.edges.labelset_ids.tolist())
            )
        ]
        return nodes, edges

    def to_property_graph(self, name: str = "batch") -> PropertyGraph:
        """Materialise the batch as a :class:`PropertyGraph`."""
        graph = PropertyGraph(name)
        nodes, edges = self.to_elements()
        for node in nodes:
            graph.put_node(node)
        for edge in edges:
            if not graph.has_edge(edge.edge_id):
                graph.add_edge(edge)
        return graph

    # ------------------------------------------------------------------
    # Row records (stub shipping / partitioning)
    # ------------------------------------------------------------------
    def _row_values(self, block: ColumnarElements, row: int) -> tuple:
        keyset = self.interner.keyset(int(block.keyset_ids[row]))
        return tuple(
            block.columns[key].values[
                int(np.searchsorted(block.columns[key].rows, row))
            ]
            for key in keyset.keys
        )

    def node_record(self, row: int) -> tuple[int, int, tuple]:
        """Compact ``(labelset_id, keyset_id, values)`` record of one node."""
        return (
            int(self.nodes.labelset_ids[row]),
            int(self.nodes.keyset_ids[row]),
            self._row_values(self.nodes, row),
        )

    def edge_record(self, row: int) -> tuple[str, str, int, int, tuple]:
        """Compact ``(src, tgt, labelset_id, keyset_id, values)`` record."""
        return (
            self.edges.source_ids[row],
            self.edges.target_ids[row],
            int(self.edges.labelset_ids[row]),
            int(self.edges.keyset_ids[row]),
            self._row_values(self.edges, row),
        )


class BatchBuilder:
    """Row-wise assembly buffer freezing into an :class:`ElementBatch`.

    ``values`` tuples are aligned with the interned key set's sorted
    ``keys`` tuple.  The builder never touches ``Node``/``Edge`` objects
    unless the convenience ``*_element`` adapters are used.
    """

    def __init__(self, interner: Interner | None = None) -> None:
        self.interner = interner or _GLOBAL
        self._nodes: list[tuple[str, int, int, tuple]] = []
        self._node_index: dict[str, int] = {}
        self._edges: list[tuple[str, str, str, int, int, tuple]] = []

    @property
    def node_count(self) -> int:
        """Node rows appended so far."""
        return len(self._nodes)

    @property
    def edge_count(self) -> int:
        """Edge rows appended so far."""
        return len(self._edges)

    def has_node(self, node_id: str) -> bool:
        """True when a node row for ``node_id`` was appended."""
        return node_id in self._node_index

    def add_node(
        self, node_id: str, labelset_id: int, keyset_id: int, values: tuple
    ) -> None:
        """Append one node row (first writer wins on duplicate ids)."""
        if node_id in self._node_index:
            return
        self._node_index[node_id] = len(self._nodes)
        self._nodes.append((node_id, labelset_id, keyset_id, values))

    def put_node(
        self, node_id: str, labelset_id: int, keyset_id: int, values: tuple
    ) -> None:
        """Append or replace one node row (replacement keeps the row)."""
        position = self._node_index.get(node_id)
        record = (node_id, labelset_id, keyset_id, values)
        if position is None:
            self._node_index[node_id] = len(self._nodes)
            self._nodes.append(record)
        else:
            self._nodes[position] = record

    def add_edge(
        self,
        edge_id: str,
        source_id: str,
        target_id: str,
        labelset_id: int,
        keyset_id: int,
        values: tuple,
    ) -> None:
        """Append one edge row; endpoints must be appended before freeze.

        Duplicate edge ids keep the first row (deduplicated at freeze),
        matching how the element-wise session materialises a batch.
        """
        self._edges.append(
            (edge_id, source_id, target_id, labelset_id, keyset_id, values)
        )

    # Convenience adapters from the dataclass world ---------------------
    def _intern_element(self, element) -> tuple[int, int, tuple]:
        interner = self.interner
        labelset_id = interner.intern_labels(element.labels)
        keyset_id = interner.intern_keys(element.properties)
        keys = interner.keyset(keyset_id).keys
        values = tuple(element.properties[key] for key in keys)
        return labelset_id, keyset_id, values

    def put_node_element(self, node: Node) -> None:
        """Append/replace a node row from a :class:`Node`."""
        self.put_node(node.node_id, *self._intern_element(node))

    def add_edge_element(self, edge: Edge) -> None:
        """Append an edge row from an :class:`Edge`."""
        labelset_id, keyset_id, values = self._intern_element(edge)
        self.add_edge(
            edge.edge_id,
            edge.source_id,
            edge.target_id,
            labelset_id,
            keyset_id,
            values,
        )

    # Freeze ------------------------------------------------------------
    def _freeze_block(
        self,
        kind: str,
        records: list,
        endpoint_token: Mapping[str, int] | None = None,
    ) -> ColumnarElements:
        if not records:
            return _empty_block(kind)
        interner = self.interner
        labelsets = interner._labelsets
        count = len(records)
        edges = kind == "edges"
        if edges:
            ids, source_ids, target_ids, lid_list, kid_list, values_list = map(
                list, zip(*records)
            )
        else:
            ids, lid_list, kid_list, values_list = map(list, zip(*records))
        labelset_ids = np.asarray(lid_list, dtype=np.intp)
        keyset_ids = np.asarray(kid_list, dtype=np.intp)
        uniq, inverse = np.unique(labelset_ids, return_inverse=True)
        token_sids = np.fromiter(
            (labelsets[int(lid)].token_sid for lid in uniq),
            dtype=np.intp,
            count=len(uniq),
        )[inverse]
        if edges:
            try:
                src_token_sids = np.fromiter(
                    (endpoint_token[source_id] for source_id in source_ids),
                    dtype=np.intp,
                    count=count,
                )
                tgt_token_sids = np.fromiter(
                    (endpoint_token[target_id] for target_id in target_ids),
                    dtype=np.intp,
                    count=count,
                )
            except KeyError as error:
                raise DanglingEdgeError(
                    f"columnar batch edge references node {error.args[0]!r} "
                    "absent from the batch; columnar change-sets must be "
                    "endpoint-complete (ship stub rows)"
                ) from None
            src_sid_list = src_token_sids.tolist()
            tgt_sid_list = tgt_token_sids.tolist()
        # Column assembly is the one unavoidable per-cell pass; appenders
        # are cached per key-set id as bound methods so the inner loop is
        # two C-level calls per cell.  The structural signature rides the
        # same pass, memoised on ``(ids..., per-value type tuple)`` so a
        # repeat-heavy batch pays one shape-string build and one interner
        # probe per *distinct* structure, not per row.
        raw_columns: dict[str, tuple[list[int], list]] = {}
        keysets = interner._keysets
        appenders_of: dict[int, list] = {}
        get_appenders = appenders_of.get
        sig_list: list[int] = []
        sig_append = sig_list.append
        sig_cache: dict[tuple, int] = {}
        sig_cache_get = sig_cache.get
        intern_signature = interner.intern_element_signature
        for row, (keyset_id, values) in enumerate(zip(kid_list, values_list)):
            if edges:
                sig_key = (
                    lid_list[row],
                    keyset_id,
                    tuple(map(type, values)),
                    src_sid_list[row],
                    tgt_sid_list[row],
                )
                signature_id = sig_cache_get(sig_key)
                if signature_id is None:
                    signature_id = sig_cache[sig_key] = intern_signature(
                        lid_list[row],
                        keyset_id,
                        value_shapes(values),
                        src_sid_list[row],
                        tgt_sid_list[row],
                    )
            else:
                sig_key = (lid_list[row], keyset_id, tuple(map(type, values)))
                signature_id = sig_cache_get(sig_key)
                if signature_id is None:
                    signature_id = sig_cache[sig_key] = intern_signature(
                        lid_list[row], keyset_id, value_shapes(values)
                    )
            sig_append(signature_id)
            if not values:
                continue
            appenders = get_appenders(keyset_id)
            if appenders is None:
                appenders = appenders_of[keyset_id] = []
                for key in keysets[keyset_id].keys:
                    column = raw_columns.get(key)
                    if column is None:
                        column = raw_columns[key] = ([], [])
                    appenders.append((column[0].append, column[1].append))
            for (append_row, append_value), value in zip(appenders, values):
                append_row(row)
                append_value(value)
        columns = {
            key: ValueColumn(
                np.asarray(rows, dtype=np.intp), _object_array(values)
            )
            for key, (rows, values) in raw_columns.items()
        }
        signature_ids = np.asarray(sig_list, dtype=np.intp)
        if not edges:
            return ColumnarElements(
                kind,
                ids,
                labelset_ids,
                token_sids,
                keyset_ids,
                columns,
                signature_ids=signature_ids,
            )
        return ColumnarElements(
            kind,
            ids,
            labelset_ids,
            token_sids,
            keyset_ids,
            columns,
            source_ids,
            target_ids,
            src_token_sids,
            tgt_token_sids,
            signature_ids,
        )

    def freeze(self) -> ElementBatch:
        """Finalize into an :class:`ElementBatch` (validates endpoints)."""
        labelsets = self.interner._labelsets
        endpoint_token = {
            node_id: labelsets[self._nodes[position][1]].token_sid
            for node_id, position in self._node_index.items()
        }
        edge_rows = self._edges
        if len({record[0] for record in edge_rows}) != len(edge_rows):
            # Duplicate edge ids keep the first row, like PropertyGraph
            # materialisation of a change-set does.
            seen: set[str] = set()
            add = seen.add
            edge_rows = [
                record
                for record in edge_rows
                if record[0] not in seen and not add(record[0])
            ]
        nodes = self._freeze_block("nodes", self._nodes)
        edges = self._freeze_block("edges", edge_rows, endpoint_token)
        return ElementBatch(nodes, edges, self.interner)


# ----------------------------------------------------------------------
# Columnar change-set grouping (the streaming-reader backbone)
# ----------------------------------------------------------------------

#: One raw node row: ``(node_id, labelset_id, keyset_id, values)``.
NodeRow = tuple[str, int, int, tuple]
#: One raw edge row: ``(edge_id, src, tgt, labelset_id, keyset_id, values)``.
EdgeRow = tuple[str, str, str, int, int, tuple]


def columnar_changesets_from_rows(
    rows: Iterable[tuple[str, tuple]],
    batch_size: int = 1000,
    interner: Interner | None = None,
) -> Iterator[ChangeSet]:
    """Group a raw row stream into endpoint-complete columnar change-sets.

    The columnar analogue of
    :func:`repro.graph.changes.changesets_from_elements`: ``rows`` yields
    ``("n", NodeRow)`` and ``("e", EdgeRow)`` tuples in stream order;
    change-sets of at most ``batch_size`` fresh rows are emitted with an
    :class:`ElementBatch` payload, edges referencing earlier nodes ship
    stub rows marked in ``stub_node_ids``, and out-of-order edges are
    buffered until their endpoints appear (a missing endpoint raises
    :class:`DanglingEdgeError` at end of stream).  Memory holds one
    compact record per distinct node id -- never a dataclass.
    """
    if batch_size < 1:
        raise ConfigurationError(f"batch_size must be >= 1, got {batch_size}")
    interner = interner or _GLOBAL
    directory: dict[str, tuple[int, int, tuple]] = {}
    pending: list[EdgeRow] = []
    # The draft state is kept in plain locals (lists + index dict) rather
    # than a BatchBuilder: this loop runs once per element and per-row
    # method dispatch is measurable at ingest rates.
    node_rows: list[NodeRow] = []
    node_index: dict[str, int] = {}
    edge_rows: list[EdgeRow] = []
    stubs: set[str] = set()
    fresh = 0

    directory_get = directory.get

    def resolve(edge_row: EdgeRow) -> bool:
        """Place ``edge_row`` iff both endpoints are known."""
        source_id, target_id = edge_row[1], edge_row[2]
        source_record = directory_get(source_id)
        if source_record is None:
            return False
        target_record = directory_get(target_id)
        if target_record is None:
            return False
        if source_id not in node_index:
            node_index[source_id] = len(node_rows)
            node_rows.append((source_id, *source_record))
            stubs.add(source_id)
        if target_id not in node_index:
            node_index[target_id] = len(node_rows)
            node_rows.append((target_id, *target_record))
            stubs.add(target_id)
        edge_rows.append(edge_row)
        return True

    def flush() -> ChangeSet:
        nonlocal node_rows, node_index, edge_rows, stubs, fresh
        builder = BatchBuilder(interner)
        builder._nodes = node_rows
        builder._node_index = node_index
        builder._edges = edge_rows
        change_set = ChangeSet(
            columnar=builder.freeze(), stub_node_ids=frozenset(stubs)
        )
        node_rows, node_index, edge_rows = [], {}, []
        stubs = set()
        fresh = 0
        return change_set

    for kind, row in rows:
        if kind == "n":
            node_id = row[0]
            record = (row[1], row[2], row[3])
            directory[node_id] = record
            position = node_index.get(node_id)
            if position is not None:
                # Already shipped as a stub (or duplicated) in this
                # batch; the real insert supersedes both copy and flag.
                stubs.discard(node_id)
                node_rows[position] = row
            else:
                node_index[node_id] = len(node_rows)
                node_rows.append(row)
            fresh += 1
        else:
            if resolve(row):
                fresh += 1
            else:
                pending.append(row)
        if fresh >= batch_size:
            pending = [edge_row for edge_row in pending if not resolve(edge_row)]
            yield flush()

    pending = [edge_row for edge_row in pending if not resolve(edge_row)]
    if pending:
        missing = sorted(
            {
                endpoint
                for edge_row in pending
                for endpoint in (edge_row[1], edge_row[2])
                if endpoint not in directory
            }
        )
        raise DanglingEdgeError(
            f"{len(pending)} edge(s) reference node ids absent from the "
            f"stream (first few: {missing[:5]})"
        )
    if node_rows or edge_rows:
        yield flush()


# ----------------------------------------------------------------------
# Sharded partitioning over the id column
# ----------------------------------------------------------------------
def partition_columnar(
    partitioner: "HashPartitioner",
    change_set: ChangeSet,
    node_lookup: Mapping[str, tuple[int, int, tuple]] | None = None,
    record_cache: dict[str, tuple[int, int, tuple]] | None = None,
) -> dict[int, ChangeSet]:
    """Split a columnar change-set into per-shard columnar change-sets.

    The columnar analogue of
    :meth:`repro.graph.changes.HashPartitioner.partition`: node rows
    route by ``stable_shard(node_id)``, edge rows by their edge id, and
    cross-shard endpoints travel as stub rows (taken from the batch
    itself or from ``node_lookup``, the sharded session's compact node
    registry), marked in ``stub_node_ids``.  Node deletions broadcast,
    edge deletions route to the owner shard.  ``record_cache`` may carry
    pre-built compact records for this batch's node ids (the sharded
    session builds them for its registry anyway); missing entries are
    materialised on demand.
    """
    batch = change_set.columnar
    shard_of = partitioner.shard_of
    builders: dict[int, BatchBuilder] = {}
    stubs: dict[int, set[str]] = {}
    drafts: dict[int, _ShardDraft] = {}

    def builder(shard: int) -> BatchBuilder:
        existing = builders.get(shard)
        if existing is None:
            existing = builders[shard] = BatchBuilder(batch.interner)
            stubs[shard] = set()
        return existing

    in_batch: dict[str, int] = {
        node_id: row for row, node_id in enumerate(batch.nodes.ids)
    }
    if record_cache is None:
        record_cache = {}

    def record_of(node_id: str) -> tuple[int, int, tuple] | None:
        record = record_cache.get(node_id)
        if record is None:
            row = in_batch.get(node_id)
            if row is not None:
                record = batch.node_record(row)
            elif node_lookup is not None:
                record = node_lookup.get(node_id)
            if record is not None:
                record_cache[node_id] = record
        return record

    for row, node_id in enumerate(batch.nodes.ids):
        shard = shard_of(node_id)
        part = builder(shard)
        record = record_of(node_id)
        part.add_node(node_id, *record)
        if node_id in change_set.stub_node_ids:
            stubs[shard].add(node_id)

    edge_block = batch.edges
    for row, edge_id in enumerate(edge_block.ids):
        shard = shard_of(edge_id)
        part = builder(shard)
        for endpoint_id in (
            edge_block.source_ids[row],
            edge_block.target_ids[row],
        ):
            if part.has_node(endpoint_id):
                continue
            record = record_of(endpoint_id)
            if record is None:
                raise DanglingEdgeError(
                    f"change-set edge {edge_id!r} references node "
                    f"{endpoint_id!r}, which is neither in the change-set "
                    "nor known to the partitioner's node lookup"
                )
            part.add_node(endpoint_id, *record)
            stubs[shard].add(endpoint_id)
        part.add_edge(edge_id, *batch.edge_record(row))

    if change_set.delete_nodes:
        for shard in range(partitioner.n_shards):
            draft = drafts.get(shard)
            if draft is None:
                draft = drafts[shard] = _ShardDraft()
            draft.delete_nodes.extend(change_set.delete_nodes)
    for edge_id in change_set.delete_edges:
        shard = shard_of(edge_id)
        draft = drafts.get(shard)
        if draft is None:
            draft = drafts[shard] = _ShardDraft()
        draft.delete_edges.append(edge_id)

    parts: dict[int, ChangeSet] = {}
    for shard in sorted(set(builders) | set(drafts)):
        part_builder = builders.get(shard)
        draft = drafts.get(shard)
        columnar = (
            part_builder.freeze()
            if part_builder is not None
            and (part_builder.node_count or part_builder.edge_count)
            else None
        )
        delete_nodes = list(draft.delete_nodes) if draft is not None else []
        delete_edges = list(draft.delete_edges) if draft is not None else []
        if columnar is None and not delete_nodes and not delete_edges:
            continue
        parts[shard] = ChangeSet(
            delete_nodes=delete_nodes,
            delete_edges=delete_edges,
            stub_node_ids=frozenset(stubs.get(shard, ())),
            columnar=columnar,
        )
    return parts


__all__ = [
    "BatchBuilder",
    "ColumnarElements",
    "ElementBatch",
    "ElementSignature",
    "Interner",
    "KeySet",
    "LabelSet",
    "SignatureStore",
    "TokenPattern",
    "ValueColumn",
    "columnar_changesets_from_rows",
    "global_interner",
    "partition_columnar",
    "value_shapes",
]

"""A small declarative query layer over :class:`~repro.graph.store.GraphStore`.

The discovery pipeline loads data with "a single query" (section 4.1); user
code and examples also need targeted lookups.  This module provides a fluent
matcher in the spirit of Cypher's ``MATCH (n:Label {key: value})`` without a
full query language:

    >>> q = NodeQuery(store).with_label("Person").where("age", lambda v: v > 30)
    >>> adults = q.all()

Both node and edge queries narrow candidate sets through the store indexes
first (labels, property keys) and only then apply residual predicates, so
selective queries never perform a full scan.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator
from typing import Any

from repro.graph.model import Edge, Node
from repro.graph.store import GraphStore

Predicate = Callable[[Any], bool]


class _BaseQuery:
    """Shared plumbing of node and edge queries."""

    def __init__(self, store: GraphStore) -> None:
        self._store = store
        self._labels: list[str] = []
        self._unlabeled_only = False
        self._required_keys: list[str] = []
        self._predicates: list[tuple[str, Predicate]] = []
        self._limit: int | None = None

    def _matches_properties(self, element: Node | Edge) -> bool:
        for key in self._required_keys:
            if key not in element.properties:
                return False
        for key, predicate in self._predicates:
            if key not in element.properties:
                return False
            if not predicate(element.properties[key]):
                return False
        return True

    def _matches_labels(self, element: Node | Edge) -> bool:
        if self._unlabeled_only:
            return not element.labels
        return all(label in element.labels for label in self._labels)


class NodeQuery(_BaseQuery):
    """Fluent node matcher; every refinement returns ``self`` for chaining."""

    def with_label(self, *labels: str) -> "NodeQuery":
        """Require all of ``labels`` to be present on matched nodes."""
        self._labels.extend(labels)
        return self

    def unlabeled(self) -> "NodeQuery":
        """Match only nodes with an empty label set."""
        self._unlabeled_only = True
        return self

    def has_property(self, *keys: str) -> "NodeQuery":
        """Require all of ``keys`` to be present on matched nodes."""
        self._required_keys.extend(keys)
        return self

    def where(self, key: str, predicate: Predicate) -> "NodeQuery":
        """Require property ``key`` to exist and satisfy ``predicate``."""
        self._predicates.append((key, predicate))
        return self

    def where_equals(self, key: str, value: Any) -> "NodeQuery":
        """Require property ``key`` to equal ``value``."""
        return self.where(key, lambda v, _value=value: v == _value)

    def limit(self, count: int) -> "NodeQuery":
        """Stop after ``count`` results."""
        self._limit = count
        return self

    def _candidates(self) -> Iterator[Node]:
        if self._unlabeled_only:
            yield from self._store.unlabeled_nodes()
        elif self._labels:
            yield from self._store.nodes_with_label(self._labels[0])
        elif self._required_keys:
            yield from self._store.nodes_with_property(self._required_keys[0])
        else:
            yield from self._store.scan_nodes()

    def __iter__(self) -> Iterator[Node]:
        emitted = 0
        for node in self._candidates():
            if self._limit is not None and emitted >= self._limit:
                return
            if self._matches_labels(node) and self._matches_properties(node):
                emitted += 1
                yield node

    def all(self) -> list[Node]:
        """Materialise every match."""
        return list(self)

    def first(self) -> Node | None:
        """The first match, or None."""
        for node in self:
            return node
        return None

    def count(self) -> int:
        """Number of matches."""
        return sum(1 for _ in self)


class EdgeQuery(_BaseQuery):
    """Fluent edge matcher, including endpoint-label constraints."""

    def __init__(self, store: GraphStore) -> None:
        super().__init__(store)
        self._source_labels: list[str] = []
        self._target_labels: list[str] = []

    def with_label(self, *labels: str) -> "EdgeQuery":
        """Require all of ``labels`` on matched edges."""
        self._labels.extend(labels)
        return self

    def unlabeled(self) -> "EdgeQuery":
        """Match only edges with an empty label set."""
        self._unlabeled_only = True
        return self

    def has_property(self, *keys: str) -> "EdgeQuery":
        """Require all of ``keys`` on matched edges."""
        self._required_keys.extend(keys)
        return self

    def where(self, key: str, predicate: Predicate) -> "EdgeQuery":
        """Require property ``key`` to exist and satisfy ``predicate``."""
        self._predicates.append((key, predicate))
        return self

    def where_equals(self, key: str, value: Any) -> "EdgeQuery":
        """Require property ``key`` to equal ``value``."""
        return self.where(key, lambda v, _value=value: v == _value)

    def from_label(self, *labels: str) -> "EdgeQuery":
        """Require the source node to carry all of ``labels``."""
        self._source_labels.extend(labels)
        return self

    def to_label(self, *labels: str) -> "EdgeQuery":
        """Require the target node to carry all of ``labels``."""
        self._target_labels.extend(labels)
        return self

    def limit(self, count: int) -> "EdgeQuery":
        """Stop after ``count`` results."""
        self._limit = count
        return self

    def _candidates(self) -> Iterator[Edge]:
        if self._unlabeled_only:
            yield from self._store.unlabeled_edges()
        elif self._labels:
            yield from self._store.edges_with_label(self._labels[0])
        elif self._required_keys:
            yield from self._store.edges_with_property(self._required_keys[0])
        else:
            yield from self._store.scan_edges()

    def _matches_endpoints(self, edge: Edge) -> bool:
        if not self._source_labels and not self._target_labels:
            return True
        source_labels, target_labels = self._store.endpoint_labels(edge)
        if any(label not in source_labels for label in self._source_labels):
            return False
        if any(label not in target_labels for label in self._target_labels):
            return False
        return True

    def __iter__(self) -> Iterator[Edge]:
        emitted = 0
        for edge in self._candidates():
            if self._limit is not None and emitted >= self._limit:
                return
            if (
                self._matches_labels(edge)
                and self._matches_properties(edge)
                and self._matches_endpoints(edge)
            ):
                emitted += 1
                yield edge

    def all(self) -> list[Edge]:
        """Materialise every match."""
        return list(self)

    def first(self) -> Edge | None:
        """The first match, or None."""
        for edge in self:
            return edge
        return None

    def count(self) -> int:
        """Number of matches."""
        return sum(1 for _ in self)


def query_nodes(store: GraphStore) -> NodeQuery:
    """Start a node query against ``store``."""
    return NodeQuery(store)


def query_edges(store: GraphStore) -> EdgeQuery:
    """Start an edge query against ``store``."""
    return EdgeQuery(store)

"""JSON-lines import/export for property graphs.

One JSON object per line, tagged with ``"kind": "node" | "edge"``.  JSON
preserves scalar types exactly, so this format round-trips graphs without
the re-inference the CSV path needs.  It is also the on-disk format the
incremental examples use to simulate an ingest stream.
:func:`iter_changesets_jsonl` turns the same file into a change feed
without ever assembling a full graph in memory.
"""

from __future__ import annotations

import json
from collections.abc import Iterable, Iterator
from pathlib import Path

from repro.errors import SerializationError
from repro.graph.changes import ChangeSet, changesets_from_elements
from repro.graph.columnar import (
    Interner,
    columnar_changesets_from_rows,
    global_interner,
)
from repro.graph.model import Edge, Node, PropertyGraph


def node_to_record(node: Node) -> dict:
    """JSON-serialisable record for a node."""
    return {
        "kind": "node",
        "id": node.node_id,
        "labels": sorted(node.labels),
        "properties": dict(node.properties),
    }


def edge_to_record(edge: Edge) -> dict:
    """JSON-serialisable record for an edge."""
    return {
        "kind": "edge",
        "id": edge.edge_id,
        "source": edge.source_id,
        "target": edge.target_id,
        "labels": sorted(edge.labels),
        "properties": dict(edge.properties),
    }


def record_to_element(record: dict) -> Node | Edge:
    """Inverse of the ``*_to_record`` functions."""
    kind = record.get("kind")
    if kind == "node":
        return Node(
            record["id"],
            frozenset(record.get("labels", ())),
            record.get("properties", {}),
        )
    if kind == "edge":
        return Edge(
            record["id"],
            record["source"],
            record["target"],
            frozenset(record.get("labels", ())),
            record.get("properties", {}),
        )
    raise SerializationError(f"unknown record kind: {kind!r}")


def write_graph_jsonl(graph: PropertyGraph, path: str | Path) -> Path:
    """Write ``graph`` as JSON lines (nodes first, then edges)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as handle:
        for node in graph.nodes():
            handle.write(json.dumps(node_to_record(node)) + "\n")
        for edge in graph.edges():
            handle.write(json.dumps(edge_to_record(edge)) + "\n")
    return path


def iter_graph_jsonl(path: str | Path) -> Iterator[Node | Edge]:
    """Stream elements back from a JSON-lines file."""
    path = Path(path)
    with path.open() as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise SerializationError(
                    f"{path}:{line_number}: invalid JSON ({exc})"
                ) from exc
            yield record_to_element(record)


def iter_changesets_jsonl(
    path: str | Path, batch_size: int = 1000
) -> Iterator[ChangeSet]:
    """Stream a JSON-lines file as endpoint-complete insert change-sets.

    Feeds large datasets straight into a :class:`SchemaSession` or
    :class:`ShardedSchemaSession` without materialising a full
    :class:`PropertyGraph`: elements stream off disk, edges referencing
    nodes from earlier change-sets ship stub copies (marked in
    ``stub_node_ids``), and memory holds one node per distinct id but no
    edges or adjacency (see
    :func:`repro.graph.changes.changesets_from_elements`).
    """
    return changesets_from_elements(iter_graph_jsonl(path), batch_size)


def columnar_rows_from_records(
    records: Iterable[dict], interner: Interner | None = None
) -> Iterator[tuple[str, tuple]]:
    """Intern JSON records into raw columnar rows (no element objects).

    The record -> row step shared by :func:`iter_columnar_changesets_jsonl`
    and anything holding decoded records in memory.  Label lists and
    property-key shapes repeat massively in real exports, so both intern
    through per-stream caches -- one dict hit per record, with the key
    sort paid once per distinct *as-written* key order.
    """
    interner = interner or global_interner()
    label_cache: dict[tuple, int] = {}
    keyset_cache: dict[tuple[str, ...], tuple[int, tuple[str, ...]]] = {}
    for record in records:
        kind = record.get("kind")
        labels = tuple(record.get("labels", ()))
        labelset_id = label_cache.get(labels)
        if labelset_id is None:
            labelset_id = interner.intern_labels(labels)
            label_cache[labels] = labelset_id
        properties = record.get("properties", {})
        raw_keys = tuple(properties)
        cached = keyset_cache.get(raw_keys)
        if cached is None:
            sorted_keys = tuple(sorted(raw_keys))
            cached = (interner.intern_keys(sorted_keys), sorted_keys)
            keyset_cache[raw_keys] = cached
        keyset_id, sorted_keys = cached
        values = tuple([properties[key] for key in sorted_keys])
        if kind == "node":
            yield "n", (record["id"], labelset_id, keyset_id, values)
        elif kind == "edge":
            yield "e", (
                record["id"],
                record["source"],
                record["target"],
                labelset_id,
                keyset_id,
                values,
            )
        else:
            raise SerializationError(f"unknown record kind: {kind!r}")


def _iter_records_jsonl(path: Path) -> Iterator[dict]:
    """Decode one JSON record per line (blank lines skipped)."""
    loads = json.loads
    with path.open() as handle:
        for line_number, line in enumerate(handle, start=1):
            try:
                yield loads(line)
            except json.JSONDecodeError as exc:
                if not line.strip():
                    continue
                raise SerializationError(
                    f"{path}:{line_number}: invalid JSON ({exc})"
                ) from exc


def _iter_rows_jsonl(
    path: Path, interner: Interner
) -> Iterator[tuple[str, tuple]]:
    """Stream interned columnar rows from a JSON-lines file."""
    return columnar_rows_from_records(_iter_records_jsonl(path), interner)


def iter_columnar_changesets_jsonl(
    path: str | Path,
    batch_size: int = 1000,
    interner: Interner | None = None,
) -> Iterator[ChangeSet]:
    """Stream a JSON-lines file as *columnar* insert change-sets.

    The zero-copy counterpart of :func:`iter_changesets_jsonl`: records
    intern straight into :class:`~repro.graph.columnar.ElementBatch`
    payloads and no :class:`Node`/:class:`Edge` dataclass is ever
    instantiated.  Stub shipping, edge buffering, and memory behaviour
    mirror the element-wise reader.
    """
    interner = interner or global_interner()
    return columnar_changesets_from_rows(
        _iter_rows_jsonl(Path(path), interner), batch_size, interner
    )


def read_graph_jsonl(path: str | Path, name: str = "jsonl-graph") -> PropertyGraph:
    """Load a whole graph from a JSON-lines file.

    Edges may appear before their endpoints in the file; they are buffered
    and inserted once all nodes are known.
    """
    graph = PropertyGraph(name)
    pending_edges: list[Edge] = []
    for element in iter_graph_jsonl(path):
        if isinstance(element, Node):
            graph.add_node(element)
        else:
            pending_edges.append(element)
    for edge in pending_edges:
        graph.add_edge(edge)
    return graph


def graph_from_elements(
    elements: Iterable[Node | Edge], name: str = "graph"
) -> PropertyGraph:
    """Build a graph from any element iterable (edges buffered as above)."""
    graph = PropertyGraph(name)
    pending: list[Edge] = []
    for element in elements:
        if isinstance(element, Node):
            graph.add_node(element)
        else:
            pending.append(element)
    for edge in pending:
        graph.add_edge(edge)
    return graph


#: Module-local alias: ``json_io.iter_changesets(path, batch_size)``.
iter_changesets = iter_changesets_jsonl

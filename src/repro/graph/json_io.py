"""JSON-lines import/export for property graphs.

One JSON object per line, tagged with ``"kind": "node" | "edge"``.  JSON
preserves scalar types exactly, so this format round-trips graphs without
the re-inference the CSV path needs.  It is also the on-disk format the
incremental examples use to simulate an ingest stream.
:func:`iter_changesets_jsonl` turns the same file into a change feed
without ever assembling a full graph in memory.
"""

from __future__ import annotations

import json
from collections.abc import Iterable, Iterator
from pathlib import Path

from repro.errors import SerializationError
from repro.graph.changes import ChangeSet, changesets_from_elements
from repro.graph.model import Edge, Node, PropertyGraph


def node_to_record(node: Node) -> dict:
    """JSON-serialisable record for a node."""
    return {
        "kind": "node",
        "id": node.node_id,
        "labels": sorted(node.labels),
        "properties": dict(node.properties),
    }


def edge_to_record(edge: Edge) -> dict:
    """JSON-serialisable record for an edge."""
    return {
        "kind": "edge",
        "id": edge.edge_id,
        "source": edge.source_id,
        "target": edge.target_id,
        "labels": sorted(edge.labels),
        "properties": dict(edge.properties),
    }


def record_to_element(record: dict) -> Node | Edge:
    """Inverse of the ``*_to_record`` functions."""
    kind = record.get("kind")
    if kind == "node":
        return Node(
            record["id"],
            frozenset(record.get("labels", ())),
            record.get("properties", {}),
        )
    if kind == "edge":
        return Edge(
            record["id"],
            record["source"],
            record["target"],
            frozenset(record.get("labels", ())),
            record.get("properties", {}),
        )
    raise SerializationError(f"unknown record kind: {kind!r}")


def write_graph_jsonl(graph: PropertyGraph, path: str | Path) -> Path:
    """Write ``graph`` as JSON lines (nodes first, then edges)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as handle:
        for node in graph.nodes():
            handle.write(json.dumps(node_to_record(node)) + "\n")
        for edge in graph.edges():
            handle.write(json.dumps(edge_to_record(edge)) + "\n")
    return path


def iter_graph_jsonl(path: str | Path) -> Iterator[Node | Edge]:
    """Stream elements back from a JSON-lines file."""
    path = Path(path)
    with path.open() as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise SerializationError(
                    f"{path}:{line_number}: invalid JSON ({exc})"
                ) from exc
            yield record_to_element(record)


def iter_changesets_jsonl(
    path: str | Path, batch_size: int = 1000
) -> Iterator[ChangeSet]:
    """Stream a JSON-lines file as endpoint-complete insert change-sets.

    Feeds large datasets straight into a :class:`SchemaSession` or
    :class:`ShardedSchemaSession` without materialising a full
    :class:`PropertyGraph`: elements stream off disk, edges referencing
    nodes from earlier change-sets ship stub copies (marked in
    ``stub_node_ids``), and memory holds one node per distinct id but no
    edges or adjacency (see
    :func:`repro.graph.changes.changesets_from_elements`).
    """
    return changesets_from_elements(iter_graph_jsonl(path), batch_size)


def read_graph_jsonl(path: str | Path, name: str = "jsonl-graph") -> PropertyGraph:
    """Load a whole graph from a JSON-lines file.

    Edges may appear before their endpoints in the file; they are buffered
    and inserted once all nodes are known.
    """
    graph = PropertyGraph(name)
    pending_edges: list[Edge] = []
    for element in iter_graph_jsonl(path):
        if isinstance(element, Node):
            graph.add_node(element)
        else:
            pending_edges.append(element)
    for edge in pending_edges:
        graph.add_edge(edge)
    return graph


def graph_from_elements(
    elements: Iterable[Node | Edge], name: str = "graph"
) -> PropertyGraph:
    """Build a graph from any element iterable (edges buffered as above)."""
    graph = PropertyGraph(name)
    pending: list[Edge] = []
    for element in elements:
        if isinstance(element, Node):
            graph.add_node(element)
        else:
            pending.append(element)
    for edge in pending:
        graph.add_edge(edge)
    return graph


#: Module-local alias: ``json_io.iter_changesets(path, batch_size)``.
iter_changesets = iter_changesets_jsonl

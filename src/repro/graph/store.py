"""In-memory property-graph storage engine.

This is the reproduction's substitute for Neo4j (section 5 "Setup"): a
single-process store that keeps a :class:`~repro.graph.model.PropertyGraph`
together with secondary indexes so the discovery pipeline can issue the same
kinds of requests it would send to a graph database:

* full scans of nodes/edges with labels and properties ("a single query to
  ensure similar structure", section 4.1),
* label and property-key lookups,
* per-source / per-target distinct-endpoint counts for cardinality
  inference (section 4.4).

Indexes are maintained incrementally on write, so reads never rescan.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterable, Iterator

from repro.errors import MissingElementError
from repro.graph.model import Edge, Node, PropertyGraph


class _LabelIndex:
    """label -> set of element ids (one instance for nodes, one for edges)."""

    def __init__(self) -> None:
        self._by_label: dict[str, set[str]] = defaultdict(set)
        self._unlabeled: set[str] = set()

    def add(self, element_id: str, labels: frozenset[str]) -> None:
        if not labels:
            self._unlabeled.add(element_id)
            return
        for label in labels:
            self._by_label[label].add(element_id)

    def remove(self, element_id: str, labels: frozenset[str]) -> None:
        if not labels:
            self._unlabeled.discard(element_id)
            return
        for label in labels:
            bucket = self._by_label.get(label)
            if bucket is not None:
                bucket.discard(element_id)
                if not bucket:
                    del self._by_label[label]

    def with_label(self, label: str) -> set[str]:
        return set(self._by_label.get(label, ()))

    def unlabeled(self) -> set[str]:
        return set(self._unlabeled)

    def labels(self) -> list[str]:
        return sorted(self._by_label)


class _PropertyKeyIndex:
    """property key -> set of element ids carrying that key."""

    def __init__(self) -> None:
        self._by_key: dict[str, set[str]] = defaultdict(set)

    def add(self, element_id: str, keys: Iterable[str]) -> None:
        for key in keys:
            self._by_key[key].add(element_id)

    def remove(self, element_id: str, keys: Iterable[str]) -> None:
        for key in keys:
            bucket = self._by_key.get(key)
            if bucket is not None:
                bucket.discard(element_id)
                if not bucket:
                    del self._by_key[key]

    def with_key(self, key: str) -> set[str]:
        return set(self._by_key.get(key, ()))

    def keys(self) -> list[str]:
        return sorted(self._by_key)


class GraphStore:
    """Indexed storage over a :class:`PropertyGraph`.

    The store owns its graph; mutate through the store so indexes stay
    consistent.  Construction from an existing graph bulk-loads the indexes.
    """

    def __init__(self, graph: PropertyGraph | None = None, name: str = "store") -> None:
        self.name = name
        self._graph = PropertyGraph(name)
        self._node_labels = _LabelIndex()
        self._edge_labels = _LabelIndex()
        self._node_props = _PropertyKeyIndex()
        self._edge_props = _PropertyKeyIndex()
        if graph is not None:
            self.load(graph)

    # ------------------------------------------------------------------
    # Bulk loading
    # ------------------------------------------------------------------
    def load(self, graph: PropertyGraph) -> "GraphStore":
        """Bulk-insert every element of ``graph`` into the store."""
        for node in graph.nodes():
            self.add_node(node)
        for edge in graph.edges():
            self.add_edge(edge)
        return self

    # ------------------------------------------------------------------
    # Writes (index-maintaining)
    # ------------------------------------------------------------------
    def add_node(self, node: Node) -> Node:
        """Insert a node and index its labels and property keys."""
        self._graph.add_node(node)
        self._node_labels.add(node.node_id, node.labels)
        self._node_props.add(node.node_id, node.properties)
        return node

    def add_edge(self, edge: Edge) -> Edge:
        """Insert an edge and index its labels and property keys."""
        self._graph.add_edge(edge)
        self._edge_labels.add(edge.edge_id, edge.labels)
        self._edge_props.add(edge.edge_id, edge.properties)
        return edge

    def update_node(self, node: Node) -> Node:
        """Replace an existing node, reindexing labels/keys."""
        old = self._graph.node(node.node_id)
        self._node_labels.remove(old.node_id, old.labels)
        self._node_props.remove(old.node_id, old.properties.keys())
        self._graph.put_node(node)
        self._node_labels.add(node.node_id, node.labels)
        self._node_props.add(node.node_id, node.properties)
        return node

    def remove_node(self, node_id: str) -> None:
        """Remove a node plus incident edges, updating every index."""
        node = self._graph.node(node_id)
        for edge in list(self._graph.out_edges(node_id)) + list(
            self._graph.in_edges(node_id)
        ):
            if self._graph.has_edge(edge.edge_id):
                self.remove_edge(edge.edge_id)
        self._node_labels.remove(node_id, node.labels)
        self._node_props.remove(node_id, node.properties.keys())
        self._graph.remove_node(node_id)

    def remove_edge(self, edge_id: str) -> None:
        """Remove an edge, updating every index."""
        edge = self._graph.edge(edge_id)
        self._edge_labels.remove(edge_id, edge.labels)
        self._edge_props.remove(edge_id, edge.properties.keys())
        self._graph.remove_edge(edge_id)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    @property
    def graph(self) -> PropertyGraph:
        """The underlying graph (treat as read-only)."""
        return self._graph

    def node(self, node_id: str) -> Node:
        """Fetch one node by id."""
        return self._graph.node(node_id)

    def edge(self, edge_id: str) -> Edge:
        """Fetch one edge by id."""
        return self._graph.edge(edge_id)

    def scan_nodes(self) -> Iterator[Node]:
        """Full node scan in insertion order (the section 4.1 load query)."""
        return self._graph.nodes()

    def scan_edges(self) -> Iterator[Edge]:
        """Full edge scan in insertion order (the section 4.1 load query)."""
        return self._graph.edges()

    @property
    def node_count(self) -> int:
        """Number of stored nodes."""
        return self._graph.node_count

    @property
    def edge_count(self) -> int:
        """Number of stored edges."""
        return self._graph.edge_count

    # ------------------------------------------------------------------
    # Index-backed lookups
    # ------------------------------------------------------------------
    def nodes_with_label(self, label: str) -> list[Node]:
        """All nodes carrying ``label`` (order: ascending node id)."""
        ids = sorted(self._node_labels.with_label(label))
        return [self._graph.node(node_id) for node_id in ids]

    def edges_with_label(self, label: str) -> list[Edge]:
        """All edges carrying ``label`` (order: ascending edge id)."""
        ids = sorted(self._edge_labels.with_label(label))
        return [self._graph.edge(edge_id) for edge_id in ids]

    def unlabeled_nodes(self) -> list[Node]:
        """All nodes with an empty label set."""
        return [self._graph.node(i) for i in sorted(self._node_labels.unlabeled())]

    def unlabeled_edges(self) -> list[Edge]:
        """All edges with an empty label set."""
        return [self._graph.edge(i) for i in sorted(self._edge_labels.unlabeled())]

    def nodes_with_property(self, key: str) -> list[Node]:
        """All nodes carrying property ``key``."""
        return [self._graph.node(i) for i in sorted(self._node_props.with_key(key))]

    def edges_with_property(self, key: str) -> list[Edge]:
        """All edges carrying property ``key``."""
        return [self._graph.edge(i) for i in sorted(self._edge_props.with_key(key))]

    def node_labels(self) -> list[str]:
        """Sorted distinct node labels."""
        return self._node_labels.labels()

    def edge_labels(self) -> list[str]:
        """Sorted distinct edge labels."""
        return self._edge_labels.labels()

    def node_property_keys(self) -> list[str]:
        """Sorted distinct node property keys."""
        return self._node_props.keys()

    def edge_property_keys(self) -> list[str]:
        """Sorted distinct edge property keys."""
        return self._edge_props.keys()

    # ------------------------------------------------------------------
    # Degree aggregates (cardinality inference, section 4.4)
    # ------------------------------------------------------------------
    def out_degree(self, node_id: str) -> int:
        """Outgoing-edge count for ``node_id``."""
        return self._graph.out_degree(node_id)

    def in_degree(self, node_id: str) -> int:
        """Incoming-edge count for ``node_id``."""
        return self._graph.in_degree(node_id)

    def endpoint_labels(self, edge: Edge) -> tuple[frozenset[str], frozenset[str]]:
        """Label sets of an edge's source and target nodes."""
        try:
            source = self._graph.node(edge.source_id)
            target = self._graph.node(edge.target_id)
        except MissingElementError:  # pragma: no cover - add_edge forbids this
            raise
        return source.labels, target.labels

    def __repr__(self) -> str:
        return (
            f"GraphStore(name={self.name!r}, nodes={self.node_count}, "
            f"edges={self.edge_count})"
        )

"""In-memory property-graph storage engine.

This is the reproduction's substitute for Neo4j (section 5 "Setup"): a
single-process store that keeps a :class:`~repro.graph.model.PropertyGraph`
together with secondary indexes so the discovery pipeline can issue the same
kinds of requests it would send to a graph database:

* full scans of nodes/edges with labels and properties ("a single query to
  ensure similar structure", section 4.1),
* label and property-key lookups,
* per-source / per-target distinct-endpoint counts for cardinality
  inference (section 4.4).

Indexes are maintained incrementally on write, so reads never rescan.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterable, Iterator

from repro.errors import ConfigurationError, MissingElementError
from repro.graph.changes import ChangeSet
from repro.graph.model import Edge, Node, PropertyGraph


class _LabelIndex:
    """label -> set of element ids (one instance for nodes, one for edges)."""

    def __init__(self) -> None:
        self._by_label: dict[str, set[str]] = defaultdict(set)
        self._unlabeled: set[str] = set()

    def add(self, element_id: str, labels: frozenset[str]) -> None:
        if not labels:
            self._unlabeled.add(element_id)
            return
        for label in labels:
            self._by_label[label].add(element_id)

    def remove(self, element_id: str, labels: frozenset[str]) -> None:
        if not labels:
            self._unlabeled.discard(element_id)
            return
        for label in labels:
            bucket = self._by_label.get(label)
            if bucket is not None:
                bucket.discard(element_id)
                if not bucket:
                    del self._by_label[label]

    def with_label(self, label: str) -> set[str]:
        return set(self._by_label.get(label, ()))

    def unlabeled(self) -> set[str]:
        return set(self._unlabeled)

    def labels(self) -> list[str]:
        return sorted(self._by_label)


class _PropertyKeyIndex:
    """property key -> set of element ids carrying that key."""

    def __init__(self) -> None:
        self._by_key: dict[str, set[str]] = defaultdict(set)

    def add(self, element_id: str, keys: Iterable[str]) -> None:
        for key in keys:
            self._by_key[key].add(element_id)

    def remove(self, element_id: str, keys: Iterable[str]) -> None:
        for key in keys:
            bucket = self._by_key.get(key)
            if bucket is not None:
                bucket.discard(element_id)
                if not bucket:
                    del self._by_key[key]

    def with_key(self, key: str) -> set[str]:
        return set(self._by_key.get(key, ()))

    def keys(self) -> list[str]:
        return sorted(self._by_key)


class GraphStore:
    """Indexed storage over a :class:`PropertyGraph`.

    The store owns its graph; mutate through the store so indexes stay
    consistent.  Construction from an existing graph bulk-loads the indexes.
    """

    def __init__(self, graph: PropertyGraph | None = None, name: str = "store") -> None:
        self.name = name
        self._graph = PropertyGraph(name)
        self._node_labels = _LabelIndex()
        self._edge_labels = _LabelIndex()
        self._node_props = _PropertyKeyIndex()
        self._edge_props = _PropertyKeyIndex()
        #: live change-feed consumer (see attach); mutations forward to it.
        self._session = None
        self._pending: ChangeSet | None = None
        self._flush_every = 1
        if graph is not None:
            self.load(graph)

    # ------------------------------------------------------------------
    # Live session attachment (change-feed forwarding)
    # ------------------------------------------------------------------
    def attach(self, session, flush_every: int = 1, replay: bool = False):
        """Feed every subsequent store mutation into ``session`` live.

        ``flush_every`` batches mutations into pending change-sets of up
        to that many operations before applying them (1 = apply each
        mutation immediately).  ``replay=True`` first applies the store's
        current contents as one insert batch, so a pre-loaded store and
        its session start in sync.  Deletions and updates forwarded to the
        session require it to retain the union graph.  Returns ``session``.
        """
        if self._session is not None:
            raise ConfigurationError(
                f"store {self.name!r} is already attached to a session; "
                "detach() first"
            )
        if flush_every < 1:
            raise ConfigurationError(
                f"flush_every must be >= 1, got {flush_every}"
            )
        self._session = session
        self._flush_every = flush_every
        self._pending = ChangeSet()
        session.bind_store(self)
        if replay and (self.node_count or self.edge_count):
            session.add_batch(self._graph)
        return session

    def detach(self) -> None:
        """Flush pending mutations and stop forwarding to the session."""
        if self._session is None:
            return
        self.flush()
        session = self._session
        self._session = None
        self._pending = None
        session.bind_store(None)

    def flush(self):
        """Apply buffered mutations now; returns the session's report.

        When the session refuses the change-set (e.g. deletions without a
        retained union graph) the buffer is restored, so the mutations --
        already committed to the store -- are not silently dropped.
        """
        if self._session is None or self._pending is None or self._pending.is_empty:
            return None
        pending, self._pending = self._pending, ChangeSet()
        try:
            return self._session.apply(pending)
        except Exception:
            self._pending = pending
            raise

    def _forward_inserts(self, nodes=(), edges=()) -> None:
        if self._session is None:
            return
        if self._pending.has_deletions:
            self.flush()  # keep the op order: deletes before later inserts
        self._pending.nodes.extend(nodes)
        self._pending.edges.extend(edges)
        self._maybe_flush()

    def _forward_deletions(self, node_ids=(), edge_ids=()) -> None:
        if self._session is None:
            return
        if self._pending.has_inserts:
            self.flush()  # keep the op order: inserts before later deletes
        self._pending.delete_nodes.extend(node_ids)
        self._pending.delete_edges.extend(edge_ids)
        self._maybe_flush()

    def _maybe_flush(self) -> None:
        if self._pending.change_count >= self._flush_every:
            self.flush()

    def _require_forwardable_deletion(self, operation: str) -> None:
        """Refuse un-forwardable mutations *before* touching the store.

        A session without a retained union graph cannot consume deletions
        (or updates, which replay as delete + reinsert); raising up front
        keeps the store and the session consistent instead of committing
        the mutation locally and then failing to forward it.
        """
        if self._session is not None and not self._session.retains_union:
            raise ConfigurationError(
                f"{operation} on a store attached to a session without a "
                "retained union graph cannot be forwarded; attach a session "
                "built with PGHiveConfig(retain_union=True), or detach() "
                "first"
            )

    # ------------------------------------------------------------------
    # Bulk loading
    # ------------------------------------------------------------------
    def load(self, graph: PropertyGraph) -> "GraphStore":
        """Bulk-insert every element of ``graph`` into the store."""
        for node in graph.nodes():
            self.add_node(node)
        for edge in graph.edges():
            self.add_edge(edge)
        return self

    # ------------------------------------------------------------------
    # Writes (index-maintaining)
    # ------------------------------------------------------------------
    def add_node(self, node: Node) -> Node:
        """Insert a node and index its labels and property keys."""
        self._graph.add_node(node)
        self._node_labels.add(node.node_id, node.labels)
        self._node_props.add(node.node_id, node.properties)
        self._forward_inserts(nodes=(node,))
        return node

    def add_edge(self, edge: Edge) -> Edge:
        """Insert an edge and index its labels and property keys."""
        self._graph.add_edge(edge)
        self._edge_labels.add(edge.edge_id, edge.labels)
        self._edge_props.add(edge.edge_id, edge.properties)
        self._forward_inserts(edges=(edge,))
        return edge

    def update_node(self, node: Node) -> Node:
        """Replace an existing node, reindexing labels/keys."""
        self._require_forwardable_deletion("update_node")
        old = self._graph.node(node.node_id)
        self._node_labels.remove(old.node_id, old.labels)
        self._node_props.remove(old.node_id, old.properties.keys())
        self._graph.put_node(node)
        self._node_labels.add(node.node_id, node.labels)
        self._node_props.add(node.node_id, node.properties)
        if self._session is not None:
            self._forward_node_update(node)
        return node

    def update_edge(self, edge: Edge) -> Edge:
        """Replace an existing edge, reindexing labels/keys.

        Endpoint changes are allowed; the graph's adjacency lists follow.
        Parity with :meth:`update_node` -- without this, edge property
        updates could not keep the label/property-key indexes consistent.
        """
        self._require_forwardable_deletion("update_edge")
        old = self._graph.edge(edge.edge_id)
        self._edge_labels.remove(old.edge_id, old.labels)
        self._edge_props.remove(old.edge_id, old.properties.keys())
        self._graph.put_edge(edge)
        self._edge_labels.add(edge.edge_id, edge.labels)
        self._edge_props.add(edge.edge_id, edge.properties)
        if self._session is not None:
            self.flush()
            self._session.apply(ChangeSet.deletions(edges=(edge.edge_id,)))
            self._session.apply(ChangeSet.inserts(edges=(edge,)))
        return edge

    def _forward_node_update(self, node: Node) -> None:
        """Replay a node replacement as delete + reinsert on the session.

        The schema cannot retract an already-folded observation, so an
        update deletes the stale instance (cascading its incident edges
        out of their types) and reinserts the new node together with the
        surviving incident edges.
        """
        self.flush()
        incident = {
            e.edge_id: e
            for e in (
                *self._graph.out_edges(node.node_id),
                *self._graph.in_edges(node.node_id),
            )
        }
        self._session.apply(ChangeSet.deletions(nodes=(node.node_id,)))
        self._session.apply(
            ChangeSet.inserts(nodes=(node,), edges=incident.values())
        )

    def remove_node(self, node_id: str) -> None:
        """Remove a node plus incident edges, updating every index."""
        self._require_forwardable_deletion("remove_node")
        node = self._graph.node(node_id)
        for edge in list(self._graph.out_edges(node_id)) + list(
            self._graph.in_edges(node_id)
        ):
            if self._graph.has_edge(edge.edge_id):
                self.remove_edge(edge.edge_id)
        self._node_labels.remove(node_id, node.labels)
        self._node_props.remove(node_id, node.properties.keys())
        self._graph.remove_node(node_id)
        self._forward_deletions(node_ids=(node_id,))

    def remove_edge(self, edge_id: str) -> None:
        """Remove an edge, updating every index."""
        self._require_forwardable_deletion("remove_edge")
        edge = self._graph.edge(edge_id)
        self._edge_labels.remove(edge_id, edge.labels)
        self._edge_props.remove(edge_id, edge.properties.keys())
        self._graph.remove_edge(edge_id)
        self._forward_deletions(edge_ids=(edge_id,))

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    @property
    def graph(self) -> PropertyGraph:
        """The underlying graph (treat as read-only)."""
        return self._graph

    def node(self, node_id: str) -> Node:
        """Fetch one node by id."""
        return self._graph.node(node_id)

    def edge(self, edge_id: str) -> Edge:
        """Fetch one edge by id."""
        return self._graph.edge(edge_id)

    def scan_nodes(self) -> Iterator[Node]:
        """Full node scan in insertion order (the section 4.1 load query)."""
        return self._graph.nodes()

    def scan_edges(self) -> Iterator[Edge]:
        """Full edge scan in insertion order (the section 4.1 load query)."""
        return self._graph.edges()

    @property
    def node_count(self) -> int:
        """Number of stored nodes."""
        return self._graph.node_count

    @property
    def edge_count(self) -> int:
        """Number of stored edges."""
        return self._graph.edge_count

    # ------------------------------------------------------------------
    # Index-backed lookups
    # ------------------------------------------------------------------
    def nodes_with_label(self, label: str) -> list[Node]:
        """All nodes carrying ``label`` (order: ascending node id)."""
        ids = sorted(self._node_labels.with_label(label))
        return [self._graph.node(node_id) for node_id in ids]

    def edges_with_label(self, label: str) -> list[Edge]:
        """All edges carrying ``label`` (order: ascending edge id)."""
        ids = sorted(self._edge_labels.with_label(label))
        return [self._graph.edge(edge_id) for edge_id in ids]

    def unlabeled_nodes(self) -> list[Node]:
        """All nodes with an empty label set."""
        return [self._graph.node(i) for i in sorted(self._node_labels.unlabeled())]

    def unlabeled_edges(self) -> list[Edge]:
        """All edges with an empty label set."""
        return [self._graph.edge(i) for i in sorted(self._edge_labels.unlabeled())]

    def nodes_with_property(self, key: str) -> list[Node]:
        """All nodes carrying property ``key``."""
        return [self._graph.node(i) for i in sorted(self._node_props.with_key(key))]

    def edges_with_property(self, key: str) -> list[Edge]:
        """All edges carrying property ``key``."""
        return [self._graph.edge(i) for i in sorted(self._edge_props.with_key(key))]

    def node_labels(self) -> list[str]:
        """Sorted distinct node labels."""
        return self._node_labels.labels()

    def edge_labels(self) -> list[str]:
        """Sorted distinct edge labels."""
        return self._edge_labels.labels()

    def node_property_keys(self) -> list[str]:
        """Sorted distinct node property keys."""
        return self._node_props.keys()

    def edge_property_keys(self) -> list[str]:
        """Sorted distinct edge property keys."""
        return self._edge_props.keys()

    # ------------------------------------------------------------------
    # Degree aggregates (cardinality inference, section 4.4)
    # ------------------------------------------------------------------
    def out_degree(self, node_id: str) -> int:
        """Outgoing-edge count for ``node_id``."""
        return self._graph.out_degree(node_id)

    def in_degree(self, node_id: str) -> int:
        """Incoming-edge count for ``node_id``."""
        return self._graph.in_degree(node_id)

    def endpoint_labels(self, edge: Edge) -> tuple[frozenset[str], frozenset[str]]:
        """Label sets of an edge's source and target nodes."""
        try:
            source = self._graph.node(edge.source_id)
            target = self._graph.node(edge.target_id)
        except MissingElementError:  # pragma: no cover - add_edge forbids this
            raise
        return source.labels, target.labels

    def __repr__(self) -> str:
        return (
            f"GraphStore(name={self.name!r}, nodes={self.node_count}, "
            f"edges={self.edge_count})"
        )

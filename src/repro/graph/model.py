"""Property-graph data model (Definition 3.1 of the paper).

A property graph is a tuple ``G = (V, E, rho, lambda, pi)`` where nodes and
edges are disjoint finite sets, ``rho`` maps each edge to an ordered pair of
nodes, ``lambda`` assigns finite label sets, and ``pi`` assigns key-value
properties.  :class:`PropertyGraph` realises exactly this model: a directed
multigraph whose nodes and edges both carry label *sets* (possibly empty) and
string-keyed property maps.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping
from dataclasses import dataclass, field
from typing import Any

from repro.errors import (
    DanglingEdgeError,
    DuplicateElementError,
    MissingElementError,
)

#: Property values are plain Python scalars (the datatypes the schema layer
#: can infer) -- strings, booleans, ints, floats, or None for explicit nulls.
PropertyValue = Any

NO_LABELS: frozenset[str] = frozenset()


def label_token(labels: Iterable[str]) -> str:
    """Return the canonical token for a label set.

    Multi-labelled elements are represented by the alphabetically sorted
    concatenation of their labels (section 4.1 of the paper), so that e.g.
    ``{Student, Person}`` and ``{Person, Student}`` map to the same token
    ``"Person+Student"``.  The empty label set maps to ``""``.
    """
    return "+".join(sorted(labels))


@dataclass(frozen=True, slots=True)
class Node:
    """A node: identifier, a (possibly empty) label set, and properties."""

    node_id: str
    labels: frozenset[str] = NO_LABELS
    properties: Mapping[str, PropertyValue] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not isinstance(self.labels, frozenset):
            object.__setattr__(self, "labels", frozenset(self.labels))
        object.__setattr__(self, "properties", dict(self.properties))

    @property
    def property_keys(self) -> frozenset[str]:
        """The set of property keys present on this node."""
        return frozenset(self.properties)

    @property
    def token(self) -> str:
        """Canonical label-combination token (see :func:`label_token`)."""
        return label_token(self.labels)

    def with_labels(self, labels: Iterable[str]) -> "Node":
        """Return a copy of this node with a replacement label set."""
        return Node(self.node_id, frozenset(labels), dict(self.properties))

    def with_properties(self, properties: Mapping[str, PropertyValue]) -> "Node":
        """Return a copy of this node with a replacement property map."""
        return Node(self.node_id, self.labels, dict(properties))


@dataclass(frozen=True, slots=True)
class Edge:
    """A directed edge between two node identifiers, with labels/properties."""

    edge_id: str
    source_id: str
    target_id: str
    labels: frozenset[str] = NO_LABELS
    properties: Mapping[str, PropertyValue] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not isinstance(self.labels, frozenset):
            object.__setattr__(self, "labels", frozenset(self.labels))
        object.__setattr__(self, "properties", dict(self.properties))

    @property
    def property_keys(self) -> frozenset[str]:
        """The set of property keys present on this edge."""
        return frozenset(self.properties)

    @property
    def token(self) -> str:
        """Canonical label-combination token (see :func:`label_token`)."""
        return label_token(self.labels)

    def endpoints(self) -> tuple[str, str]:
        """The ordered ``(source_id, target_id)`` pair (rho of Def. 3.1)."""
        return (self.source_id, self.target_id)

    def with_labels(self, labels: Iterable[str]) -> "Edge":
        """Return a copy of this edge with a replacement label set."""
        return Edge(
            self.edge_id,
            self.source_id,
            self.target_id,
            frozenset(labels),
            dict(self.properties),
        )

    def with_properties(self, properties: Mapping[str, PropertyValue]) -> "Edge":
        """Return a copy of this edge with a replacement property map."""
        return Edge(
            self.edge_id,
            self.source_id,
            self.target_id,
            self.labels,
            dict(properties),
        )


class PropertyGraph:
    """A directed multigraph of :class:`Node` and :class:`Edge` elements.

    The class maintains adjacency lists incrementally so that the degree
    queries needed for cardinality inference (section 4.4) are O(1) per
    node, and supports iteration in deterministic insertion order.
    """

    def __init__(self, name: str = "graph") -> None:
        self.name = name
        self._nodes: dict[str, Node] = {}
        self._edges: dict[str, Edge] = {}
        self._out: dict[str, list[str]] = {}
        self._in: dict[str, list[str]] = {}

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_node(self, node: Node) -> Node:
        """Insert ``node``; raise :class:`DuplicateElementError` if present."""
        if node.node_id in self._nodes:
            raise DuplicateElementError(f"node {node.node_id!r} already exists")
        self._nodes[node.node_id] = node
        self._out[node.node_id] = []
        self._in[node.node_id] = []
        return node

    def put_node(self, node: Node) -> Node:
        """Insert or replace ``node`` (labels/properties are overwritten)."""
        if node.node_id not in self._nodes:
            return self.add_node(node)
        self._nodes[node.node_id] = node
        return node

    def add_edge(self, edge: Edge) -> Edge:
        """Insert ``edge``; endpoints must already exist in the graph."""
        if edge.edge_id in self._edges:
            raise DuplicateElementError(f"edge {edge.edge_id!r} already exists")
        if edge.source_id not in self._nodes:
            raise DanglingEdgeError(
                f"edge {edge.edge_id!r}: unknown source {edge.source_id!r}"
            )
        if edge.target_id not in self._nodes:
            raise DanglingEdgeError(
                f"edge {edge.edge_id!r}: unknown target {edge.target_id!r}"
            )
        self._edges[edge.edge_id] = edge
        self._out[edge.source_id].append(edge.edge_id)
        self._in[edge.target_id].append(edge.edge_id)
        return edge

    def put_edge(self, edge: Edge) -> Edge:
        """Insert or replace ``edge``, keeping adjacency lists consistent.

        Replacement preserves the edge's position in insertion order; when
        the replacement moves an endpoint, the adjacency lists of the old
        and new endpoint nodes are updated.
        """
        existing = self._edges.get(edge.edge_id)
        if existing is None:
            return self.add_edge(edge)
        if edge.source_id not in self._nodes:
            raise DanglingEdgeError(
                f"edge {edge.edge_id!r}: unknown source {edge.source_id!r}"
            )
        if edge.target_id not in self._nodes:
            raise DanglingEdgeError(
                f"edge {edge.edge_id!r}: unknown target {edge.target_id!r}"
            )
        if existing.source_id != edge.source_id:
            self._out[existing.source_id].remove(edge.edge_id)
            self._out[edge.source_id].append(edge.edge_id)
        if existing.target_id != edge.target_id:
            self._in[existing.target_id].remove(edge.edge_id)
            self._in[edge.target_id].append(edge.edge_id)
        self._edges[edge.edge_id] = edge
        return edge

    def remove_node(self, node_id: str) -> None:
        """Remove a node and every edge incident to it."""
        node = self.node(node_id)
        for edge_id in list(self._out[node.node_id]) + list(self._in[node.node_id]):
            if edge_id in self._edges:
                self.remove_edge(edge_id)
        del self._nodes[node_id]
        del self._out[node_id]
        del self._in[node_id]

    def remove_edge(self, edge_id: str) -> None:
        """Remove an edge by identifier."""
        edge = self.edge(edge_id)
        self._out[edge.source_id].remove(edge_id)
        self._in[edge.target_id].remove(edge_id)
        del self._edges[edge_id]

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def node(self, node_id: str) -> Node:
        """Return the node with ``node_id`` or raise MissingElementError."""
        try:
            return self._nodes[node_id]
        except KeyError:
            raise MissingElementError(f"no node {node_id!r}") from None

    def edge(self, edge_id: str) -> Edge:
        """Return the edge with ``edge_id`` or raise MissingElementError."""
        try:
            return self._edges[edge_id]
        except KeyError:
            raise MissingElementError(f"no edge {edge_id!r}") from None

    def has_node(self, node_id: str) -> bool:
        """True if a node with ``node_id`` exists."""
        return node_id in self._nodes

    def has_edge(self, edge_id: str) -> bool:
        """True if an edge with ``edge_id`` exists."""
        return edge_id in self._edges

    # ------------------------------------------------------------------
    # Iteration and size
    # ------------------------------------------------------------------
    def nodes(self) -> Iterator[Node]:
        """Iterate over nodes in insertion order."""
        return iter(self._nodes.values())

    def edges(self) -> Iterator[Edge]:
        """Iterate over edges in insertion order."""
        return iter(self._edges.values())

    def node_ids(self) -> Iterator[str]:
        """Iterate over node identifiers in insertion order."""
        return iter(self._nodes)

    def edge_ids(self) -> Iterator[str]:
        """Iterate over edge identifiers in insertion order."""
        return iter(self._edges)

    @property
    def node_count(self) -> int:
        """Number of nodes."""
        return len(self._nodes)

    @property
    def edge_count(self) -> int:
        """Number of edges."""
        return len(self._edges)

    def __len__(self) -> int:
        return self.node_count + self.edge_count

    def __contains__(self, element_id: str) -> bool:
        return element_id in self._nodes or element_id in self._edges

    def __repr__(self) -> str:
        return (
            f"PropertyGraph(name={self.name!r}, nodes={self.node_count}, "
            f"edges={self.edge_count})"
        )

    # ------------------------------------------------------------------
    # Adjacency
    # ------------------------------------------------------------------
    def out_edges(self, node_id: str) -> list[Edge]:
        """Edges whose source is ``node_id``."""
        self.node(node_id)
        return [self._edges[eid] for eid in self._out[node_id]]

    def in_edges(self, node_id: str) -> list[Edge]:
        """Edges whose target is ``node_id``."""
        self.node(node_id)
        return [self._edges[eid] for eid in self._in[node_id]]

    def out_degree(self, node_id: str) -> int:
        """Number of outgoing edges of ``node_id``."""
        self.node(node_id)
        return len(self._out[node_id])

    def in_degree(self, node_id: str) -> int:
        """Number of incoming edges of ``node_id``."""
        self.node(node_id)
        return len(self._in[node_id])

    def neighbors(self, node_id: str) -> list[str]:
        """Distinct node ids adjacent to ``node_id`` (either direction)."""
        seen: dict[str, None] = {}
        for edge in self.out_edges(node_id):
            seen.setdefault(edge.target_id, None)
        for edge in self.in_edges(node_id):
            seen.setdefault(edge.source_id, None)
        return list(seen)

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def copy(self, name: str | None = None) -> "PropertyGraph":
        """Return a structural copy (elements are immutable and shared)."""
        clone = PropertyGraph(name or self.name)
        for node in self.nodes():
            clone.add_node(node)
        for edge in self.edges():
            clone.add_edge(edge)
        return clone

    def subgraph(
        self,
        node_ids: Iterable[str],
        name: str | None = None,
        include_dangling: bool = False,
    ) -> "PropertyGraph":
        """Induced subgraph over ``node_ids``.

        When ``include_dangling`` is true, endpoint nodes of edges touching
        the selection are pulled in as well (useful for batch streams that
        must keep edges connected).
        """
        wanted = set(node_ids)
        for node_id in wanted:
            self.node(node_id)  # validate early
        sub = PropertyGraph(name or f"{self.name}-sub")
        for node_id in self._nodes:
            if node_id in wanted:
                sub.add_node(self._nodes[node_id])
        for edge in self.edges():
            src_in = edge.source_id in wanted
            tgt_in = edge.target_id in wanted
            if src_in and tgt_in:
                sub.add_edge(edge)
            elif include_dangling and (src_in or tgt_in):
                for endpoint in edge.endpoints():
                    if not sub.has_node(endpoint):
                        sub.add_node(self._nodes[endpoint])
                sub.add_edge(edge)
        return sub

    def merge_in(self, other: "PropertyGraph") -> "PropertyGraph":
        """Union ``other`` into this graph in place; later elements win."""
        for node in other.nodes():
            if not self.has_node(node.node_id):
                self.add_node(node)
        for edge in other.edges():
            if not self.has_edge(edge.edge_id):
                self.add_edge(edge)
        return self

    # ------------------------------------------------------------------
    # Aggregates used across the pipeline
    # ------------------------------------------------------------------
    def all_node_property_keys(self) -> list[str]:
        """Sorted list of distinct property keys over all nodes."""
        keys: set[str] = set()
        for node in self.nodes():
            keys.update(node.properties)
        return sorted(keys)

    def all_edge_property_keys(self) -> list[str]:
        """Sorted list of distinct property keys over all edges."""
        keys: set[str] = set()
        for edge in self.edges():
            keys.update(edge.properties)
        return sorted(keys)

    def all_node_labels(self) -> list[str]:
        """Sorted list of distinct individual node labels."""
        labels: set[str] = set()
        for node in self.nodes():
            labels.update(node.labels)
        return sorted(labels)

    def all_edge_labels(self) -> list[str]:
        """Sorted list of distinct individual edge labels."""
        labels: set[str] = set()
        for edge in self.edges():
            labels.update(edge.labels)
        return sorted(labels)

"""Change-feed primitives for live schema sessions.

A :class:`ChangeSet` is one unit of the change feed consumed by
:class:`repro.core.session.SchemaSession`: a bundle of node/edge inserts
and node/edge deletions that the producer wants applied atomically (one
discovery step, one diff event).  It is the property-graph analogue of the
"stream of schema evolution operations" framing of Bonifati et al. --
instead of replaying whole graphs, producers describe what changed.

Conventions:

* Inserts are full :class:`~repro.graph.model.Node` / ``Edge`` elements.
  An edge whose endpoints are not part of the same change-set is legal;
  the consumer resolves the endpoints against its retained union graph or
  an attached :class:`~repro.graph.store.GraphStore` (or the producer
  ships endpoint stubs, exactly as batch streams do).
* Deletions are bare identifiers.  Deleting a node implies deleting its
  incident edges (the consumer cascades).
* Within one change-set, inserts are applied before deletions.
* ``stub_node_ids`` marks nodes shipped only as *endpoint stubs*: full
  copies of nodes that live (and were recorded) elsewhere, included so
  the change-set's edges are endpoint-complete.  Consumers use stubs for
  batch assembly and clustering context but do not record them as fresh
  instances -- the property that keeps instance and property counts
  exact when several consumers (shards) each see a stub copy of the same
  node.

The module also provides the partitioning side of sharded discovery:
:class:`HashPartitioner` splits one change-set into per-shard change-sets
(stable content hashing, endpoint stubs routed alongside their edges,
node deletions broadcast so stub copies are cleaned up everywhere), and
:func:`changesets_from_elements` groups any node/edge element stream into
endpoint-complete change-sets for the streaming IO readers.
"""

from __future__ import annotations

import hashlib
import pickle
import zlib
from collections.abc import Iterable, Iterator, Mapping
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import ConfigurationError, DanglingEdgeError, WALError
from repro.graph.model import Edge, Node, PropertyGraph

if TYPE_CHECKING:
    from repro.graph.columnar import ElementBatch, Interner

#: Version token of the WAL wire encoding of one change-set.  Version 2
#: groups columnar rows by structure (labels + keys written once per
#: distinct structure, not once per row) and deflate-compresses the
#: pickled record, shrinking the WAL sharply on repeat-heavy feeds.
WIRE_VERSION = 2
#: Older wire versions :meth:`ChangeSet.from_wire` still decodes.
WIRE_LEGACY_VERSIONS = (1,)
#: Frame prefix of a version-2 record.  Version-1 records are raw
#: pickles, which always begin with the pickle PROTO opcode ``b"\x80"``,
#: so the first byte disambiguates the two framings.
_WIRE_V2_PREFIX = b"\x02"


@dataclass
class ChangeSet:
    """One atomic unit of a schema session's change feed."""

    nodes: list[Node] = field(default_factory=list)
    edges: list[Edge] = field(default_factory=list)
    delete_nodes: list[str] = field(default_factory=list)
    delete_edges: list[str] = field(default_factory=list)
    #: ids among ``nodes`` that are endpoint stubs (see module docstring).
    stub_node_ids: frozenset[str] = frozenset()
    #: columnar insert payload (:class:`repro.graph.columnar.ElementBatch`).
    #: Mutually exclusive with element-wise ``nodes``/``edges`` inserts;
    #: ``stub_node_ids`` then names stub *rows* of the batch.  Deletions
    #: stay element-wise (bare identifiers) either way.
    columnar: "ElementBatch | None" = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def inserts(cls, nodes=(), edges=()) -> "ChangeSet":
        """Insert-only change-set."""
        return cls(nodes=list(nodes), edges=list(edges))

    @classmethod
    def inserts_columnar(cls, batch: "ElementBatch") -> "ChangeSet":
        """Insert-only change-set carrying a columnar batch."""
        return cls(columnar=batch)

    @classmethod
    def deletions(cls, nodes=(), edges=()) -> "ChangeSet":
        """Deletion-only change-set (identifiers, not elements)."""
        return cls(delete_nodes=list(nodes), delete_edges=list(edges))

    @classmethod
    def from_graph(cls, graph: PropertyGraph) -> "ChangeSet":
        """Insert-only change-set carrying every element of ``graph``."""
        return cls(nodes=list(graph.nodes()), edges=list(graph.edges()))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def has_inserts(self) -> bool:
        """True when the change-set carries at least one insert."""
        return bool(
            self.nodes
            or self.edges
            or (self.columnar is not None and len(self.columnar))
        )

    @property
    def has_deletions(self) -> bool:
        """True when the change-set carries at least one deletion."""
        return bool(self.delete_nodes or self.delete_edges)

    @property
    def inserted_node_count(self) -> int:
        """Number of inserted node rows/elements (stubs included)."""
        count = len(self.nodes)
        if self.columnar is not None:
            count += self.columnar.node_count
        return count

    @property
    def inserted_edge_count(self) -> int:
        """Number of inserted edge rows/elements."""
        count = len(self.edges)
        if self.columnar is not None:
            count += self.columnar.edge_count
        return count

    @property
    def insert_count(self) -> int:
        """Number of inserted elements (stubs included)."""
        return self.inserted_node_count + self.inserted_edge_count

    @property
    def fresh_insert_count(self) -> int:
        """Number of inserted elements that are not endpoint stubs."""
        return self.insert_count - len(self.stub_node_ids)

    @property
    def delete_count(self) -> int:
        """Number of deletion targets (cascades not included)."""
        return len(self.delete_nodes) + len(self.delete_edges)

    @property
    def change_count(self) -> int:
        """Total operations carried by this change-set."""
        return self.insert_count + self.delete_count

    @property
    def is_empty(self) -> bool:
        """True when the change-set carries nothing at all."""
        return not (self.has_inserts or self.has_deletions)

    def __bool__(self) -> bool:
        return not self.is_empty

    def __repr__(self) -> str:
        suffix = ", columnar" if self.columnar is not None else ""
        return (
            f"ChangeSet(+{self.inserted_node_count}N/"
            f"+{self.inserted_edge_count}E, "
            f"-{len(self.delete_nodes)}N/-{len(self.delete_edges)}E{suffix})"
        )

    # ------------------------------------------------------------------
    # WAL wire encoding
    # ------------------------------------------------------------------
    def to_wire(self) -> bytes:
        """Serialise for the write-ahead log.

        Element-wise payloads ship their :class:`Node`/:class:`Edge`
        objects directly; columnar payloads are encoded by *content*
        (ids, sorted labels, sorted keys, aligned values) -- interner ids
        are process-local and must never hit disk.  Rows are grouped by
        structure: each distinct (labels, keys) combination is written
        once, followed by its rows' ids and values, so repeat-heavy
        change-sets pay per distinct structure rather than per row.  The
        whole record is deflate-compressed.  :meth:`from_wire` rebuilds
        the batch against the reading process's interner, preserving row
        order within every structure group and first-occurrence order
        across groups (which is what clustering keys on).
        """
        record: dict = {
            "version": WIRE_VERSION,
            "delete_nodes": list(self.delete_nodes),
            "delete_edges": list(self.delete_edges),
            "stubs": sorted(self.stub_node_ids),
        }
        batch = self.columnar
        if batch is not None:
            interner = batch.interner
            record["kind"] = "columnar"
            record["node_groups"] = _group_rows(
                batch, interner, batch.nodes, edges=False
            )
            record["edge_groups"] = _group_rows(
                batch, interner, batch.edges, edges=True
            )
        else:
            # Primitive tuples, not Node/Edge objects: dataclass pickling
            # pays per-object reduce dispatch, which dominates WAL append
            # cost on large element-wise change-sets.
            record["kind"] = "elements"
            record["nodes"] = [
                (n.node_id, sorted(n.labels), n.properties)
                for n in self.nodes
            ]
            record["edges"] = [
                (e.edge_id, e.source_id, e.target_id, sorted(e.labels),
                 e.properties)
                for e in self.edges
            ]
        payload = pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL)
        return _WIRE_V2_PREFIX + zlib.compress(payload, 1)

    @classmethod
    def from_wire(
        cls, data: bytes, interner: "Interner | None" = None
    ) -> "ChangeSet":
        """Decode :meth:`to_wire` output (see its docstring for caveats).

        Reads the current wire version and every version in
        ``WIRE_LEGACY_VERSIONS`` (v1 WAL segments written before the
        structure-grouped encoding stay replayable).  Columnar payloads
        rebuild against ``interner`` (the process-wide one by default).
        Only decode records from trusted sources: the payload is a
        pickle.
        """
        try:
            if data[:1] == _WIRE_V2_PREFIX:
                record = pickle.loads(zlib.decompress(data[1:]))
            else:
                record = pickle.loads(data)
        except Exception as error:
            raise WALError(
                f"undecodable change-set wire record: {error}"
            ) from error
        version = record.get("version") if isinstance(record, dict) else None
        if version != WIRE_VERSION and version not in WIRE_LEGACY_VERSIONS:
            raise WALError(
                f"unsupported change-set wire version {version!r} "
                f"(this build reads versions "
                f"{(*WIRE_LEGACY_VERSIONS, WIRE_VERSION)})"
            )
        stubs = frozenset(record["stubs"])
        if record["kind"] == "columnar":
            from repro.graph.columnar import BatchBuilder, global_interner

            builder = BatchBuilder(interner or global_interner())
            target = builder.interner
            if version == 1:
                for node_id, labels, keys, values in record["node_rows"]:
                    builder.add_node(
                        node_id,
                        target.intern_labels(labels),
                        target.intern_keys(keys),
                        tuple(values),
                    )
                for edge_id, src, tgt, labels, keys, values in record[
                    "edge_rows"
                ]:
                    builder.add_edge(
                        edge_id,
                        src,
                        tgt,
                        target.intern_labels(labels),
                        target.intern_keys(keys),
                        tuple(values),
                    )
            else:
                for labels, keys, rows in record["node_groups"]:
                    labelset_id = target.intern_labels(labels)
                    keyset_id = target.intern_keys(keys)
                    for node_id, values in rows:
                        builder.add_node(
                            node_id, labelset_id, keyset_id, tuple(values)
                        )
                for labels, keys, rows in record["edge_groups"]:
                    labelset_id = target.intern_labels(labels)
                    keyset_id = target.intern_keys(keys)
                    for edge_id, src, tgt, values in rows:
                        builder.add_edge(
                            edge_id,
                            src,
                            tgt,
                            labelset_id,
                            keyset_id,
                            tuple(values),
                        )
            return cls(
                delete_nodes=list(record["delete_nodes"]),
                delete_edges=list(record["delete_edges"]),
                stub_node_ids=stubs,
                columnar=builder.freeze(),
            )
        return cls(
            nodes=[
                Node(node_id, frozenset(labels), properties)
                for node_id, labels, properties in record["nodes"]
            ],
            edges=[
                Edge(edge_id, src, tgt, frozenset(labels), properties)
                for edge_id, src, tgt, labels, properties in record["edges"]
            ],
            delete_nodes=list(record["delete_nodes"]),
            delete_edges=list(record["delete_edges"]),
            stub_node_ids=stubs,
        )


def _group_rows(batch, interner, block, edges: bool) -> list:
    """Structure-grouped wire form of one columnar block.

    One entry per distinct (labels, keys) structure, in first-occurrence
    order: ``(sorted labels, keys, [(id, values), ...])`` for nodes,
    ``(sorted labels, keys, [(id, src, tgt, values), ...])`` for edges.
    A structure group coincides exactly with a clustering pattern (one
    label set <-> one token), so the decoder's group-major rebuild
    preserves both within-pattern row order and across-pattern
    first-occurrence order -- everything batch processing is sensitive
    to.
    """
    groups: dict[tuple[int, int], list] = {}
    ordered: list[tuple] = []
    labelset_list = block.labelset_list
    keyset_list = block.keyset_list
    ids = block.ids
    for row in range(len(block)):
        structure = (labelset_list[row], keyset_list[row])
        rows = groups.get(structure)
        if rows is None:
            rows = groups[structure] = []
            ordered.append(
                (
                    sorted(interner.labelset(structure[0]).labels),
                    interner.keyset(structure[1]).keys,
                    rows,
                )
            )
        if edges:
            src, tgt, _, _, values = batch.edge_record(row)
            rows.append((ids[row], src, tgt, tuple(values)))
        else:
            _, _, values = batch.node_record(row)
            rows.append((ids[row], tuple(values)))
    return ordered


def stable_shard(element_id: str, n_shards: int) -> int:
    """Content-stable shard index of an element id.

    Python's ``hash`` on strings is salted per process, so routing uses a
    blake2b digest instead -- the same id lands on the same shard in
    every process, which checkpoint/restore and process-parallel workers
    both depend on.
    """
    digest = hashlib.blake2b(element_id.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little") % n_shards


@dataclass
class _ShardDraft:
    """Mutable assembly buffer for one shard's sub-change-set."""

    nodes: list[Node] = field(default_factory=list)
    edges: list[Edge] = field(default_factory=list)
    delete_nodes: list[str] = field(default_factory=list)
    delete_edges: list[str] = field(default_factory=list)
    present: set[str] = field(default_factory=set)
    stubs: set[str] = field(default_factory=set)

    def freeze(self) -> ChangeSet:
        return ChangeSet(
            nodes=self.nodes,
            edges=self.edges,
            delete_nodes=self.delete_nodes,
            delete_edges=self.delete_edges,
            stub_node_ids=frozenset(self.stubs),
        )


class HashPartitioner:
    """Route change-sets to shards by stable content hashing.

    Nodes route by ``stable_shard(node_id)``; edges by
    ``stable_shard(edge_id)``.  An edge whose endpoint is owned by a
    different shard travels with a full *stub* copy of the endpoint node
    (taken from the change-set itself or from ``node_lookup``, typically
    the sharded session's node registry), marked in
    :attr:`ChangeSet.stub_node_ids` so the receiving shard does not
    record it as a fresh instance.  Node deletions broadcast to every
    shard -- each shard owns the edges incident to its stub copies and
    must cascade them -- while edge deletions route to the edge's owner
    only.
    """

    def __init__(self, n_shards: int) -> None:
        if n_shards < 1:
            raise ConfigurationError(f"n_shards must be >= 1, got {n_shards}")
        self.n_shards = int(n_shards)

    def shard_of(self, element_id: str) -> int:
        """Stable shard index of one element id."""
        return stable_shard(element_id, self.n_shards)

    def partition(
        self,
        change_set: ChangeSet,
        node_lookup: Mapping[str, Node] | None = None,
    ) -> dict[int, ChangeSet]:
        """Split ``change_set`` into non-empty per-shard change-sets.

        Columnar change-sets partition over the batch's id column (see
        :func:`repro.graph.columnar.partition_columnar`); ``node_lookup``
        must then map node ids to compact columnar records instead of
        :class:`Node` objects.
        """
        if change_set.columnar is not None:
            from repro.graph.columnar import partition_columnar

            return partition_columnar(self, change_set, node_lookup)
        drafts: dict[int, _ShardDraft] = {}

        def draft(shard: int) -> _ShardDraft:
            existing = drafts.get(shard)
            if existing is None:
                existing = drafts[shard] = _ShardDraft()
            return existing

        in_change_set = {node.node_id: node for node in change_set.nodes}
        for node in change_set.nodes:
            part = draft(self.shard_of(node.node_id))
            part.nodes.append(node)
            part.present.add(node.node_id)
            if node.node_id in change_set.stub_node_ids:
                # The producer already marked this node as a replayed
                # stub; keep the flag so no shard re-records it.
                part.stubs.add(node.node_id)

        for edge in change_set.edges:
            part = draft(self.shard_of(edge.edge_id))
            for endpoint_id in edge.endpoints():
                if endpoint_id in part.present:
                    continue
                stub = in_change_set.get(endpoint_id)
                if stub is None and node_lookup is not None:
                    stub = node_lookup.get(endpoint_id)
                if stub is None:
                    raise DanglingEdgeError(
                        f"change-set edge {edge.edge_id!r} references node "
                        f"{endpoint_id!r}, which is neither in the change-set "
                        "nor known to the partitioner's node lookup"
                    )
                part.nodes.append(stub)
                part.present.add(endpoint_id)
                part.stubs.add(endpoint_id)
            part.edges.append(edge)

        if change_set.delete_nodes:
            for shard in range(self.n_shards):
                draft(shard).delete_nodes.extend(change_set.delete_nodes)
        for edge_id in change_set.delete_edges:
            draft(self.shard_of(edge_id)).delete_edges.append(edge_id)

        return {
            shard: part.freeze()
            for shard, part in sorted(drafts.items())
            if part.nodes or part.edges or part.delete_nodes or part.delete_edges
        }


def changesets_from_elements(
    elements: Iterable[Node | Edge], batch_size: int = 1000
) -> Iterator[ChangeSet]:
    """Group an element stream into endpoint-complete insert change-sets.

    Consumes nodes and edges in stream order and emits change-sets of at
    most ``batch_size`` fresh elements each.  An edge referencing a node
    emitted in an *earlier* change-set ships a stub copy of it (marked in
    ``stub_node_ids``), so the resulting feed is valid for any session --
    no retained union graph or attached store required.  Edges arriving
    before their endpoints are buffered until the endpoints appear; an
    endpoint that never appears raises :class:`DanglingEdgeError` at end
    of stream.

    Memory holds one :class:`Node` per distinct node id (needed to
    materialise stubs) but never edges or adjacency -- the point of the
    streaming readers is to feed large datasets without assembling a full
    :class:`PropertyGraph` first.
    """
    if batch_size < 1:
        raise ConfigurationError(f"batch_size must be >= 1, got {batch_size}")
    directory: dict[str, Node] = {}
    pending: list[Edge] = []
    draft = _ShardDraft()
    fresh = 0

    def resolve(edge: Edge) -> bool:
        """Place ``edge`` in the draft iff both endpoints are known."""
        missing = [e for e in edge.endpoints() if e not in directory]
        if missing:
            return False
        for endpoint_id in edge.endpoints():
            if endpoint_id in draft.present:
                continue
            draft.nodes.append(directory[endpoint_id])
            draft.present.add(endpoint_id)
            draft.stubs.add(endpoint_id)
        draft.edges.append(edge)
        return True

    def flush() -> ChangeSet:
        nonlocal draft, fresh
        change_set = draft.freeze()
        draft = _ShardDraft()
        fresh = 0
        return change_set

    for element in elements:
        if isinstance(element, Node):
            directory[element.node_id] = element
            if element.node_id in draft.present:
                # Already shipped as a stub (or duplicated) in this
                # batch; the real insert supersedes both copy and flag.
                draft.stubs.discard(element.node_id)
                draft.nodes = [
                    element if n.node_id == element.node_id else n
                    for n in draft.nodes
                ]
            else:
                draft.nodes.append(element)
                draft.present.add(element.node_id)
            fresh += 1
        else:
            if resolve(element):
                fresh += 1
            else:
                pending.append(element)
        if fresh >= batch_size:
            # Endpoints may have arrived for deferred edges; drain what
            # resolved before emitting (slight over-fill is fine).
            pending = [edge for edge in pending if not resolve(edge)]
            yield flush()

    pending = [edge for edge in pending if not resolve(edge)]
    if pending:
        missing = sorted(
            {
                endpoint
                for edge in pending
                for endpoint in edge.endpoints()
                if endpoint not in directory
            }
        )
        raise DanglingEdgeError(
            f"{len(pending)} edge(s) reference node ids absent from the "
            f"stream (first few: {missing[:5]})"
        )
    if draft.nodes or draft.edges:
        yield flush()

"""Change-feed primitives for live schema sessions.

A :class:`ChangeSet` is one unit of the change feed consumed by
:class:`repro.core.session.SchemaSession`: a bundle of node/edge inserts
and node/edge deletions that the producer wants applied atomically (one
discovery step, one diff event).  It is the property-graph analogue of the
"stream of schema evolution operations" framing of Bonifati et al. --
instead of replaying whole graphs, producers describe what changed.

Conventions:

* Inserts are full :class:`~repro.graph.model.Node` / ``Edge`` elements.
  An edge whose endpoints are not part of the same change-set is legal;
  the consumer resolves the endpoints against its retained union graph or
  an attached :class:`~repro.graph.store.GraphStore` (or the producer
  ships endpoint stubs, exactly as batch streams do).
* Deletions are bare identifiers.  Deleting a node implies deleting its
  incident edges (the consumer cascades).
* Within one change-set, inserts are applied before deletions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.graph.model import Edge, Node, PropertyGraph


@dataclass
class ChangeSet:
    """One atomic unit of a schema session's change feed."""

    nodes: list[Node] = field(default_factory=list)
    edges: list[Edge] = field(default_factory=list)
    delete_nodes: list[str] = field(default_factory=list)
    delete_edges: list[str] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def inserts(cls, nodes=(), edges=()) -> "ChangeSet":
        """Insert-only change-set."""
        return cls(nodes=list(nodes), edges=list(edges))

    @classmethod
    def deletions(cls, nodes=(), edges=()) -> "ChangeSet":
        """Deletion-only change-set (identifiers, not elements)."""
        return cls(delete_nodes=list(nodes), delete_edges=list(edges))

    @classmethod
    def from_graph(cls, graph: PropertyGraph) -> "ChangeSet":
        """Insert-only change-set carrying every element of ``graph``."""
        return cls(nodes=list(graph.nodes()), edges=list(graph.edges()))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def has_inserts(self) -> bool:
        """True when the change-set carries at least one insert."""
        return bool(self.nodes or self.edges)

    @property
    def has_deletions(self) -> bool:
        """True when the change-set carries at least one deletion."""
        return bool(self.delete_nodes or self.delete_edges)

    @property
    def insert_count(self) -> int:
        """Number of inserted elements."""
        return len(self.nodes) + len(self.edges)

    @property
    def delete_count(self) -> int:
        """Number of deletion targets (cascades not included)."""
        return len(self.delete_nodes) + len(self.delete_edges)

    @property
    def change_count(self) -> int:
        """Total operations carried by this change-set."""
        return self.insert_count + self.delete_count

    @property
    def is_empty(self) -> bool:
        """True when the change-set carries nothing at all."""
        return not (self.has_inserts or self.has_deletions)

    def __bool__(self) -> bool:
        return not self.is_empty

    def __repr__(self) -> str:
        return (
            f"ChangeSet(+{len(self.nodes)}N/+{len(self.edges)}E, "
            f"-{len(self.delete_nodes)}N/-{len(self.delete_edges)}E)"
        )

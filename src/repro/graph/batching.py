"""Splitting a property graph into batch streams (section 4.6, Figure 7).

The incremental experiments "randomly separate the graph into 10 batches".
A batch stream is a sequence of :class:`PropertyGraph` fragments; each edge
is shipped in the first batch where **both** endpoints have already been
seen, so every batch is a valid property graph on its own and the union of
the stream equals the input graph (insert-only semantics).
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.errors import ConfigurationError
from repro.graph.model import PropertyGraph


def split_into_batches(
    graph: PropertyGraph,
    batch_count: int,
    seed: int = 0,
) -> list[PropertyGraph]:
    """Randomly partition ``graph`` into ``batch_count`` insert batches.

    Nodes are assigned to batches uniformly at random (deterministic under
    ``seed``); an edge goes to the later of its two endpoints' batches, so
    replaying batches in order never creates a dangling edge.
    """
    if batch_count < 1:
        raise ConfigurationError(f"batch_count must be >= 1, got {batch_count}")
    rng = np.random.default_rng(seed)
    node_ids = list(graph.node_ids())
    assignment = {
        node_id: int(batch)
        for node_id, batch in zip(node_ids, rng.integers(0, batch_count, len(node_ids)))
    }
    batches = [
        PropertyGraph(f"{graph.name}-batch{i + 1}") for i in range(batch_count)
    ]
    for node in graph.nodes():
        batches[assignment[node.node_id]].add_node(node)
    for edge in graph.edges():
        batch_index = max(assignment[edge.source_id], assignment[edge.target_id])
        target = batches[batch_index]
        # The edge's endpoints may live in earlier batches; carry stub copies
        # so the fragment alone is a well-formed property graph.
        for endpoint in edge.endpoints():
            if not target.has_node(endpoint):
                target.add_node(graph.node(endpoint))
        target.add_edge(edge)
    return batches


def stream_batches(
    graph: PropertyGraph,
    batch_count: int,
    seed: int = 0,
) -> Iterator[PropertyGraph]:
    """Yield the batches of :func:`split_into_batches` one at a time."""
    yield from split_into_batches(graph, batch_count, seed)


def reassemble(batches: list[PropertyGraph], name: str = "reassembled") -> PropertyGraph:
    """Union a batch stream back into a single graph (for round-trip tests)."""
    merged = PropertyGraph(name)
    for batch in batches:
        merged.merge_in(batch)
    return merged

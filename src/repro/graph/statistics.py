"""Dataset statistics in the shape of Table 2 of the paper.

For each graph we report nodes, edges, node/edge type counts (taken from the
generator's ground truth when available, otherwise the distinct label-combo
count), distinct individual labels, and distinct structural patterns
(Def. 3.5/3.6).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.model import PropertyGraph
from repro.graph.patterns import edge_patterns, node_patterns


@dataclass(frozen=True, slots=True)
class GraphStatistics:
    """One Table 2 row."""

    name: str
    nodes: int
    edges: int
    node_types: int
    edge_types: int
    node_labels: int
    edge_labels: int
    node_patterns: int
    edge_patterns: int
    real: bool = False

    def as_row(self) -> tuple:
        """Columns in the order Table 2 prints them."""
        return (
            self.name,
            self.nodes,
            self.edges,
            self.node_types,
            self.edge_types,
            self.node_labels,
            self.edge_labels,
            self.node_patterns,
            self.edge_patterns,
            "R" if self.real else "S",
        )


TABLE2_HEADER = (
    "Dataset",
    "Nodes",
    "Edges",
    "Node Types",
    "Edge Types",
    "Node Labels",
    "Edge Labels",
    "Node Pat.",
    "Edge Pat.",
    "R/S",
)


def compute_statistics(
    graph: PropertyGraph,
    node_type_count: int | None = None,
    edge_type_count: int | None = None,
    real: bool = False,
) -> GraphStatistics:
    """Compute a :class:`GraphStatistics` row for ``graph``.

    ``node_type_count`` / ``edge_type_count`` should come from the dataset's
    ground truth when known; otherwise the number of distinct label-combo
    tokens (the observable proxy) is used.
    """
    n_patterns = node_patterns(graph)
    e_patterns = edge_patterns(graph)
    if node_type_count is None:
        node_type_count = len({p.token for p in n_patterns})
    if edge_type_count is None:
        edge_type_count = len(
            {(p.token, p.endpoint_tokens) for p in e_patterns}
        )
    return GraphStatistics(
        name=graph.name,
        nodes=graph.node_count,
        edges=graph.edge_count,
        node_types=node_type_count,
        edge_types=edge_type_count,
        node_labels=len(graph.all_node_labels()),
        edge_labels=len(graph.all_edge_labels()),
        node_patterns=len(n_patterns),
        edge_patterns=len(e_patterns),
        real=real,
    )


def property_fill_ratio(graph: PropertyGraph) -> float:
    """Average fraction of the global node property-key set each node fills.

    A simple sparsity measure used by the adaptive parameterization tests:
    1.0 means every node carries every key, values near 0 mean very sparse.
    """
    all_keys = graph.all_node_property_keys()
    if not all_keys or graph.node_count == 0:
        return 0.0
    total = sum(len(node.properties) for node in graph.nodes())
    return total / (len(all_keys) * graph.node_count)


def label_coverage(graph: PropertyGraph) -> float:
    """Fraction of nodes that carry at least one label."""
    if graph.node_count == 0:
        return 0.0
    labeled = sum(1 for node in graph.nodes() if node.labels)
    return labeled / graph.node_count

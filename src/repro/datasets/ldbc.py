"""LDBC SNB: the LDBC Social Network Benchmark graph [35, 90].

Synthetic equivalent of the interactive-workload social network: 7 node
types over 8 labels (Post and Comment both carry the shared ``Message``
super-label), 17 edge types over 15 edge labels (``likes`` and
``hasCreator`` each span two endpoint combinations), and very low pattern
diversity (9 node patterns) -- LDBC data is generated, hence regular
(paper scale: 3,181,724 nodes / 12,505,476 edges).
"""

from __future__ import annotations

from repro.datasets.base import (
    DatasetSpec,
    EdgeTypeSpec as E,
    NodeTypeSpec as N,
    PropertyGen as P,
)

LDBC = DatasetSpec(
    name="LDBC",
    default_nodes=3000,
    real=False,
    paper_nodes=3_181_724,
    paper_edges=12_505_476,
    node_types=(
        N("Person", ("Person",), (
            P("firstName", "name"), P("lastName", "name"),
            P("gender", "string"), P("birthday", "date"),
            P("creationDate", "datetime"), P("locationIP", "string"),
            P("browserUsed", "string"),
        ), weight=2.0),
        N("Forum", ("Forum",), (
            P("title", "string"), P("creationDate", "datetime"),
        ), weight=2.0),
        N("Post", ("Message", "Post"), (
            P("creationDate", "datetime"), P("locationIP", "string"),
            P("browserUsed", "string"), P("language", "string", presence=0.8),
            P("content", "string", presence=0.75),
            P("imageFile", "string", presence=0.25),
            P("length", "int"),
        ), weight=6.0),
        N("Comment", ("Message", "Comment"), (
            P("creationDate", "datetime"), P("locationIP", "string"),
            P("browserUsed", "string"), P("content", "string"),
            P("length", "int"),
        ), weight=8.0),
        N("Tag", ("Tag",), (P("name", "name"), P("url", "url")), weight=1.0),
        N("TagClass", ("TagClass",), (P("name", "name"), P("url", "url")),
          weight=0.3),
        N("Organisation", ("Organisation",), (
            P("name", "name"), P("url", "url"), P("type", "string"),
        ), weight=0.7),
    ),
    edge_types=(
        E("knows", "knows", "Person", "Person",
          (P("creationDate", "datetime"),), fanout=4.0),
        E("hasInterest", "hasInterest", "Person", "Tag", fanout=2.0),
        E("likes_post", "likes", "Person", "Post",
          (P("creationDate", "datetime"),), fanout=3.0),
        E("likes_comment", "likes", "Person", "Comment",
          (P("creationDate", "datetime"),), fanout=3.0),
        E("studyAt", "studyAt", "Person", "Organisation",
          (P("classYear", "int"),), wiring="many_to_one"),
        E("workAt", "workAt", "Person", "Organisation",
          (P("workFrom", "int"),), wiring="many_to_one"),
        E("hasModerator", "hasModerator", "Forum", "Person",
          wiring="many_to_one"),
        E("hasMember", "hasMember", "Forum", "Person",
          (P("joinDate", "datetime"),), fanout=5.0),
        E("containerOf", "containerOf", "Forum", "Post", fanout=2.5),
        E("forumHasTag", "hasTag", "Forum", "Tag", fanout=1.5),
        E("postHasCreator", "hasCreator", "Post", "Person",
          wiring="many_to_one"),
        E("commentHasCreator", "hasCreator", "Comment", "Person",
          wiring="many_to_one"),
        E("postHasTag", "hasTag", "Post", "Tag", fanout=1.2),
        E("commentHasTag", "hasTag", "Comment", "Tag", fanout=0.8),
        E("replyOf_post", "replyOf", "Comment", "Post", wiring="many_to_one"),
        E("replyOf_comment", "replyOf", "Comment", "Comment",
          wiring="many_to_one"),
        E("hasType", "hasType", "Tag", "TagClass", wiring="many_to_one"),
    ),
)

"""Noise injection (section 5 "Noise injection").

Two independent perturbations, both deterministic under the seed:

* **property noise** -- every property of every node and edge is removed
  independently with probability ``rate`` (the paper's 0-40 % range);
* **label availability** -- only an ``availability`` fraction of nodes and
  edges keep their label set (the paper's 100 / 50 / 0 % scenarios).

Ground truth is preserved untouched, so the F1* metric always scores
against the original types.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import GeneratedDataset
from repro.errors import ConfigurationError
from repro.graph.model import Edge, Node, PropertyGraph


def remove_properties(
    graph: PropertyGraph, rate: float, seed: int = 0
) -> PropertyGraph:
    """Copy of ``graph`` with each property dropped with probability ``rate``."""
    if not 0.0 <= rate <= 1.0:
        raise ConfigurationError(f"noise rate must be in [0, 1], got {rate}")
    if rate == 0.0:
        return graph.copy()
    rng = np.random.default_rng(seed)
    noisy = PropertyGraph(graph.name)
    for node in graph.nodes():
        kept = {k: v for k, v in node.properties.items() if rng.random() >= rate}
        noisy.add_node(Node(node.node_id, node.labels, kept))
    for edge in graph.edges():
        kept = {k: v for k, v in edge.properties.items() if rng.random() >= rate}
        noisy.add_edge(
            Edge(edge.edge_id, edge.source_id, edge.target_id, edge.labels, kept)
        )
    return noisy


def reduce_label_availability(
    graph: PropertyGraph,
    availability: float,
    seed: int = 0,
    include_edges: bool = False,
) -> PropertyGraph:
    """Copy of ``graph`` where only ``availability`` of nodes keep labels.

    The paper's availability scenarios strip *node* labels (its Figure 4
    keeps edge-type F1 above 0.9 even at 0 % availability, which is only
    possible when edge labels survive; edge typing "relies on their
    labeling information", section 5.1).  Pass ``include_edges=True`` to
    strip edge labels as well -- the harder variant is exercised in tests.
    """
    if not 0.0 <= availability <= 1.0:
        raise ConfigurationError(
            f"availability must be in [0, 1], got {availability}"
        )
    if availability == 1.0:
        return graph.copy()
    rng = np.random.default_rng(seed)
    reduced = PropertyGraph(graph.name)
    for node in graph.nodes():
        labels = node.labels if rng.random() < availability else frozenset()
        reduced.add_node(Node(node.node_id, labels, dict(node.properties)))
    for edge in graph.edges():
        labels = edge.labels
        if include_edges and rng.random() >= availability:
            labels = frozenset()
        reduced.add_edge(
            Edge(
                edge.edge_id,
                edge.source_id,
                edge.target_id,
                labels,
                dict(edge.properties),
            )
        )
    return reduced


def apply_noise(
    dataset: GeneratedDataset,
    property_noise: float = 0.0,
    label_availability: float = 1.0,
    seed: int = 0,
) -> GeneratedDataset:
    """New dataset view with both perturbations applied (truth unchanged)."""
    graph = remove_properties(dataset.graph, property_noise, seed)
    graph = reduce_label_availability(graph, label_availability, seed + 1)
    return GeneratedDataset(
        spec=dataset.spec,
        graph=graph,
        node_truth=dict(dataset.node_truth),
        edge_truth=dict(dataset.edge_truth),
    )

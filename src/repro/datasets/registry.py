"""Dataset registry: all eight Table 2 datasets by name."""

from __future__ import annotations

from repro.datasets.base import DatasetSpec, GeneratedDataset, generate_dataset
from repro.datasets.cord19 import CORD19
from repro.datasets.fib25 import FIB25
from repro.datasets.hetio import HETIO
from repro.datasets.icij import ICIJ
from repro.datasets.iyp import IYP
from repro.datasets.ldbc import LDBC
from repro.datasets.mb6 import MB6
from repro.datasets.pole import POLE
from repro.errors import DatasetError

#: Table 2 order.
ALL_SPECS: tuple[DatasetSpec, ...] = (
    POLE,
    MB6,
    HETIO,
    FIB25,
    ICIJ,
    LDBC,
    CORD19,
    IYP,
)

_BY_NAME = {spec.name: spec for spec in ALL_SPECS}


def dataset_names() -> list[str]:
    """All registered dataset names in Table 2 order."""
    return [spec.name for spec in ALL_SPECS]


def get_spec(name: str) -> DatasetSpec:
    """Spec by (case-insensitive) name."""
    for key, spec in _BY_NAME.items():
        if key.lower() == name.lower():
            return spec
    raise DatasetError(
        f"unknown dataset {name!r}; available: {', '.join(_BY_NAME)}"
    )


def load_dataset(
    name: str, nodes: int | None = None, seed: int = 0
) -> GeneratedDataset:
    """Generate the named dataset (``nodes`` overrides the default size)."""
    return generate_dataset(get_spec(name), nodes=nodes, seed=seed)


def load_all(
    scale: float = 1.0, seed: int = 0
) -> list[GeneratedDataset]:
    """Generate every dataset, scaling each default node count by ``scale``."""
    datasets = []
    for spec in ALL_SPECS:
        nodes = max(2 * len(spec.node_types), int(spec.default_nodes * scale))
        datasets.append(generate_dataset(spec, nodes=nodes, seed=seed))
    return datasets

"""Dataset specification DSL and the synthetic property-graph generator.

The paper evaluates on eight datasets (Table 2); none of the real ones are
redistributable offline, so every dataset here is a *synthetic equivalent*
generated from a declarative spec that reproduces the schema-level shape
the discovery algorithms actually face:

* the ground-truth node/edge type inventory (counts per Table 2),
* label structure -- single labels, multi-label combos, shared extra
  labels (the HET.IO ``HetionetNode`` pattern),
* property keys with per-key datatypes, optional-presence probabilities
  (these create the "Node Pat." multiplicity of Table 2), and rare
  heterogeneous outlier values (these populate Figure 8's error bins),
* edge wiring styles (many-to-one, one-to-one, many-to-many) that fix the
  ground-truth cardinalities.

Generation is fully deterministic under the seed, and every generated
element is recorded in a ground-truth assignment used by the F1* metric.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import DatasetError
from repro.graph.model import Edge, Node, PropertyGraph
from repro.graph.statistics import GraphStatistics, compute_statistics

_WORDS = (
    "alpha beta gamma delta epsilon zeta eta theta iota kappa lambda mu nu "
    "xi omicron pi rho sigma tau upsilon phi chi psi omega"
).split()


@dataclass(frozen=True, slots=True)
class PropertyGen:
    """One generated property key.

    ``kind`` picks the value generator: ``int``, ``float``, ``bool``,
    ``date``, ``datetime``, ``string``, ``name``, ``url``.  ``presence`` is
    the probability the key appears on an instance (values below 1 create
    extra structural patterns).  ``outlier_kind``/``outlier_rate`` mix in
    rare values of a different kind, making the property heterogeneous for
    the datatype-sampling experiment.
    """

    key: str
    kind: str = "string"
    presence: float = 1.0
    outlier_kind: str | None = None
    outlier_rate: float = 0.0


@dataclass(frozen=True, slots=True)
class NodeTypeSpec:
    """Ground-truth node type: labels, properties, relative frequency."""

    name: str
    labels: tuple[str, ...]
    properties: tuple[PropertyGen, ...]
    weight: float = 1.0


@dataclass(frozen=True, slots=True)
class EdgeTypeSpec:
    """Ground-truth edge type: label, endpoints, wiring, properties.

    ``wiring`` fixes the true cardinality: ``many_to_one`` gives every
    source exactly one target, ``one_to_one`` pairs sources and targets
    bijectively, ``many_to_many`` samples random pairs.  ``fanout`` is the
    expected number of edges per source instance.
    """

    name: str
    label: str
    source: str
    target: str
    properties: tuple[PropertyGen, ...] = ()
    wiring: str = "many_to_many"
    fanout: float = 1.5
    weight: float = 1.0


@dataclass(frozen=True, slots=True)
class DatasetSpec:
    """A complete dataset description."""

    name: str
    node_types: tuple[NodeTypeSpec, ...]
    edge_types: tuple[EdgeTypeSpec, ...]
    default_nodes: int
    real: bool = False
    #: Table 2 reference row (paper-scale counts) for EXPERIMENTS.md.
    paper_nodes: int = 0
    paper_edges: int = 0

    def node_type(self, name: str) -> NodeTypeSpec:
        """Spec of the node type called ``name``."""
        for node_type in self.node_types:
            if node_type.name == name:
                return node_type
        raise DatasetError(f"{self.name}: unknown node type {name!r}")


@dataclass
class GeneratedDataset:
    """A generated graph plus its ground truth."""

    spec: DatasetSpec
    graph: PropertyGraph
    node_truth: dict[str, str] = field(default_factory=dict)
    edge_truth: dict[str, str] = field(default_factory=dict)

    @property
    def name(self) -> str:
        """Dataset name."""
        return self.spec.name

    def statistics(self) -> GraphStatistics:
        """Table 2 row for the generated graph (ground-truth type counts)."""
        return compute_statistics(
            self.graph,
            node_type_count=len(self.spec.node_types),
            edge_type_count=len(self.spec.edge_types),
            real=self.spec.real,
        )


# ----------------------------------------------------------------------
# Value generation
# ----------------------------------------------------------------------
def _value(kind: str, rng: np.random.Generator) -> object:
    if kind == "int":
        return int(rng.integers(0, 100_000))
    if kind == "float":
        return float(np.round(rng.uniform(0, 1000), 3)) + 0.0001
    if kind == "bool":
        return bool(rng.integers(0, 2))
    if kind == "date":
        year = int(rng.integers(1960, 2026))
        month = int(rng.integers(1, 13))
        day = int(rng.integers(1, 29))
        return f"{year:04d}-{month:02d}-{day:02d}"
    if kind == "datetime":
        date = _value("date", rng)
        hour = int(rng.integers(0, 24))
        minute = int(rng.integers(0, 60))
        return f"{date}T{hour:02d}:{minute:02d}:00"
    if kind == "string":
        count = int(rng.integers(1, 4))
        return " ".join(str(rng.choice(_WORDS)) for _ in range(count))
    if kind == "name":
        return f"{rng.choice(_WORDS)}-{int(rng.integers(0, 10_000))}"
    if kind == "url":
        return f"https://{rng.choice(_WORDS)}.example.org/{int(rng.integers(0, 999))}"
    raise DatasetError(f"unknown property kind {kind!r}")


def _property_values(
    spec: PropertyGen, rng: np.random.Generator
) -> object | None:
    if spec.presence < 1.0 and rng.random() >= spec.presence:
        return None
    if spec.outlier_kind is not None and rng.random() < spec.outlier_rate:
        return _value(spec.outlier_kind, rng)
    return _value(spec.kind, rng)


# ----------------------------------------------------------------------
# Graph generation
# ----------------------------------------------------------------------
def _allocate_counts(
    weights: list[float], total: int, minimum: int = 2
) -> list[int]:
    weight_sum = sum(weights)
    counts = [max(minimum, int(round(total * w / weight_sum))) for w in weights]
    return counts


def generate_dataset(
    spec: DatasetSpec,
    nodes: int | None = None,
    seed: int = 0,
) -> GeneratedDataset:
    """Generate a :class:`GeneratedDataset` of roughly ``nodes`` nodes."""
    total_nodes = nodes if nodes is not None else spec.default_nodes
    if total_nodes < 2 * len(spec.node_types):
        raise DatasetError(
            f"{spec.name}: need at least {2 * len(spec.node_types)} nodes, "
            f"got {total_nodes}"
        )
    rng = np.random.default_rng(seed)
    graph = PropertyGraph(spec.name)
    dataset = GeneratedDataset(spec, graph)

    instances: dict[str, list[str]] = {}
    counts = _allocate_counts(
        [t.weight for t in spec.node_types], total_nodes
    )
    serial = 0
    for node_type, count in zip(spec.node_types, counts):
        ids: list[str] = []
        for _ in range(count):
            node_id = f"{spec.name}-n{serial}"
            serial += 1
            properties = {}
            for prop in node_type.properties:
                value = _property_values(prop, rng)
                if value is not None:
                    properties[prop.key] = value
            graph.add_node(Node(node_id, frozenset(node_type.labels), properties))
            dataset.node_truth[node_id] = node_type.name
            ids.append(node_id)
        instances[node_type.name] = ids

    edge_serial = 0
    for edge_type in spec.edge_types:
        sources = instances.get(edge_type.source)
        targets = instances.get(edge_type.target)
        if not sources or not targets:
            raise DatasetError(
                f"{spec.name}: edge type {edge_type.name!r} references "
                f"missing node types"
            )
        for source_id, target_id in _wire(edge_type, sources, targets, rng):
            edge_id = f"{spec.name}-e{edge_serial}"
            edge_serial += 1
            properties = {}
            for prop in edge_type.properties:
                value = _property_values(prop, rng)
                if value is not None:
                    properties[prop.key] = value
            graph.add_edge(
                Edge(
                    edge_id,
                    source_id,
                    target_id,
                    frozenset({edge_type.label}),
                    properties,
                )
            )
            dataset.edge_truth[edge_id] = edge_type.name
    return dataset


def _wire(
    edge_type: EdgeTypeSpec,
    sources: list[str],
    targets: list[str],
    rng: np.random.Generator,
) -> list[tuple[str, str]]:
    if edge_type.wiring == "many_to_one":
        # Every source points at exactly one target (true N:1).
        return [
            (source, targets[int(rng.integers(0, len(targets)))])
            for source in sources
        ]
    if edge_type.wiring == "one_to_one":
        # Bijective pairing over the shorter side (true 0:1).
        pair_count = min(len(sources), len(targets))
        shuffled_sources = list(sources)
        shuffled_targets = list(targets)
        rng.shuffle(shuffled_sources)
        rng.shuffle(shuffled_targets)
        return list(zip(shuffled_sources[:pair_count], shuffled_targets[:pair_count]))
    if edge_type.wiring == "many_to_many":
        edge_count = max(1, int(round(len(sources) * edge_type.fanout)))
        source_picks = rng.integers(0, len(sources), edge_count)
        target_picks = rng.integers(0, len(targets), edge_count)
        pairs = []
        for source_index, target_index in zip(source_picks, target_picks):
            source = sources[int(source_index)]
            target = targets[int(target_index)]
            if source != target:
                pairs.append((source, target))
        return pairs
    raise DatasetError(f"unknown wiring {edge_type.wiring!r}")

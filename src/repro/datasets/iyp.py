"""IYP: the Internet Yellow Pages internet-measurement knowledge graph [37].

The paper-scale IYP has 44.5M nodes, 86 node types over 33 labels, 25 edge
types, and 1,210 node patterns -- by far the most heterogeneous dataset.
The synthetic equivalent reproduces that shape programmatically: a dozen
base entities (AS, Prefix, IP, ...) fan out into multi-label variants via
qualifier labels (``BGPPrefix``, ``RPKIPrefix``, ...), exactly how IYP tags
provenance, yielding dozens of ground-truth types over ~33 labels.  Every
node carries the IYP-style ``reference_*`` provenance properties at varied
presence rates, producing the huge pattern count.
"""

from __future__ import annotations

from repro.datasets.base import (
    DatasetSpec,
    EdgeTypeSpec as E,
    NodeTypeSpec as N,
    PropertyGen as P,
)

_PROVENANCE = (
    P("reference_org", "string", presence=0.9),
    P("reference_url", "url", presence=0.7),
    P("reference_time", "datetime", presence=0.6),
    P("reference_name", "string", presence=0.4),
)

#: (base label, identifying properties, qualifier labels, base weight)
_BASES: tuple[tuple[str, tuple[P, ...], tuple[str, ...], float], ...] = (
    ("AS", (P("asn", "int"),),
     ("BGPCollector", "RIPEAtlas", "IHRCountry", "Transit", "Stub"), 6.0),
    ("Prefix", (P("prefix", "string"), P("af", "int", presence=0.8)),
     ("BGPPrefix", "RPKIPrefix", "RIRPrefix", "GeoPrefix", "DelegatedPrefix"),
     8.0),
    ("IP", (P("ip", "string"), P("af", "int", presence=0.9)),
     ("AtlasTarget", "AnycastIP"), 6.0),
    ("DomainName", (P("name", "name"),), ("TrancoDomain", "UmbrellaDomain"),
     5.0),
    ("HostName", (P("name", "name"),), ("AuthoritativeNS", "MailServer"), 5.0),
    ("Country", (P("country_code", "string"), P("alpha3", "string",
                                                presence=0.8)), (), 0.6),
    ("IXP", (P("name", "name"), P("ix_id", "int", presence=0.7)),
     ("PeeringLAN",), 1.0),
    ("Organization", (P("name", "name"),), ("PeeringdbOrg",), 2.0),
    ("Tag", (P("label", "string"),), (), 1.0),
    ("Ranking", (P("name", "string"), P("rank", "int",
                                        outlier_kind="string",
                                        outlier_rate=0.02)), (), 1.0),
    ("AtlasProbe", (P("id", "int"), P("status", "string", presence=0.85)),
     ("Anchor",), 1.5),
    ("OpaqueID", (P("id", "string"),), (), 1.0),
)


def _node_types() -> tuple[N, ...]:
    types: list[N] = []
    for base, props, qualifiers, weight in _BASES:
        props = props + _PROVENANCE
        types.append(N(base, (base,), props, weight=weight))
        for qualifier in qualifiers:
            types.append(
                N(f"{base}+{qualifier}", (base, qualifier), props,
                  weight=weight / (1.5 * len(qualifiers) + 1))
            )
        if len(qualifiers) >= 2:
            types.append(
                N(
                    f"{base}+{qualifiers[0]}+{qualifiers[1]}",
                    (base, qualifiers[0], qualifiers[1]),
                    props,
                    weight=weight / (3 * len(qualifiers)),
                )
            )
    return tuple(types)


_COUNT = (P("count", "int", presence=0.5),)

IYP = DatasetSpec(
    name="IYP",
    default_nodes=5000,
    real=True,
    paper_nodes=44_539_999,
    paper_edges=251_432_812,
    node_types=_node_types(),
    edge_types=(
        E("ORIGINATE", "ORIGINATE", "AS", "Prefix", _PROVENANCE, fanout=3.0),
        E("PEERS_WITH", "PEERS_WITH", "AS", "AS", _PROVENANCE + _COUNT,
          fanout=4.0),
        E("DEPENDS_ON", "DEPENDS_ON", "AS", "AS",
          (P("hegemony", "float"),) + _PROVENANCE, fanout=2.0),
        E("MEMBER_OF_IXP", "MEMBER_OF", "AS", "IXP", _PROVENANCE, fanout=1.0),
        E("MEMBER_OF_ORG", "MEMBER_OF", "AS", "Organization", _PROVENANCE,
          fanout=0.6),
        E("AS_COUNTRY", "COUNTRY", "AS", "Country", _PROVENANCE,
          wiring="many_to_one"),
        E("AS_NAME", "NAME", "AS", "OpaqueID", _PROVENANCE,
          wiring="many_to_one"),
        E("AS_RANK", "RANK", "AS", "Ranking",
          (P("rank", "int"),) + _PROVENANCE, fanout=1.5),
        E("AS_CATEGORIZED", "CATEGORIZED", "AS", "Tag", _PROVENANCE,
          fanout=1.0),
        E("PREFIX_PART_OF", "PART_OF", "Prefix", "Prefix", _PROVENANCE,
          fanout=0.8),
        E("PREFIX_COUNTRY", "COUNTRY", "Prefix", "Country", _PROVENANCE,
          wiring="many_to_one"),
        E("PREFIX_CATEGORIZED", "CATEGORIZED", "Prefix", "Tag", _PROVENANCE,
          fanout=0.7),
        E("IP_PART_OF", "PART_OF", "IP", "Prefix", _PROVENANCE,
          wiring="many_to_one"),
        E("IP_RESOLVES", "RESOLVES_TO", "HostName", "IP", _PROVENANCE,
          fanout=1.2),
        E("MANAGED_BY_IXP", "MANAGED_BY", "IXP", "Organization", _PROVENANCE,
          wiring="many_to_one"),
        E("MANAGED_BY_HOST", "MANAGED_BY", "HostName", "Organization",
          _PROVENANCE, wiring="many_to_one"),
        E("DOMAIN_PART_OF", "PART_OF", "DomainName", "HostName", _PROVENANCE,
          fanout=0.9),
        E("DOMAIN_RANK", "RANK", "DomainName", "Ranking",
          (P("rank", "int"),) + _PROVENANCE, fanout=1.0),
        E("DOMAIN_ALIAS", "ALIAS_OF", "DomainName", "DomainName", _PROVENANCE,
          fanout=0.3),
        E("IXP_COUNTRY", "COUNTRY", "IXP", "Country", _PROVENANCE,
          wiring="many_to_one"),
        E("ORG_COUNTRY", "COUNTRY", "Organization", "Country", _PROVENANCE,
          wiring="many_to_one"),
        E("PROBE_LOCATED_AS", "LOCATED_IN", "AtlasProbe", "AS", _PROVENANCE,
          wiring="many_to_one"),
        E("PROBE_LOCATED_COUNTRY", "LOCATED_IN", "AtlasProbe", "Country",
          _PROVENANCE, wiring="many_to_one"),
        E("PROBE_TARGETS", "TARGETS", "AtlasProbe", "IP", _PROVENANCE,
          fanout=1.5),
        E("ORG_EXTERNAL_ID", "EXTERNAL_ID", "Organization", "OpaqueID",
          _PROVENANCE, wiring="many_to_one"),
    ),
)

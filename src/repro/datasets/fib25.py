"""FIB25: medulla connectome of the fruit-fly visual system [91].

Synthetic equivalent in the same neuPrint family as MB6: 4 node types via
multi-label combos over 10 labels, 3 edge labels across 5 edge types, and
31 node patterns in the paper -- slightly less pattern-diverse than MB6,
modelled with fewer optional properties (paper scale: 802,473 nodes /
1,625,428 edges).
"""

from __future__ import annotations

from repro.datasets.base import (
    DatasetSpec,
    EdgeTypeSpec as E,
    NodeTypeSpec as N,
    PropertyGen as P,
)

FIB25 = DatasetSpec(
    name="FIB25",
    default_nodes=2500,
    real=False,
    paper_nodes=802_473,
    paper_edges=1_625_428,
    node_types=(
        N("Neuron", ("Neuron", "Segment", "Cell", "fib25"), (
            P("bodyId", "int"),
            P("status", "string", presence=0.9),
            P("pre", "int", presence=0.85),
            P("post", "int", presence=0.85),
            P("name", "name", presence=0.5),
            P("type", "string", presence=0.45),
        ), weight=3.0),
        N("Segment", ("Segment", "fib25"), (
            P("bodyId", "int"),
            P("size", "int", presence=0.85,
              outlier_kind="string", outlier_rate=0.01),
            P("pre", "int", presence=0.35),
            P("post", "int", presence=0.35),
        ), weight=12.0),
        N("SynapseSet", ("SynapseSet", "fib25", "ElementSet"), (
            P("datasetBodyIds", "string"),
        ), weight=5.0),
        N("Meta", ("Meta", "fib25", "Dataset", "Annotations", "DataModel"), (
            P("dataset", "string"), P("uuid", "string"),
            P("lastDatabaseEdit", "datetime"),
            P("totalPreCount", "int"), P("totalPostCount", "int"),
        ), weight=0.2),
    ),
    edge_types=(
        E("ConnectsTo_NN", "ConnectsTo", "Neuron", "Neuron",
          (P("weight", "int"), P("roiInfo", "string", presence=0.7)),
          wiring="many_to_many", fanout=3.0),
        E("ConnectsTo_SS", "ConnectsTo", "Segment", "Segment",
          (P("weight", "int"),), wiring="many_to_many", fanout=1.2),
        E("Contains_NSet", "Contains", "Neuron", "SynapseSet",
          wiring="many_to_many", fanout=1.5),
        E("Contains_SSet", "Contains", "Segment", "SynapseSet",
          wiring="many_to_many", fanout=0.3),
        E("From_Meta", "From", "SynapseSet", "Meta", wiring="many_to_one"),
    ),
)

"""CORD19: the CovidGraph knowledge graph [29].

Synthetic equivalent of the COVID-19 graph integrating publications,
genotype and disease data: 16 single-label node types, 16 edge types, and
substantial pattern diversity (89 node patterns in the paper) from
partially filled bibliographic metadata (paper scale: 5,485,296 nodes /
5,720,776 edges -- the largest "simple-structured" dataset).
"""

from __future__ import annotations

from repro.datasets.base import (
    DatasetSpec,
    EdgeTypeSpec as E,
    NodeTypeSpec as N,
    PropertyGen as P,
)

CORD19 = DatasetSpec(
    name="CORD19",
    default_nodes=3500,
    real=True,
    paper_nodes=5_485_296,
    paper_edges=5_720_776,
    node_types=(
        N("Paper", ("Paper",), (
            P("cord_uid", "string"), P("title", "string"),
            P("publish_time", "date", presence=0.85),
            P("journal", "string", presence=0.7),
            P("doi", "string", presence=0.8),
            P("cord19_fulltext_hash", "string", presence=0.5),
        ), weight=5.0),
        N("Author", ("Author",), (
            P("first", "name", presence=0.9), P("last", "name"),
            P("middle", "name", presence=0.3),
            P("email", "string", presence=0.2),
        ), weight=8.0),
        N("Affiliation", ("Affiliation",), (
            P("institution", "string"), P("laboratory", "string", presence=0.4),
            P("settlement", "string", presence=0.6),
        ), weight=2.0),
        N("Abstract", ("Abstract",), (P("text", "string"),), weight=4.0),
        N("BodyText", ("BodyText",), (
            P("text", "string"), P("section", "string", presence=0.8),
        ), weight=6.0),
        N("Citation", ("Citation",), (
            P("title", "string", presence=0.9),
            P("year", "int", presence=0.8, outlier_kind="string",
              outlier_rate=0.03),
            P("venue", "string", presence=0.5),
        ), weight=6.0),
        N("Journal", ("Journal",), (P("name", "string"),), weight=0.8),
        N("PaperID", ("PaperID",), (
            P("id", "string"), P("type", "string"),
        ), weight=4.0),
        N("Gene", ("Gene",), (
            P("sid", "string"), P("ensembl_id", "string", presence=0.85),
        ), weight=3.0),
        N("GeneSymbol", ("GeneSymbol",), (P("sid", "string"),), weight=2.0),
        N("Transcript", ("Transcript",), (P("sid", "string"),), weight=3.0),
        N("Protein", ("Protein",), (
            P("sid", "string"), P("name", "name", presence=0.7),
            P("desc", "string", presence=0.4),
        ), weight=3.0),
        N("Disease", ("Disease",), (
            P("doid", "string"), P("name", "name"),
            P("definition", "string", presence=0.6),
        ), weight=0.8),
        N("ClinicalTrial", ("ClinicalTrial",), (
            P("nct_id", "string"), P("status", "string", presence=0.9),
            P("start_date", "date", presence=0.7),
        ), weight=0.8),
        N("Patent", ("Patent",), (
            P("publication_number", "string"),
            P("filing_date", "date", presence=0.8),
        ), weight=0.6),
        N("Fragment", ("Fragment",), (
            P("text", "string"), P("sequence", "int"),
        ), weight=3.0),
    ),
    edge_types=(
        E("PAPER_HAS_ABSTRACT", "PAPER_HAS_ABSTRACT", "Paper", "Abstract",
          wiring="one_to_one"),
        E("PAPER_HAS_BODYTEXT", "PAPER_HAS_BODYTEXT", "Paper", "BodyText",
          fanout=1.5),
        E("PAPER_HAS_CITATION", "PAPER_HAS_CITATION", "Paper", "Citation",
          fanout=2.0),
        E("PAPER_HAS_ID", "PAPER_HAS_ID", "Paper", "PaperID", wiring="many_to_one"),
        E("PAPER_IN_JOURNAL", "PAPER_IN_JOURNAL", "Paper", "Journal",
          wiring="many_to_one"),
        E("PAPER_WRITTEN_BY", "PAPER_WRITTEN_BY", "Paper", "Author", fanout=3.0),
        E("AUTHOR_AFFILIATED", "AUTHOR_HAS_AFFILIATION", "Author", "Affiliation",
          wiring="many_to_one"),
        E("ABSTRACT_MENTIONS_GENE", "MENTIONS", "Abstract", "GeneSymbol",
          fanout=1.0),
        E("BODYTEXT_HAS_FRAGMENT", "HAS_FRAGMENT", "BodyText", "Fragment",
          fanout=0.8),
        E("FRAGMENT_MENTIONS", "MENTIONS_DISEASE", "Fragment", "Disease",
          fanout=0.5),
        E("GENE_HAS_SYMBOL", "HAS_SYMBOL", "Gene", "GeneSymbol",
          wiring="many_to_one"),
        E("GENE_HAS_TRANSCRIPT", "CODES", "Gene", "Transcript", fanout=1.4),
        E("TRANSCRIPT_CODES_PROTEIN", "CODES_PROTEIN", "Transcript", "Protein",
          wiring="many_to_one"),
        E("PROTEIN_LINKS_DISEASE", "ASSOCIATED_WITH", "Protein", "Disease",
          fanout=0.6),
        E("TRIAL_STUDIES_DISEASE", "STUDIES", "ClinicalTrial", "Disease",
          wiring="many_to_one"),
        E("PATENT_ABOUT_GENE", "ABOUT", "Patent", "Gene", fanout=0.8),
    ),
)

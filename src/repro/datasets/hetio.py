"""HET.IO: the Hetionet integrative biomedical knowledge graph [45].

Synthetic equivalent: 11 node types, each carrying its own label *plus* the
shared integration label ``HetionetNode`` (12 distinct labels total) -- the
multi-labelling scenario the paper singles out.  24 edge types over 24 edge
labels connect genes, diseases, compounds, anatomy and ontology terms
(paper scale: 47,031 nodes / 2,250,197 edges -- note the extreme edge/node
ratio, reproduced here with high fanouts).
"""

from __future__ import annotations

from repro.datasets.base import (
    DatasetSpec,
    EdgeTypeSpec as E,
    NodeTypeSpec as N,
    PropertyGen as P,
)

_BASE = (P("identifier", "string"), P("name", "name"), P("url", "url", presence=0.7))


def _typed(name: str, weight: float, *extra: P) -> N:
    return N(name, (name, "HetionetNode"), _BASE + tuple(extra), weight=weight)


HETIO = DatasetSpec(
    name="HET.IO",
    default_nodes=1800,
    real=True,
    paper_nodes=47_031,
    paper_edges=2_250_197,
    node_types=(
        _typed("Gene", 6.0, P("chromosome", "string", presence=0.9),
               P("description", "string", presence=0.6)),
        _typed("Disease", 1.0, P("source", "string")),
        _typed("Compound", 2.0, P("inchikey", "string"),
               P("license", "string", presence=0.8)),
        _typed("Anatomy", 1.0, P("mesh_id", "string", presence=0.9)),
        _typed("BiologicalProcess", 3.0),
        _typed("CellularComponent", 1.0),
        _typed("MolecularFunction", 1.0),
        _typed("Pathway", 1.0, P("source", "string")),
        _typed("PharmacologicClass", 0.5, P("class_type", "string")),
        _typed("SideEffect", 1.5, P("umls_id", "string")),
        _typed("Symptom", 0.5, P("mesh_id", "string")),
    ),
    edge_types=(
        E("GpBP", "PARTICIPATES_GpBP", "Gene", "BiologicalProcess", fanout=6.0),
        E("GpCC", "PARTICIPATES_GpCC", "Gene", "CellularComponent", fanout=3.0),
        E("GpMF", "PARTICIPATES_GpMF", "Gene", "MolecularFunction", fanout=2.5),
        E("GpPW", "PARTICIPATES_GpPW", "Gene", "Pathway", fanout=2.0),
        E("GiG", "INTERACTS_GiG", "Gene", "Gene", fanout=4.0),
        E("GrG", "REGULATES_GrG", "Gene", "Gene", fanout=3.5),
        E("GcG", "COVARIES_GcG", "Gene", "Gene", fanout=2.5),
        E("DaG", "ASSOCIATES_DaG", "Disease", "Gene", fanout=8.0),
        E("DuG", "UPREGULATES_DuG", "Disease", "Gene", fanout=5.0),
        E("DdG", "DOWNREGULATES_DdG", "Disease", "Gene", fanout=5.0),
        E("DlA", "LOCALIZES_DlA", "Disease", "Anatomy", fanout=4.0),
        E("DpS", "PRESENTS_DpS", "Disease", "Symptom", fanout=4.0),
        E("DrD", "RESEMBLES_DrD", "Disease", "Disease", fanout=1.5),
        E("CtD", "TREATS_CtD", "Compound", "Disease", fanout=1.0),
        E("CpD", "PALLIATES_CpD", "Compound", "Disease", fanout=0.8),
        E("CbG", "BINDS_CbG", "Compound", "Gene", fanout=3.0,
          properties=(P("affinity_nM", "float", presence=0.4),)),
        E("CuG", "UPREGULATES_CuG", "Compound", "Gene", fanout=2.5),
        E("CdG", "DOWNREGULATES_CdG", "Compound", "Gene", fanout=2.5),
        E("CrC", "RESEMBLES_CrC", "Compound", "Compound", fanout=1.5,
          properties=(P("similarity", "float"),)),
        E("CcSE", "CAUSES_CcSE", "Compound", "SideEffect", fanout=5.0),
        E("PCiC", "INCLUDES_PCiC", "PharmacologicClass", "Compound", fanout=2.0),
        E("AuG", "UPREGULATES_AuG", "Anatomy", "Gene", fanout=6.0),
        E("AdG", "DOWNREGULATES_AdG", "Anatomy", "Gene", fanout=6.0),
        E("AeG", "EXPRESSES_AeG", "Anatomy", "Gene", fanout=8.0),
    ),
)

"""ICIJ: the Offshore Leaks / Panama Papers graph [49].

Synthetic equivalent of the integration-heavy ICIJ database: 5 node types
over 6 labels (Entity carries an extra ``OffshoreLeaks`` provenance label),
14 edge types, and -- its defining feature -- extreme structural
heterogeneity: 208 node patterns in the paper, reproduced through many
low-presence properties merged from different leaks (paper scale:
2,016,523 nodes / 3,339,267 edges).
"""

from __future__ import annotations

from repro.datasets.base import (
    DatasetSpec,
    EdgeTypeSpec as E,
    NodeTypeSpec as N,
    PropertyGen as P,
)

ICIJ = DatasetSpec(
    name="ICIJ",
    default_nodes=3000,
    real=True,
    paper_nodes=2_016_523,
    paper_edges=3_339_267,
    node_types=(
        N("Entity", ("Entity", "OffshoreLeaks"), (
            P("name", "name"),
            P("jurisdiction", "string", presence=0.8),
            P("incorporation_date", "date", presence=0.6),
            P("inactivation_date", "date", presence=0.25),
            P("struck_off_date", "date", presence=0.2),
            P("status", "string", presence=0.55),
            P("company_type", "string", presence=0.35),
            P("service_provider", "string", presence=0.45),
            P("ibcRUC", "string", presence=0.3,
              outlier_kind="int", outlier_rate=0.15),
            P("note", "string", presence=0.1),
        ), weight=5.0),
        N("Officer", ("Officer",), (
            P("name", "name"),
            P("country_codes", "string", presence=0.7),
            P("sourceID", "string", presence=0.9),
            P("valid_until", "date", presence=0.4),
            P("note", "string", presence=0.05),
        ), weight=6.0),
        N("Intermediary", ("Intermediary",), (
            P("name", "name"),
            P("address", "string", presence=0.55),
            P("country_codes", "string", presence=0.75),
            P("status", "string", presence=0.5),
            P("internal_id", "int", presence=0.6,
              outlier_kind="string", outlier_rate=0.05),
        ), weight=1.5),
        N("Address", ("Address",), (
            P("address", "string"),
            P("country_codes", "string", presence=0.85),
            P("sourceID", "string", presence=0.9),
            P("valid_until", "date", presence=0.3),
        ), weight=4.0),
        N("Other", ("Other",), (
            P("name", "name"),
            P("sourceID", "string", presence=0.7),
            P("note", "string", presence=0.2),
        ), weight=0.8),
    ),
    edge_types=(
        E("officer_of", "officer_of", "Officer", "Entity", fanout=1.6),
        E("intermediary_of", "intermediary_of", "Intermediary", "Entity",
          fanout=6.0),
        E("registered_address_E", "registered_address", "Entity", "Address",
          wiring="many_to_one"),
        E("registered_address_O", "registered_address", "Officer", "Address",
          wiring="many_to_one"),
        E("connected_to", "connected_to", "Entity", "Entity", fanout=0.5),
        E("same_name_as", "same_name_as", "Entity", "Entity", fanout=0.4),
        E("same_id_as", "same_id_as", "Entity", "Entity", fanout=0.2),
        E("same_as_officer", "same_as", "Officer", "Officer", fanout=0.3),
        E("shareholder_of", "shareholder_of", "Officer", "Entity", fanout=0.9),
        E("director_of", "director_of", "Officer", "Entity", fanout=0.8),
        E("beneficiary_of", "beneficiary_of", "Officer", "Entity", fanout=0.5),
        E("secretary_of", "secretary_of", "Officer", "Entity", fanout=0.3),
        E("trustee_of", "trustee_of", "Officer", "Entity", fanout=0.2),
        E("underlying", "underlying", "Other", "Entity", fanout=1.0),
    ),
)

"""POLE: crime-investigation benchmark (Person-Object-Location-Event) [75].

Synthetic equivalent of the Neo4j POLE example dataset: 11 single-label
node types, 17 edge types over 16 edge labels (CALLED appears with two
endpoint combinations), flat structure, few optional properties -- the
paper's "simple/homogeneous" end of the spectrum (paper scale: 61,521
nodes / 105,840 edges).
"""

from __future__ import annotations

from repro.datasets.base import (
    DatasetSpec,
    EdgeTypeSpec as E,
    NodeTypeSpec as N,
    PropertyGen as P,
)

POLE = DatasetSpec(
    name="POLE",
    default_nodes=1500,
    real=False,
    paper_nodes=61_521,
    paper_edges=105_840,
    node_types=(
        N("Person", ("Person",), (
            P("name", "name"), P("surname", "name"),
            P("nhs_no", "string"), P("age", "int"),
        ), weight=6.0),
        N("Officer", ("Officer",), (
            P("badge_no", "string"), P("rank", "string"),
            P("name", "name"), P("surname", "name"),
        ), weight=1.5),
        N("PhoneCall", ("PhoneCall",), (
            P("call_date", "date"), P("call_time", "datetime"),
            P("call_duration", "int", outlier_kind="string", outlier_rate=0.02),
            P("call_type", "string"),
        ), weight=8.0),
        N("Crime", ("Crime",), (
            P("date", "date"), P("type", "string"),
            P("last_outcome", "string", presence=0.8), P("note", "string", presence=0.3),
        ), weight=5.0),
        N("Location", ("Location",), (
            P("address", "string"), P("postcode", "string"),
            P("latitude", "float"), P("longitude", "float"),
        ), weight=5.0),
        N("Object", ("Object",), (
            P("description", "string"), P("object_id", "int"),
        ), weight=1.0),
        N("Vehicle", ("Vehicle",), (
            P("make", "string"), P("model", "string"),
            P("reg", "string"), P("year", "int"),
        ), weight=1.0),
        N("Area", ("Area",), (P("areaCode", "string"),), weight=0.5),
        N("PostCode", ("PostCode",), (P("code", "string"),), weight=1.5),
        N("Email", ("Email",), (P("email_address", "string"),), weight=1.0),
        N("Phone", ("Phone",), (P("phoneNo", "string"),), weight=1.5),
    ),
    edge_types=(
        E("KNOWS", "KNOWS", "Person", "Person", wiring="many_to_many", fanout=2.0),
        E("KNOWS_LW", "KNOWS_LW", "Person", "Person", fanout=0.7),
        E("KNOWS_PHONE", "KNOWS_PHONE", "Person", "Person", fanout=0.8),
        E("FAMILY_REL", "FAMILY_REL", "Person", "Person",
          (P("rel_type", "string"),), fanout=0.8),
        E("CALLER", "CALLED", "PhoneCall", "Phone", wiring="many_to_one"),
        E("CALLED", "CALLED", "PhoneCall", "Person", wiring="many_to_one"),
        E("HAS_PHONE", "HAS_PHONE", "Person", "Phone", wiring="many_to_one"),
        E("HAS_EMAIL", "HAS_EMAIL", "Person", "Email", wiring="many_to_one"),
        E("CURRENT_ADDRESS", "CURRENT_ADDRESS", "Person", "Location",
          wiring="many_to_one"),
        E("PARTY_TO", "PARTY_TO", "Person", "Crime", fanout=1.0),
        E("INVESTIGATED_BY", "INVESTIGATED_BY", "Crime", "Officer",
          wiring="many_to_one"),
        E("OCCURRED_AT", "OCCURRED_AT", "Crime", "Location", wiring="many_to_one"),
        E("INVOLVED_IN", "INVOLVED_IN", "Object", "Crime", fanout=1.2),
        E("VEHICLE_IN", "VEHICLE_INVOLVED", "Vehicle", "Crime", fanout=1.0),
        E("LOCATION_IN_AREA", "LOCATION_IN_AREA", "Location", "Area",
          wiring="many_to_one"),
        E("HAS_POSTCODE", "HAS_POSTCODE", "Location", "PostCode",
          wiring="many_to_one"),
        E("POSTCODE_IN_AREA", "POSTCODE_IN_AREA", "PostCode", "Area",
          wiring="many_to_one"),
    ),
)

"""Synthetic equivalents of the paper's eight evaluation datasets."""

from repro.datasets.base import (
    DatasetSpec,
    EdgeTypeSpec,
    GeneratedDataset,
    NodeTypeSpec,
    PropertyGen,
    generate_dataset,
)
from repro.datasets.noise import (
    apply_noise,
    reduce_label_availability,
    remove_properties,
)
from repro.datasets.registry import (
    ALL_SPECS,
    dataset_names,
    get_spec,
    load_all,
    load_dataset,
)

__all__ = [
    "ALL_SPECS",
    "DatasetSpec",
    "EdgeTypeSpec",
    "GeneratedDataset",
    "NodeTypeSpec",
    "PropertyGen",
    "apply_noise",
    "dataset_names",
    "generate_dataset",
    "get_spec",
    "load_all",
    "load_dataset",
    "reduce_label_availability",
    "remove_properties",
]

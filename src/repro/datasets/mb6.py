"""MB6: mushroom-body connectome of the adult fruit fly brain [92].

Synthetic equivalent of the neuPrint MB6 export: 4 ground-truth node types
distinguished by *multi-label combinations* over 10 labels (the neuPrint
convention tags every segment with the dataset label plus status labels),
3 edge labels spanning 5 edge types, and a large number of node patterns
(52 in the paper) driven by sparsely present measurement properties
(paper scale: 486,267 nodes / 961,571 edges).
"""

from __future__ import annotations

from repro.datasets.base import (
    DatasetSpec,
    EdgeTypeSpec as E,
    NodeTypeSpec as N,
    PropertyGen as P,
)

_SPARSE_NEURON_PROPS = (
    P("bodyId", "int"),
    P("status", "string", presence=0.85),
    P("statusLabel", "string", presence=0.5),
    P("pre", "int", presence=0.8),
    P("post", "int", presence=0.8),
    P("size", "int", presence=0.7, outlier_kind="string", outlier_rate=0.01),
    P("name", "name", presence=0.45),
    P("type", "string", presence=0.4),
    P("cropped", "bool", presence=0.3),
)

MB6 = DatasetSpec(
    name="MB6",
    default_nodes=2500,
    real=False,
    paper_nodes=486_267,
    paper_edges=961_571,
    node_types=(
        N("Neuron", ("Neuron", "Segment", "Cell", "mb6"), _SPARSE_NEURON_PROPS,
          weight=4.0),
        N("Segment", ("Segment", "mb6"), (
            P("bodyId", "int"),
            P("size", "int", presence=0.8),
            P("pre", "int", presence=0.4),
            P("post", "int", presence=0.4),
            P("cropped", "bool", presence=0.25),
        ), weight=10.0),
        N("SynapseSet", ("SynapseSet", "mb6", "ElementSet"), (
            P("datasetBodyIds", "string"),
        ), weight=5.0),
        N("Meta", ("Meta", "mb6", "Dataset", "Annotations", "DataModel"), (
            P("dataset", "string"), P("lastDatabaseEdit", "datetime"),
            P("uuid", "string"), P("totalPreCount", "int"),
            P("totalPostCount", "int"),
        ), weight=0.2),
    ),
    edge_types=(
        E("ConnectsTo_NN", "ConnectsTo", "Neuron", "Neuron",
          (P("weight", "int"), P("roiInfo", "string", presence=0.6)),
          wiring="many_to_many", fanout=3.0),
        E("ConnectsTo_SS", "ConnectsTo", "Segment", "Segment",
          (P("weight", "int"),), wiring="many_to_many", fanout=1.5),
        E("Contains_NSet", "Contains", "Neuron", "SynapseSet",
          wiring="many_to_many", fanout=1.2),
        E("Contains_SSet", "Contains", "Segment", "SynapseSet",
          wiring="many_to_many", fanout=0.4),
        E("From_Meta", "From", "SynapseSet", "Meta", wiring="many_to_one"),
    ),
)

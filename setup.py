"""Installable package metadata for the PG-HIVE reproduction.

``pip install -e .`` makes ``import repro`` work everywhere; the examples
additionally carry a tiny ``sys.path`` bootstrap so they run straight from
a source checkout without installation.
"""

from setuptools import find_packages, setup

setup(
    name="pg-hive-repro",
    version="0.1.0",
    description=(
        "Reproduction of PG-HIVE: hybrid incremental schema discovery "
        "for property graphs"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=["numpy", "scipy"],
)

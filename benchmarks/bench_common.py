"""Constants and helpers shared by the benchmark modules."""

from __future__ import annotations

import json
from pathlib import Path

#: Default scale keeps the full suite in the low minutes on one machine.
DEFAULT_GRID_SCALE = 0.25
SEED = 2026


def merge_json(path: Path, key: str, payload: dict) -> None:
    """Merge ``payload`` under ``key`` in the shared bench JSON file."""
    existing: dict = {}
    if path.exists():
        try:
            loaded = json.loads(path.read_text())
        except json.JSONDecodeError:
            loaded = None
        # Legacy layout (one bench at top level) is replaced wholesale.
        if isinstance(loaded, dict) and "bench" not in loaded:
            existing = loaded
    existing[key] = payload
    path.write_text(json.dumps(existing, indent=2) + "\n")


def emit(capsys, text: str) -> None:
    """Print ``text`` to the real terminal, bypassing pytest capture."""
    with capsys.disabled():
        print()
        print(text)

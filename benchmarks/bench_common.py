"""Constants and helpers shared by the benchmark modules."""

from __future__ import annotations

#: Default scale keeps the full suite in the low minutes on one machine.
DEFAULT_GRID_SCALE = 0.25
SEED = 2026


def emit(capsys, text: str) -> None:
    """Print ``text`` to the real terminal, bypassing pytest capture."""
    with capsys.disabled():
        print()
        print(text)

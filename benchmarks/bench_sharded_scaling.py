"""Sharded ingestion scaling: throughput vs shards, handoff, and pipeline.

Drives one synthetic columnar insert stream through
:class:`ShardedSchemaSession` across a variant grid -- shard count x
shard handoff (``pickle`` vs zero-copy ``shm``) x dispatch (lockstep
``apply`` vs pipelined ``ingest_stream``) -- and reports elements/sec
plus the speedup over that variant's own 1-shard run.  Two measurements
ride along:

* **per-hop payload bytes** -- what one shard part costs on the executor
  pipe: the full pickle versus the shm descriptor (name + layout; the
  rows stay in the shared block).  Measured on the coordinator alone, so
  the number is meaningful on any machine, single-core CI included.
* **merged-snapshot latency** at each shard count.

Gates:

* fingerprint gate (unconditional, every variant, full and ``--quick``):
  each run must match a single :class:`SchemaSession` consuming the same
  feed exactly;
* leak gate (unconditional): the shm block registry must own nothing
  after the runs;
* speedup gate: >= 2x at 4 process shards (best variant) -- enforced
  only when ``os.cpu_count() >= 4`` and 4 shards are in the sweep; on
  smaller machines process shards only add IPC overhead and the bench
  still measures honestly.  ``--require-speedup R`` overrides the floor.

Results merge into ``BENCH_ingest.json`` under the ``sharded_scaling``
key, alongside the ``ingest_columnar`` and ``dedup_ingest`` sections.

Run:        PYTHONPATH=src python benchmarks/bench_sharded_scaling.py
Quick (CI): PYTHONPATH=src python benchmarks/bench_sharded_scaling.py --quick
JSON:       ... --json BENCH_ingest.json
"""

from __future__ import annotations

import argparse
import os
import pickle
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_common import merge_json
from bench_incremental_stream import synthetic_stream

from repro.core.config import PGHiveConfig
from repro.core.session import SchemaSession
from repro.core.sharding import ShardedSchemaSession
from repro.core.shm import encode_changeset_shm, global_registry, shm_available
from repro.graph.changes import ChangeSet
from repro.graph.columnar import BatchBuilder, global_interner
from repro.schema.model import schema_fingerprint

SEED = 2026
FULL_BATCHES, FULL_NODES, FULL_SHARDS = 30, 400, (1, 2, 4)
QUICK_BATCHES, QUICK_NODES, QUICK_SHARDS = 8, 120, (1, 2)
#: Acceptance floor at 4 process shards on >= 4 cores.
REQUIRED_SPEEDUP = 2.0


def columnar_change_sets(batches) -> list[ChangeSet]:
    """Columnar change-sets (one per batch) over the process interner.

    Only columnar parts travel through shared memory, so the bench feeds
    the representation the handoff is built for; each synthetic batch is
    endpoint-complete (hubs are re-emitted per batch), so no stub rows
    are needed.
    """
    interner = global_interner()
    change_sets = []
    for batch in batches:
        builder = BatchBuilder(interner)
        for node in batch.nodes():
            builder.put_node_element(node)
        for edge in batch.edges():
            builder.add_edge_element(edge)
        change_sets.append(ChangeSet.inserts_columnar(builder.freeze()))
    return change_sets


def measure_payload_bytes(change_sets) -> dict:
    """Per-hop bytes: whole-change-set pickle vs shm descriptor."""
    registry = global_registry()
    pickled = descriptor_bytes = 0
    for change_set in change_sets:
        pickled += len(
            pickle.dumps(change_set, protocol=pickle.HIGHEST_PROTOCOL)
        )
        descriptor = encode_changeset_shm(change_set, registry)
        try:
            descriptor_bytes += descriptor.wire_nbytes()
        finally:
            registry.release(descriptor.block)
    hops = max(len(change_sets), 1)
    return {
        "pickle_bytes_per_hop": pickled / hops,
        "shm_descriptor_bytes_per_hop": descriptor_bytes / hops,
        "payload_reduction_x": pickled / max(descriptor_bytes, 1),
    }


def single_session_reference(change_sets, config):
    session = SchemaSession(config, schema_name="scaling-single")
    start = time.perf_counter()
    for change_set in change_sets:
        session.apply(change_set)
    ingest_seconds = time.perf_counter() - start
    return schema_fingerprint(session.schema()), ingest_seconds


def bench_variant(change_sets, n_shards, handoff, pipelined, parallel):
    config = PGHiveConfig(seed=SEED, shard_handoff=handoff)
    with ShardedSchemaSession(
        config,
        schema_name="scaling-sharded",
        n_shards=n_shards,
        parallel=parallel,
    ) as session:
        start = time.perf_counter()
        if pipelined:
            session.ingest_stream(change_sets)
        else:
            for change_set in change_sets:
                session.apply(change_set)
        ingest_seconds = time.perf_counter() - start
        start = time.perf_counter()
        schema = session.schema()
        merge_seconds = time.perf_counter() - start
        fingerprint = schema_fingerprint(schema)
    return fingerprint, {
        "n_shards": n_shards,
        "handoff": handoff,
        "pipelined": pipelined,
        "parallel": parallel,
        "ingest_seconds": ingest_seconds,
        "merge_ms": merge_seconds * 1000,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI scale")
    parser.add_argument("--batches", type=int, default=None)
    parser.add_argument("--nodes-per-batch", type=int, default=None)
    parser.add_argument(
        "--serial",
        action="store_true",
        help="in-process shards instead of worker processes",
    )
    parser.add_argument(
        "--require-speedup",
        type=float,
        default=None,
        metavar="R",
        help="override the 4-shard speedup floor (default: "
        f"{REQUIRED_SPEEDUP}x, gated only on >= 4 cores)",
    )
    parser.add_argument(
        "--json",
        type=Path,
        default=Path("BENCH_ingest.json"),
        help="shared bench output path (default: BENCH_ingest.json)",
    )
    args = parser.parse_args(argv)

    batch_count = args.batches or (QUICK_BATCHES if args.quick else FULL_BATCHES)
    nodes = args.nodes_per_batch or (QUICK_NODES if args.quick else FULL_NODES)
    shard_counts = QUICK_SHARDS if args.quick else FULL_SHARDS
    parallel = not args.serial
    cores = os.cpu_count() or 1

    batches = synthetic_stream(batch_count, nodes, SEED)
    change_sets = columnar_change_sets(batches)
    total = sum(len(batch) for batch in batches)
    handoffs = ["pickle"]
    if parallel and shm_available():
        handoffs.append("shm")
    mode = "process shards" if parallel else "serial shards"
    print(
        f"sharded scaling bench: {batch_count} columnar change-sets, "
        f"~{nodes} nodes each, {total:,} elements, {mode}, "
        f"handoffs {'/'.join(handoffs)}, {cores} core(s)"
    )

    payload_bytes = None
    if shm_available():
        payload_bytes = measure_payload_bytes(change_sets)
        print(
            f"  per-hop payload   {payload_bytes['pickle_bytes_per_hop']:10,.0f} B"
            " pickled vs "
            f"{payload_bytes['shm_descriptor_bytes_per_hop']:,.0f} B shm "
            f"descriptor ({payload_bytes['payload_reduction_x']:.0f}x smaller)"
        )

    config = PGHiveConfig(seed=SEED)
    reference, single_seconds = single_session_reference(change_sets, config)
    print(
        f"  single session    {total / max(single_seconds, 1e-12):10,.0f} "
        f"elements/sec ({single_seconds:.2f}s)"
    )

    rows = []
    fingerprints_match = True
    baselines: dict[tuple, float] = {}
    for handoff in handoffs:
        for pipelined in (False, True):
            for n_shards in shard_counts:
                fingerprint, row = bench_variant(
                    change_sets, n_shards, handoff, pipelined, parallel
                )
                row["matches_single_session"] = fingerprint == reference
                fingerprints_match &= row["matches_single_session"]
                key = (handoff, pipelined)
                baselines.setdefault(key, row["ingest_seconds"])
                row["throughput"] = total / max(row["ingest_seconds"], 1e-12)
                row["speedup_vs_1_shard"] = baselines[key] / max(
                    row["ingest_seconds"], 1e-12
                )
                rows.append(row)
                dispatch = "pipeline" if pipelined else "lockstep"
                print(
                    f"  {n_shards} shard(s) {handoff:>6}/{dispatch:<8} "
                    f"{row['throughput']:10,.0f} elements/sec  "
                    f"({row['ingest_seconds']:.2f}s ingest, "
                    f"{row['merge_ms']:.1f}ms snapshot, "
                    f"{row['speedup_vs_1_shard']:.2f}x vs 1 shard, "
                    f"match: {row['matches_single_session']})"
                )

    leaked_blocks = list(global_registry().live_blocks())

    required = (
        args.require_speedup
        if args.require_speedup is not None
        else REQUIRED_SPEEDUP
    )
    gate_shards = max(shard_counts)
    speedup_gated = parallel and cores >= 4 and gate_shards >= 4
    best_speedup = max(
        (
            row["speedup_vs_1_shard"]
            for row in rows
            if row["n_shards"] == gate_shards
        ),
        default=1.0,
    )

    merge_json(
        args.json,
        "sharded_scaling",
        {
            "quick": args.quick,
            "batches": batch_count,
            "nodes_per_batch": nodes,
            "total_elements": total,
            "seed": SEED,
            "cores": cores,
            "parallel": parallel,
            "shm_available": shm_available(),
            "payload_bytes": payload_bytes,
            "single_session_seconds": single_seconds,
            "variants": rows,
            "fingerprints_match": fingerprints_match,
            "leaked_blocks": leaked_blocks,
            "speedup_gate": {
                "enforced": speedup_gated,
                "required": required,
                "at_shards": gate_shards,
                "best": best_speedup,
            },
        },
    )
    print(f"  wrote {args.json}")

    if not fingerprints_match:
        print("FAIL: a sharded run diverged from the single-session schema")
        return 1
    if leaked_blocks:
        print(f"FAIL: leaked shared-memory blocks: {leaked_blocks}")
        return 1
    if speedup_gated and best_speedup < required:
        print(
            f"FAIL: best {gate_shards}-shard speedup {best_speedup:.2f}x "
            f"< required {required:.2f}x"
        )
        return 1
    if not speedup_gated:
        print(
            f"  (speedup gate skipped: {cores} core(s), "
            f"max {gate_shards} shard(s) in sweep)"
        )
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Sharded ingestion scaling: insert throughput vs shard count.

Drives one synthetic labelled insert stream through
:class:`ShardedSchemaSession` at several shard counts (each shard a
dedicated worker process) and reports elements/sec, speedup over the
1-shard baseline, and merged-snapshot latency.  Correctness gate: every
shard count must produce a schema fingerprint-identical to a single
:class:`SchemaSession` consuming the same feed -- the gate CI enforces in
``--quick`` mode.

Speedup expectations: partitioned ingestion parallelises preprocessing,
LSH clustering, and extraction across worker processes, so on a
multi-core machine the full run is expected to reach >= 2x insert
throughput at 4 process shards over 1.  On single-core containers (CI
runners included) process shards only add IPC overhead; the bench still
*measures* honestly and prints the machine's core count next to the
numbers.  Pass ``--require-speedup R`` to turn the speedup into a hard
gate on hardware where it is meaningful.

Run:        PYTHONPATH=src python benchmarks/bench_sharded_scaling.py
Quick (CI): PYTHONPATH=src python benchmarks/bench_sharded_scaling.py --quick
JSON:       ... --json sharded_bench.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_incremental_stream import synthetic_stream

from repro.core.config import PGHiveConfig
from repro.core.session import SchemaSession
from repro.core.sharding import ShardedSchemaSession
from repro.graph.changes import ChangeSet
from repro.schema.model import schema_fingerprint

SEED = 2026
FULL_BATCHES, FULL_NODES, FULL_SHARDS = 30, 400, (1, 2, 4)
QUICK_BATCHES, QUICK_NODES, QUICK_SHARDS = 8, 120, (1, 2)


def single_session_reference(change_sets, config):
    session = SchemaSession(config, schema_name="scaling-single")
    start = time.perf_counter()
    for change_set in change_sets:
        session.apply(change_set)
    ingest_seconds = time.perf_counter() - start
    return schema_fingerprint(session.schema()), ingest_seconds


def bench_shard_count(change_sets, config, n_shards, parallel):
    with ShardedSchemaSession(
        config,
        schema_name="scaling-sharded",
        n_shards=n_shards,
        parallel=parallel,
    ) as session:
        start = time.perf_counter()
        for change_set in change_sets:
            session.apply(change_set)
        ingest_seconds = time.perf_counter() - start
        start = time.perf_counter()
        schema = session.schema()
        merge_seconds = time.perf_counter() - start
        fingerprint = schema_fingerprint(schema)
    return fingerprint, {
        "n_shards": n_shards,
        "parallel": parallel,
        "ingest_seconds": ingest_seconds,
        "merge_ms": merge_seconds * 1000,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI scale")
    parser.add_argument("--batches", type=int, default=None)
    parser.add_argument("--nodes-per-batch", type=int, default=None)
    parser.add_argument(
        "--serial",
        action="store_true",
        help="in-process shards instead of worker processes",
    )
    parser.add_argument(
        "--require-speedup",
        type=float,
        default=None,
        metavar="R",
        help="fail unless max-shard speedup over 1 shard reaches R",
    )
    parser.add_argument("--json", type=Path, default=None, metavar="PATH")
    args = parser.parse_args(argv)

    batch_count = args.batches or (QUICK_BATCHES if args.quick else FULL_BATCHES)
    nodes = args.nodes_per_batch or (QUICK_NODES if args.quick else FULL_NODES)
    shard_counts = QUICK_SHARDS if args.quick else FULL_SHARDS
    parallel = not args.serial

    batches = synthetic_stream(batch_count, nodes, SEED)
    change_sets = [ChangeSet.from_graph(batch) for batch in batches]
    total = sum(len(batch) for batch in batches)
    cores = os.cpu_count() or 1
    mode = "process shards" if parallel else "serial shards"
    print(
        f"sharded scaling bench: {batch_count} change-sets, ~{nodes} nodes "
        f"each, {total:,} elements, {mode}, {cores} core(s)"
    )

    config = PGHiveConfig(seed=SEED)
    reference, single_seconds = single_session_reference(change_sets, config)
    print(
        f"  single session  {total / max(single_seconds, 1e-12):10,.0f} "
        f"elements/sec ({single_seconds:.2f}s)"
    )

    rows = []
    fingerprints_match = True
    baseline_seconds = None
    for n_shards in shard_counts:
        fingerprint, row = bench_shard_count(
            change_sets, config, n_shards, parallel
        )
        row["matches_single_session"] = fingerprint == reference
        fingerprints_match &= row["matches_single_session"]
        if baseline_seconds is None:
            baseline_seconds = row["ingest_seconds"]
        row["throughput"] = total / max(row["ingest_seconds"], 1e-12)
        row["speedup_vs_1_shard"] = baseline_seconds / max(
            row["ingest_seconds"], 1e-12
        )
        rows.append(row)
        print(
            f"  {n_shards} shard(s)      {row['throughput']:10,.0f} "
            f"elements/sec  ({row['ingest_seconds']:.2f}s ingest, "
            f"{row['merge_ms']:.1f}ms merged snapshot, "
            f"{row['speedup_vs_1_shard']:.2f}x vs 1 shard, "
            f"fingerprint match: {row['matches_single_session']})"
        )

    payload = {
        "batches": batch_count,
        "nodes_per_batch": nodes,
        "total_elements": total,
        "seed": SEED,
        "cores": cores,
        "parallel": parallel,
        "single_session_seconds": single_seconds,
        "shards": rows,
        "fingerprints_match": fingerprints_match,
    }
    if args.json is not None:
        args.json.write_text(json.dumps(payload, indent=2))
        print(f"  wrote {args.json}")

    if not fingerprints_match:
        print("FAIL: a sharded run diverged from the single-session schema")
        return 1
    if args.require_speedup is not None:
        best = max(row["speedup_vs_1_shard"] for row in rows)
        if best < args.require_speedup:
            print(
                f"FAIL: best speedup {best:.2f}x < required "
                f"{args.require_speedup:.2f}x"
            )
            return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())

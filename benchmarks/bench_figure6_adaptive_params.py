"""Figure 6: F1* heatmaps over the (T, alpha) ELSH grid vs adaptive choice.

For each dataset (0 % noise, 100 % labels) the ELSH parameters are swept
over a (num_tables, alpha) grid; the adaptive configuration's score and
chosen parameters are printed alongside (the red cross of the paper's
figure).  The reproduction claim: the adaptive choice lands within a small
margin of the best grid cell.
"""

from __future__ import annotations

from bench_common import SEED, emit

from repro.bench.experiments import figure6_heatmap
from repro.bench.harness import format_table

TABLE_COUNTS = (5, 10, 20, 30)
ALPHAS = (0.5, 1.0, 1.5, 2.0)


def test_figure6_adaptive_parameterization(benchmark, bench_datasets, capsys):
    heatmaps = []
    for dataset in bench_datasets:
        heatmaps.append(
            figure6_heatmap(
                dataset,
                table_counts=TABLE_COUNTS,
                alphas=ALPHAS,
                kind="nodes",
                seed=SEED,
            )
        )

    smallest = min(bench_datasets, key=lambda d: d.graph.node_count)
    benchmark.pedantic(
        lambda: figure6_heatmap(
            smallest, table_counts=(5,), alphas=(1.0,), kind="nodes", seed=SEED
        ),
        rounds=1,
        iterations=1,
    )

    for heatmap in heatmaps:
        headers = ["T \\ alpha"] + [str(alpha) for alpha in ALPHAS]
        rows = []
        for tables in TABLE_COUNTS:
            rows.append(
                [str(tables)]
                + [heatmap["cells"][(tables, alpha)] for alpha in ALPHAS]
            )
        title = (
            f"Figure 6 nodes heatmap: {heatmap['dataset']} -- adaptive "
            f"(T={heatmap['adaptive_T']}, alpha={heatmap['adaptive_alpha']}, "
            f"b={heatmap['adaptive_b']:.2f}) F1={heatmap['adaptive_f1']:.3f}"
        )
        emit(capsys, format_table(headers, rows, title=title))

    # Adaptive lands near the best grid configuration on most datasets.
    near_best = 0
    for heatmap in heatmaps:
        best = max(heatmap["cells"].values())
        if heatmap["adaptive_f1"] >= best - 0.1:
            near_best += 1
    assert near_best >= len(heatmaps) - 2, (
        f"adaptive near-best on only {near_best}/{len(heatmaps)} datasets"
    )

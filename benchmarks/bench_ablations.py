"""Ablation benches for PG-HIVE's design choices (beyond the paper's figures).

Three sweeps on a mid-complexity dataset (ICIJ) and a multi-label one (MB6):

* **grouping rule** -- AND (full-signature, the default) vs OR
  (union-find over per-table buckets): OR risks transitive over-merging;
* **theta** -- the Algorithm 2 Jaccard threshold, swept on a 0-label
  variant where the merge step does all the work;
* **label weight** -- the scale of the (normalised) label embedding
  relative to one binary property flag; 0 would make ELSH labels-blind.
"""

from __future__ import annotations

from bench_common import SEED, emit

from repro.bench.harness import bench_scale, format_table
from repro.core.config import ClusteringMethod, PGHiveConfig
from repro.core.pipeline import PGHive
from repro.datasets import apply_noise, load_dataset
from repro.eval.clustering_metrics import majority_f1
from repro.lsh.base import GroupingRule


def _f1(dataset, config) -> tuple[float, int]:
    result = PGHive(config).discover(dataset.graph)
    score = majority_f1(result.node_assignments(), dataset.node_truth)
    return score.macro_f1, result.schema.node_type_count


def test_ablation_grouping_rule(benchmark, capsys):
    nodes = int(1200 * bench_scale(1.0))
    dataset = load_dataset("ICIJ", nodes=nodes, seed=SEED)
    noisy = apply_noise(dataset, 0.3, 1.0, seed=SEED)
    rows = []
    for rule in GroupingRule:
        for method in ClusteringMethod:
            config = PGHiveConfig(
                method=method,
                grouping_rule=rule,
                post_processing=False,
                seed=SEED,
            )
            f1, types = _f1(noisy, config)
            rows.append([rule.value, method.value, f1, types])
    benchmark.pedantic(
        lambda: _f1(
            noisy, PGHiveConfig(post_processing=False, seed=SEED)
        ),
        rounds=1,
        iterations=1,
    )
    emit(
        capsys,
        format_table(
            ["Rule", "Method", "node F1*", "node types"],
            rows,
            title="Ablation: LSH grouping rule (ICIJ, 30% noise)",
        ),
    )
    by_rule = {}
    for rule, method, f1, _types in rows:
        by_rule.setdefault(rule, []).append(f1)
    # The AND default must not lose to OR on quality.
    assert min(by_rule["and"]) >= min(by_rule["or"]) - 0.05


def test_ablation_theta(benchmark, capsys):
    nodes = int(1200 * bench_scale(1.0))
    dataset = load_dataset("POLE", nodes=nodes, seed=SEED)
    unlabeled = apply_noise(dataset, 0.0, 0.0, seed=SEED)
    rows = []
    scores = {}
    for theta in (0.3, 0.5, 0.7, 0.9, 1.0):
        config = PGHiveConfig(theta=theta, post_processing=False, seed=SEED)
        f1, types = _f1(unlabeled, config)
        scores[theta] = (f1, types)
        rows.append([theta, f1, types])
    benchmark.pedantic(
        lambda: _f1(
            unlabeled, PGHiveConfig(theta=0.9, post_processing=False, seed=SEED)
        ),
        rounds=1,
        iterations=1,
    )
    emit(
        capsys,
        format_table(
            ["theta", "node F1*", "node types"],
            rows,
            title="Ablation: Jaccard merge threshold (POLE, 0% labels)",
        ),
    )
    # Section 4.3: lowering theta increases recall (fewer types) but mixes
    # types (precision, hence F1, drops or stays).
    assert scores[0.3][1] <= scores[0.9][1]
    assert scores[0.9][0] >= scores[0.3][0] - 1e-9


def test_ablation_label_weight(benchmark, capsys):
    nodes = int(1200 * bench_scale(1.0))
    dataset = load_dataset("MB6", nodes=nodes, seed=SEED)
    rows = []
    scores = {}
    for weight in (0.25, 1.0, 2.0, 4.0):
        config = PGHiveConfig(
            method=ClusteringMethod.ELSH,
            label_weight=weight,
            post_processing=False,
            seed=SEED,
        )
        f1, types = _f1(dataset, config)
        scores[weight] = f1
        rows.append([weight, f1, types])
    benchmark.pedantic(
        lambda: _f1(
            dataset,
            PGHiveConfig(
                method=ClusteringMethod.ELSH, post_processing=False, seed=SEED
            ),
        ),
        rounds=1,
        iterations=1,
    )
    emit(
        capsys,
        format_table(
            ["label weight", "node F1*", "node types"],
            rows,
            title="Ablation: label-embedding weight (MB6, ELSH)",
        ),
    )
    # The default (2.0) must match or beat the near-zero setting: labels are
    # what separates structurally identical multi-label types.
    assert scores[2.0] >= scores[0.25] - 0.02

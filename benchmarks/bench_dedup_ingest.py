"""Structural-dedup ingest throughput vs repeat ratio (single core).

Generates synthetic streams whose *structural* repeat ratio -- the share
of elements whose ``(labels, property-key set)`` structure was already
seen earlier in the stream -- is swept across a target grid, then
ingests each stream three ways into a streaming :class:`SchemaSession`:

* ``element``  -- ``Node``/``Edge`` dataclasses through
  :func:`changesets_from_elements` (the per-element baseline);
* ``columnar`` -- interned rows through
  :func:`columnar_changesets_from_rows` with ``structural_dedup=False``;
* ``dedup``    -- the same columnar feed with ``structural_dedup=True``,
  so repeats of an interned element signature take the
  O(distinct-structures) fast path (repeat clusters, accumulator
  ``observe_repeat`` folds, signature-grouped WAL encoding).

The structure generator is zipfian: repeats draw from a small hot pool
with ``1/rank**1.1`` weights, while fresh elements walk an endless
sequence of new key-set *combinations* over a bounded key pool.  Keys
bound, structures unbounded -- matching real exports, where property
vocabulary saturates long before structural variety does.  The realised
repeat ratio is measured from the emitted stream and recorded next to
the target.

Gates (always on, full and ``--quick``):

* every schema fingerprint-identical across all three feeds (dedup is
  an exact optimisation, not an approximation);
* dedup-on speedup over the element baseline must reach the floor in
  ``MIN_SPEEDUP`` for its ``(elements, ratio)`` row -- floors rise with
  the repeat ratio because that is the whole point of the bench, with
  the acceptance row at ratio 0.99 gated at >= 3x;
* the signature-grouped wire encoding must shrink change-set bytes by
  ``MIN_WAL_REDUCTION`` versus a reconstructed v1 per-row encoding.

Results merge into ``BENCH_ingest.json`` under the ``dedup_ingest``
key, alongside ``bench_ingest_columnar.py``'s ``ingest_columnar``
section.

Run:        PYTHONPATH=src python benchmarks/bench_dedup_ingest.py
Quick (CI): PYTHONPATH=src python benchmarks/bench_dedup_ingest.py --quick
JSON:       ... --json BENCH_ingest.json
"""

from __future__ import annotations

import argparse
import itertools
import pickle
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_common import merge_json

from repro.core.config import ClusteringMethod, PGHiveConfig
from repro.core.session import SchemaSession
from repro.graph.changes import ChangeSet, changesets_from_elements
from repro.graph.columnar import columnar_changesets_from_rows
from repro.graph.json_io import columnar_rows_from_records, record_to_element
from repro.schema.model import schema_fingerprint

SEED = 7
#: Full mode sweeps the repeat-ratio grid at one paper-ish scale; quick
#: (CI) runs one mid-ratio row at a smaller scale, gates still enforced.
FULL_ROWS = ((100_000, 0.80), (100_000, 0.90), (100_000, 0.99))
QUICK_ROWS = ((20_000, 0.90),)
#: Dedup-on speedup floors over the element baseline, per (elements,
#: target ratio) row.  Calibrated from measured trajectory (2.0-2.7x at
#: 0.80, 2.4-2.5x at 0.90, 4.2x at 0.99; +-15% machine noise) with
#: conservative margins.  The 0.99 row carries the acceptance gate:
#: >= 3x ingest speedup at a >= 80% structural repeat ratio.
MIN_SPEEDUP = {
    (100_000, 0.80): 1.6,
    (100_000, 0.90): 1.8,
    (100_000, 0.99): 3.0,
    (20_000, 0.90): 1.6,
}
#: Signature-grouped wire v2 vs reconstructed per-row v1 bytes; measured
#: 2.9-3.2x across the grid.
MIN_WAL_REDUCTION = 2.5
BATCH_SIZE = 5_000
#: Best-of-N timing (throughput gate; min damps scheduler noise).
REPEATS = 2
#: Node share of the element budget (rest becomes edges).
NODE_SHARE = 0.6
#: Zipf exponent for hot-structure draws.
ZIPF_EXPONENT = 1.1

NODE_LABEL_SETS = (
    ["Person"],
    ["Person", "Student"],
    ["City"],
    ["Company"],
    ["Org"],
    ["Post"],
)
EDGE_LABEL_SETS = (["KNOWS"], ["WORKS_AT"], ["LIKES"])
#: Bounded property vocabulary.  Fresh structures are new *combinations*
#: of these keys, never new keys: an unbounded key vocabulary would grow
#: the property-indicator vector dimension (and with it Word2Vec and
#: distance-scale estimation) and the bench would measure preprocessing
#: blow-up, not dedup.
KEY_POOL = [f"p{index:02d}" for index in range(36)]
INT_KEYS = set(KEY_POOL[::3])
FLOAT_KEYS = set(KEY_POOL[1::5])
BOOL_KEYS = set(KEY_POOL[2::7])


def _fresh_node_structures():
    """Endless distinct (labels, keys) node structures over KEY_POOL."""
    for size in itertools.count(2):
        for combo in itertools.combinations(KEY_POOL, min(size, 6)):
            for labels in NODE_LABEL_SETS:
                yield labels, list(combo)


def _fresh_edge_structures():
    """Endless distinct (labels, keys) edge structures over KEY_POOL."""
    for combo in itertools.combinations(KEY_POOL, 3):
        for labels in EDGE_LABEL_SETS:
            yield labels, list(combo)


def _value_for(key: str, index: int, rng) -> object:
    if key in INT_KEYS:
        return int(rng.integers(0, 90))
    if key in FLOAT_KEYS:
        return float(rng.random())
    if key in BOOL_KEYS:
        return bool(rng.random() < 0.5)
    return f"v{index % 97}"


def make_records(
    element_count: int, repeat_ratio: float, seed: int = SEED
) -> tuple[list[dict], float]:
    """One synthetic stream at a target structural repeat ratio.

    Returns ``(records, realised_ratio)`` where the realised ratio is
    measured from the emitted stream: the share of records whose
    ``(kind, labels, key set)`` was already emitted earlier.
    """
    rng = np.random.default_rng(seed)
    node_count = int(element_count * NODE_SHARE)
    hot_nodes = [
        (labels, [KEY_POOL[k] for k in range(1 + (rank % 4))])
        for rank, labels in enumerate(NODE_LABEL_SETS)
    ]
    hot_edges = [
        (labels, [KEY_POOL[10 + rank]])
        for rank, labels in enumerate(EDGE_LABEL_SETS)
    ]
    weights = 1.0 / np.arange(1, len(hot_nodes) + 1) ** ZIPF_EXPONENT
    weights /= weights.sum()
    fresh = rng.random(element_count) >= repeat_ratio
    picks = rng.choice(len(hot_nodes), size=element_count, p=weights)
    node_gen = _fresh_node_structures()
    edge_gen = _fresh_edge_structures()
    records: list[dict] = []
    for index in range(node_count):
        labels, keys = next(node_gen) if fresh[index] else hot_nodes[picks[index]]
        records.append(
            {
                "kind": "node",
                "id": f"n{index}",
                "labels": labels,
                "properties": {key: _value_for(key, index, rng) for key in keys},
            }
        )
    for index in range(node_count, element_count):
        if fresh[index]:
            labels, keys = next(edge_gen)
        else:
            labels, keys = hot_edges[int(picks[index]) % len(hot_edges)]
        records.append(
            {
                "kind": "edge",
                "id": f"e{index}",
                "source": f"n{int(rng.integers(0, node_count))}",
                "target": f"n{int(rng.integers(0, node_count))}",
                "labels": labels,
                "properties": {key: _value_for(key, index, rng) for key in keys},
            }
        )
    seen: set[tuple] = set()
    repeats = 0
    for record in records:
        structure = (
            record["kind"],
            tuple(record["labels"]),
            tuple(sorted(record["properties"])),
        )
        if structure in seen:
            repeats += 1
        else:
            seen.add(structure)
    return records, repeats / element_count


def _session(dedup: bool) -> SchemaSession:
    config = PGHiveConfig(
        method=ClusteringMethod.MINHASH, seed=SEED, structural_dedup=dedup
    )
    return SchemaSession(config, schema_name="dedup-ingest")


def ingest_feed(change_sets, dedup: bool) -> tuple[tuple, float]:
    """Drive one change-set feed to a final schema; returns (fp, seconds)."""
    session = _session(dedup)
    start = time.perf_counter()
    for change_set in change_sets:
        session.apply(change_set)
    session.schema()
    seconds = time.perf_counter() - start
    return schema_fingerprint(session.schema()), seconds


def element_run(records) -> tuple[tuple, float]:
    fingerprint, best = None, float("inf")
    for _ in range(REPEATS):
        feed = changesets_from_elements(
            (record_to_element(record) for record in records), BATCH_SIZE
        )
        fingerprint, seconds = ingest_feed(feed, dedup=False)
        best = min(best, seconds)
    return fingerprint, best


def columnar_run(records, dedup: bool) -> tuple[tuple, float]:
    fingerprint, best = None, float("inf")
    for _ in range(REPEATS):
        feed = columnar_changesets_from_rows(
            columnar_rows_from_records(records), BATCH_SIZE
        )
        fingerprint, seconds = ingest_feed(feed, dedup)
        best = min(best, seconds)
    return fingerprint, best


def _wire_v1_bytes(change_set: ChangeSet) -> int:
    """Reconstructed wire v1 size: per-row records, pickled, uncompressed.

    The pre-dedup encoding shipped one fully-materialised row per
    element (id, sorted labels, keys, values) with no structure grouping
    and no compression; rebuilding it from the live batch gives the v1
    baseline without keeping a legacy encoder in the library.
    """
    batch = change_set.columnar
    interner = batch.interner
    record = {
        "version": 1,
        "kind": "columnar",
        "delete_nodes": [],
        "delete_edges": [],
        "stubs": sorted(change_set.stub_node_ids),
        "node_rows": [
            (
                batch.nodes.ids[row],
                sorted(interner.labelset(batch.nodes.labelset_list[row]).labels),
                interner.keyset(batch.nodes.keyset_list[row]).keys,
                tuple(batch.node_record(row)[2]),
            )
            for row in range(len(batch.nodes))
        ],
        "edge_rows": [
            (
                batch.edges.ids[row],
                batch.edge_record(row)[0],
                batch.edge_record(row)[1],
                sorted(interner.labelset(batch.edges.labelset_list[row]).labels),
                interner.keyset(batch.edges.keyset_list[row]).keys,
                tuple(batch.edge_record(row)[4]),
            )
            for row in range(len(batch.edges))
        ],
    }
    return len(pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL))


def wal_bytes(records) -> tuple[int, int]:
    """(v1, v2) wire bytes for the stream's change-sets."""
    v1 = v2 = 0
    for change_set in columnar_changesets_from_rows(
        columnar_rows_from_records(records), BATCH_SIZE
    ):
        v1 += _wire_v1_bytes(change_set)
        v2 += len(change_set.to_wire())
    return v1, v2


def run(rows) -> tuple[int, list[dict]]:
    results: list[dict] = []
    failed = False
    for element_count, target_ratio in rows:
        records, realised_ratio = make_records(element_count, target_ratio)
        element_fp, element_seconds = element_run(records)
        dedup_fp, dedup_seconds = columnar_run(records, dedup=True)
        plain_fp, plain_seconds = columnar_run(records, dedup=False)
        v1_bytes, v2_bytes = wal_bytes(records)
        identical = element_fp == dedup_fp == plain_fp
        speedup = element_seconds / dedup_seconds
        vs_columnar = plain_seconds / dedup_seconds
        wal_reduction = v1_bytes / v2_bytes
        results.append(
            {
                "elements": element_count,
                "target_repeat_ratio": target_ratio,
                "realised_repeat_ratio": round(realised_ratio, 4),
                "element_seconds": round(element_seconds, 4),
                "columnar_seconds": round(plain_seconds, 4),
                "dedup_seconds": round(dedup_seconds, 4),
                "element_eps": round(element_count / element_seconds),
                "columnar_eps": round(element_count / plain_seconds),
                "dedup_eps": round(element_count / dedup_seconds),
                "speedup_vs_element": round(speedup, 2),
                "speedup_vs_columnar": round(vs_columnar, 2),
                "wal_v1_bytes": v1_bytes,
                "wal_v2_bytes": v2_bytes,
                "wal_reduction": round(wal_reduction, 2),
                "fingerprint_identical": identical,
            }
        )
        print(
            f"[{element_count:>7} @ {target_ratio:.2f} "
            f"(realised {realised_ratio:.3f})] "
            f"element {element_seconds:5.2f}s  "
            f"columnar {plain_seconds:5.2f}s  dedup {dedup_seconds:5.2f}s  "
            f"speedup {speedup:4.2f}x (vs columnar {vs_columnar:4.2f}x)  "
            f"WAL {wal_reduction:4.2f}x  "
            f"fingerprint {'OK' if identical else 'MISMATCH'}"
        )
        if not identical:
            print("FAIL: dedup schema diverges from the element oracle")
            failed = True
        floor = MIN_SPEEDUP.get((element_count, target_ratio))
        if floor is None:
            print(
                f"FAIL: no speedup gate registered for "
                f"({element_count}, {target_ratio}); add it to MIN_SPEEDUP"
            )
            failed = True
        elif speedup < floor:
            print(
                f"FAIL: dedup speedup {speedup:.2f}x at ratio "
                f"{target_ratio} is below the {floor}x gate"
            )
            failed = True
        else:
            print(f"gate OK: {speedup:.2f}x >= {floor}x at ratio {target_ratio}")
        if wal_reduction < MIN_WAL_REDUCTION:
            print(
                f"FAIL: WAL reduction {wal_reduction:.2f}x is below the "
                f"{MIN_WAL_REDUCTION}x gate"
            )
            failed = True
    return (1 if failed else 0), results


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI mode: one mid-ratio row at reduced scale (gates enforced)",
    )
    parser.add_argument(
        "--json",
        type=Path,
        default=Path("BENCH_ingest.json"),
        help="shared bench output path (default: BENCH_ingest.json)",
    )
    args = parser.parse_args()
    rows = QUICK_ROWS if args.quick else FULL_ROWS
    exit_code, results = run(rows)
    payload = {
        "quick": args.quick,
        "batch_size": BATCH_SIZE,
        "min_speedup": {
            f"{count}@{ratio}": MIN_SPEEDUP[(count, ratio)]
            for count, ratio in rows
        },
        "min_wal_reduction": MIN_WAL_REDUCTION,
        "results": results,
    }
    merge_json(args.json, "dedup_ingest", payload)
    print(f"wrote {args.json}")
    return exit_code


if __name__ == "__main__":
    sys.exit(main())

"""Table 2: dataset statistics.

Prints the generated datasets' statistics next to the paper-scale
reference counts, so the shape correspondence (type/label/pattern
structure) is inspectable at a glance.
"""

from __future__ import annotations

from bench_common import SEED, emit

from repro.bench.harness import bench_scale, format_table
from repro.datasets import generate_dataset, get_spec
from repro.graph.statistics import TABLE2_HEADER


def test_table2_dataset_statistics(benchmark, bench_datasets, capsys):
    # Benchmark one representative generation (POLE at bench scale).
    spec = get_spec("POLE")
    nodes = max(2 * len(spec.node_types), int(spec.default_nodes * bench_scale(0.25)))
    benchmark(lambda: generate_dataset(spec, nodes=nodes, seed=SEED))

    rows = []
    for dataset in bench_datasets:
        stats = dataset.statistics()
        rows.append(list(stats.as_row()))
    emit(
        capsys,
        format_table(
            list(TABLE2_HEADER), rows, title="Table 2: generated dataset statistics"
        ),
    )
    reference = [
        [
            dataset.spec.name,
            dataset.spec.paper_nodes,
            dataset.spec.paper_edges,
            len(dataset.spec.node_types),
            len(dataset.spec.edge_types),
        ]
        for dataset in bench_datasets
    ]
    emit(
        capsys,
        format_table(
            ["Dataset", "Paper Nodes", "Paper Edges", "GT Node Types", "GT Edge Types"],
            reference,
            title="Paper-scale reference (Table 2)",
        ),
    )

    by_name = {d.name: d.statistics() for d in bench_datasets}
    # Ground-truth type inventories must match the paper exactly.
    assert by_name["POLE"].node_types == 11 and by_name["POLE"].edge_types == 17
    assert by_name["MB6"].node_types == 4 and by_name["MB6"].edge_types == 5
    assert by_name["HET.IO"].node_types == 11 and by_name["HET.IO"].edge_types == 24
    assert by_name["FIB25"].node_types == 4 and by_name["FIB25"].edge_types == 5
    assert by_name["ICIJ"].node_types == 5 and by_name["ICIJ"].edge_types == 14
    assert by_name["LDBC"].node_types == 7 and by_name["LDBC"].edge_types == 17
    assert by_name["CORD19"].node_types == 16 and by_name["CORD19"].edge_types == 16
    # Structural-shape checks: multi-label datasets expose more labels than
    # types; integration datasets expose many patterns.
    assert by_name["MB6"].node_labels > by_name["MB6"].node_types
    assert by_name["ICIJ"].node_patterns > 50
    assert by_name["IYP"].node_patterns > 100

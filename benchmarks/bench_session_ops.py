"""Session change-feed throughput: inserts/sec, deletes/sec, snapshots.

Drives a synthetic labelled stream through one :class:`SchemaSession` and
measures the operations a long-lived service cares about:

* **insert throughput** -- elements/sec through ``apply`` on insert-only
  change-sets (streaming accumulators on, no union graph);
* **delete throughput** -- elements/sec through deletion change-sets on a
  union-retaining session;
* **snapshot latency** -- ``session.schema()`` immediately after a write
  (dirty: one O(|schema|) post-processing pass) vs on a quiet feed
  (cached: no work);
* **checkpoint / restore** -- wall time and file size, plus a
  correctness gate: the restored session must fingerprint identically.

Run:        PYTHONPATH=src python benchmarks/bench_session_ops.py
Quick (CI): PYTHONPATH=src python benchmarks/bench_session_ops.py --quick
JSON:       ... --json session_bench.json
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_incremental_stream import synthetic_stream

from repro.core.config import PGHiveConfig
from repro.core.session import SchemaSession
from repro.graph.changes import ChangeSet
from repro.schema.model import schema_fingerprint

SEED = 2026
FULL_BATCHES, FULL_NODES = 40, 300
QUICK_BATCHES, QUICK_NODES = 10, 120
#: Fraction of nodes deleted again during the deletion phase.
DELETE_FRACTION = 0.3


def bench_inserts(batches, config) -> tuple[SchemaSession, dict]:
    session = SchemaSession(config, schema_name="bench-inserts")
    elements = 0
    start = time.perf_counter()
    for batch in batches:
        session.apply(ChangeSet.from_graph(batch))
        elements += len(batch)
    elapsed = time.perf_counter() - start
    return session, {
        "elements": elements,
        "seconds": elapsed,
        "inserts_per_second": elements / max(elapsed, 1e-12),
    }


def bench_snapshots(session: SchemaSession, samples: int = 5) -> dict:
    dirty_latencies = []
    cached_latencies = []
    for _ in range(samples):
        session._dirty = True  # simulate a write having just landed
        start = time.perf_counter()
        session.schema()
        dirty_latencies.append(time.perf_counter() - start)
        start = time.perf_counter()
        session.schema()  # quiet feed: served from cache
        cached_latencies.append(time.perf_counter() - start)
    return {
        "dirty_ms": float(np.median(dirty_latencies)) * 1000,
        "cached_ms": float(np.median(cached_latencies)) * 1000,
    }


def bench_deletes(batches, config, rng) -> dict:
    session = SchemaSession(
        config, schema_name="bench-deletes", retain_union=True
    )
    node_ids: list[str] = []
    for batch in batches:
        session.apply(ChangeSet.from_graph(batch))
        node_ids.extend(batch.node_ids())
    victims = list(
        rng.choice(
            sorted(set(node_ids)),
            size=int(len(set(node_ids)) * DELETE_FRACTION),
            replace=False,
        )
    )
    chunk = max(1, len(victims) // 20)
    deleted_nodes = deleted_edges = 0
    start = time.perf_counter()
    for lo in range(0, len(victims), chunk):
        report = session.apply(
            ChangeSet.deletions(nodes=victims[lo : lo + chunk])
        )
        deleted_nodes += report.nodes_deleted
        deleted_edges += report.edges_deleted
    elapsed = time.perf_counter() - start
    removed = deleted_nodes + deleted_edges
    return {
        "deleted_nodes": deleted_nodes,
        "deleted_edges": deleted_edges,
        "seconds": elapsed,
        "deletes_per_second": removed / max(elapsed, 1e-12),
    }


def bench_checkpoint(session: SchemaSession) -> tuple[bool, dict]:
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "bench.ckpt"
        start = time.perf_counter()
        session.checkpoint(path)
        checkpoint_seconds = time.perf_counter() - start
        size = path.stat().st_size
        start = time.perf_counter()
        restored = SchemaSession.restore(path)
        restore_seconds = time.perf_counter() - start
    identical = schema_fingerprint(restored.schema_graph) == schema_fingerprint(
        session.schema_graph
    )
    return identical, {
        "checkpoint_ms": checkpoint_seconds * 1000,
        "restore_ms": restore_seconds * 1000,
        "bytes": size,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI scale")
    parser.add_argument("--batches", type=int, default=None)
    parser.add_argument("--nodes-per-batch", type=int, default=None)
    parser.add_argument("--json", type=Path, default=None, metavar="PATH")
    args = parser.parse_args(argv)

    batch_count = args.batches or (QUICK_BATCHES if args.quick else FULL_BATCHES)
    nodes = args.nodes_per_batch or (QUICK_NODES if args.quick else FULL_NODES)
    batches = synthetic_stream(batch_count, nodes, SEED)
    total = sum(len(b) for b in batches)
    print(
        f"session ops bench: {batch_count} change-sets, ~{nodes} nodes each, "
        f"{total:,} elements total"
    )

    config = PGHiveConfig(seed=SEED, infer_keys=True)
    session, inserts = bench_inserts(batches, config)
    print(
        f"  inserts    {inserts['inserts_per_second']:10,.0f} elements/sec "
        f"({inserts['elements']:,} elements in {inserts['seconds']:.2f}s)"
    )

    snapshots = bench_snapshots(session)
    print(
        f"  snapshot   dirty {snapshots['dirty_ms']:7.2f}ms   "
        f"cached {snapshots['cached_ms']:7.4f}ms"
    )

    deletes = bench_deletes(batches, config, np.random.default_rng(SEED))
    print(
        f"  deletes    {deletes['deletes_per_second']:10,.0f} elements/sec "
        f"({deletes['deleted_nodes']:,}N + {deletes['deleted_edges']:,}E "
        f"in {deletes['seconds']:.2f}s)"
    )

    identical, checkpoint = bench_checkpoint(session)
    print(
        f"  checkpoint {checkpoint['checkpoint_ms']:7.1f}ms write, "
        f"{checkpoint['restore_ms']:7.1f}ms restore, "
        f"{checkpoint['bytes'] / 1e6:.2f}MB on disk, "
        f"restore bit-identical: {identical}"
    )

    payload = {
        "batches": batch_count,
        "nodes_per_batch": nodes,
        "total_elements": total,
        "seed": SEED,
        "inserts": inserts,
        "snapshots": snapshots,
        "deletes": deletes,
        "checkpoint": checkpoint,
        "restore_identical": identical,
    }
    if args.json is not None:
        args.json.write_text(json.dumps(payload, indent=2))
        print(f"  wrote {args.json}")

    if not identical:
        print("FAIL: restored session fingerprint differs from the original")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())

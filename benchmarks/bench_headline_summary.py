"""Section 5 headline numbers derived from the quality grid.

Paper: "PG-HIVE achieves up to 65% higher accuracy for nodes, 40% for
edges, and 1.95x faster execution compared to existing methods."  The
accuracy gaps reproduce (and exceed, on multi-label datasets) in this
substrate; the SchemI speed ratio does not (see EXPERIMENTS.md for why),
so it is printed but not asserted.
"""

from __future__ import annotations

from bench_common import emit

from repro.bench.experiments import headline_summary
from repro.bench.harness import format_table


def test_headline_summary(benchmark, quality_grid, capsys):
    summary = benchmark(lambda: headline_summary(quality_grid))
    rows = [
        ["max node F1* gain vs baselines", summary["max_node_f1_gain"]],
        ["max edge F1* gain vs baselines", summary["max_edge_f1_gain"]],
        ["max speedup vs SchemI", summary["max_speedup_vs_schemi"]],
        ["paper: node gain", "0.65 (up to)"],
        ["paper: edge gain", "0.40 (up to)"],
        ["paper: speedup vs SchemI", "1.95x (Spark substrate)"],
    ]
    emit(capsys, format_table(["Quantity", "Value"], rows, title="Headline summary"))

    # The paper's accuracy claims hold (or are exceeded) in this substrate.
    assert summary["max_node_f1_gain"] >= 0.4
    assert summary["max_edge_f1_gain"] >= 0.25

"""Figure 8: distribution of datatype-inference sampling errors.

For every dataset and both clustering variants, discovery runs first, then
each (type, property) pair's sampled datatype inference is compared to the
full scan with the section 5 error definition; errors are binned per the
paper.  The reproduction claim: most properties land in the lowest bin,
with a small heterogeneous tail (>= 0.20) on integration-heavy datasets.
"""

from __future__ import annotations

from bench_common import SEED, emit

from repro.bench.experiments import figure8_sampling_errors
from repro.bench.harness import format_table
from repro.core.config import ClusteringMethod
from repro.eval.sampling_error import BIN_LABELS


def test_figure8_sampling_error_bins(benchmark, bench_datasets, capsys):
    smallest = min(bench_datasets, key=lambda d: d.graph.node_count)
    benchmark.pedantic(
        lambda: figure8_sampling_errors(smallest, ClusteringMethod.MINHASH, seed=SEED),
        rounds=1,
        iterations=1,
    )

    for method in (ClusteringMethod.ELSH, ClusteringMethod.MINHASH):
        rows = []
        lowest_bin_shares = []
        for dataset in bench_datasets:
            bins = figure8_sampling_errors(dataset, method, seed=SEED)
            rows.append([dataset.name] + [bins[label] for label in BIN_LABELS])
            lowest_bin_shares.append((dataset.name, bins[BIN_LABELS[0]]))
        emit(
            capsys,
            format_table(
                ["Dataset", *BIN_LABELS],
                rows,
                title=f"Figure 8: sampling-error bins ({method.value})",
            ),
        )
        # "Most properties fall into the lowest error range."
        for name, share in lowest_bin_shares:
            assert share >= 0.7, (method.value, name, share)

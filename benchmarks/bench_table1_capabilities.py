"""Table 1: capability matrix of the schema-discovery approaches.

Regenerates the paper's qualitative comparison from the living
implementations: each capability flag is asserted against actual behaviour
(e.g. "label independent" is checked by running on an unlabeled graph),
not just declared.
"""

from __future__ import annotations

from bench_common import emit

from repro.baselines.base import UnsupportedGraphError
from repro.baselines.gmm_schema import CAPABILITIES as GMM_CAPABILITIES
from repro.baselines.gmm_schema import GMMSchema
from repro.baselines.schemi import CAPABILITIES as SCHEMI_CAPABILITIES
from repro.baselines.schemi import SchemI
from repro.bench.harness import format_table
from repro.core.pipeline import CAPABILITIES as PGHIVE_CAPABILITIES
from repro.core.pipeline import PGHive
from repro.datasets import load_dataset, reduce_label_availability

#: DiscoPG is GMMSchema's demo; its row comes from the paper (no system to run).
DISCOPG_CAPABILITIES = {
    "label_independent": False,
    "multilabeled_elements": True,
    "schema_elements": "nodes, queries associated edges",
    "constraints": False,
    "incremental": True,
    "automation": True,
    "notes": "Demo of GMMSchema",
}

ROWS = (
    ("SchemI", SCHEMI_CAPABILITIES),
    ("GMMSchema", GMM_CAPABILITIES),
    ("DiscoPG", DISCOPG_CAPABILITIES),
    ("PG-HIVE (ours)", PGHIVE_CAPABILITIES),
)


def test_table1_capabilities(benchmark, capsys):
    dataset = load_dataset("POLE", nodes=300, seed=1)
    unlabeled = reduce_label_availability(dataset.graph, 0.0, seed=2)

    # Verify the "label independent" column against actual behaviour.
    result = benchmark(lambda: PGHive().discover(unlabeled))
    assert result.schema.node_type_count > 0

    for baseline in (GMMSchema(), SchemI()):
        try:
            baseline.run(unlabeled)
            raised = False
        except UnsupportedGraphError:
            raised = True
        assert raised, f"{baseline.name} should reject unlabeled data"

    headers = ["Capability"] + [name for name, _ in ROWS]
    keys = (
        ("Label independent", "label_independent"),
        ("Multilabeled elements", "multilabeled_elements"),
        ("Schema elements", "schema_elements"),
        ("Constraints", "constraints"),
        ("Incremental", "incremental"),
        ("Automation", "automation"),
        ("Notes", "notes"),
    )
    table_rows = [
        [label] + [caps[key] for _, caps in ROWS] for label, key in keys
    ]
    emit(capsys, format_table(headers, table_rows, title="Table 1: capabilities"))

    assert PGHIVE_CAPABILITIES["label_independent"]
    assert PGHIVE_CAPABILITIES["constraints"]
    assert PGHIVE_CAPABILITIES["incremental"]
    assert not GMM_CAPABILITIES["label_independent"]
    assert not SCHEMI_CAPABILITIES["constraints"]

"""Figure 7: incremental execution time per batch.

Each dataset is split into 10 random insert batches and processed by the
incremental engine under both LSH variants; the per-batch seconds are the
paper's series.  The reproduction claim: batch times stay flat (no
full-recomputation blow-up as the accumulated schema grows).
"""

from __future__ import annotations

import statistics

from bench_common import SEED, emit

from repro.bench.experiments import figure7_incremental
from repro.bench.harness import format_table
from repro.core.config import ClusteringMethod

BATCHES = 10


def test_figure7_incremental_batches(benchmark, bench_datasets, capsys):
    smallest = min(bench_datasets, key=lambda d: d.graph.node_count)
    benchmark.pedantic(
        lambda: figure7_incremental(
            smallest, ClusteringMethod.MINHASH, batch_count=3, seed=SEED
        ),
        rounds=1,
        iterations=1,
    )

    for method in (ClusteringMethod.ELSH, ClusteringMethod.MINHASH):
        rows = []
        flat_checks: list[tuple[str, list[float]]] = []
        for dataset in bench_datasets:
            seconds = figure7_incremental(
                dataset, method, batch_count=BATCHES, seed=SEED
            )
            rows.append([dataset.name, *seconds])
            flat_checks.append((dataset.name, seconds))
        headers = ["Dataset"] + [str(i + 1) for i in range(BATCHES)]
        emit(
            capsys,
            format_table(
                headers,
                rows,
                title=f"Figure 7: incremental seconds per batch (PG-HIVE-{method.value})",
            ),
        )

        for name, seconds in flat_checks:
            median = statistics.median(seconds)
            if median > 0.05:
                # Later batches must not blow up: merging into the schema is
                # O(C_b * C_n), not a recomputation over all seen data.
                assert max(seconds[-3:]) <= 5.0 * median, (name, seconds)

"""Figure 3: statistical significance of F1* differences (Nemenyi test).

Average ranks over all (dataset x noise) cases at 100 % label availability,
for node types (4 methods) and edge types (3 methods -- GMM produces no
edge types), with the Nemenyi critical difference.
"""

from __future__ import annotations

from bench_common import emit

from repro.bench.experiments import figure3_ranking
from repro.bench.harness import format_table
from repro.eval.ranking import nemenyi_test


def test_figure3_nemenyi_ranks(benchmark, quality_grid, capsys):
    nodes_result, edges_result = figure3_ranking(quality_grid)

    # Benchmark the statistical analysis itself.
    node_scores: dict[str, list[float]] = {}
    for case in quality_grid.select(availability=1.0):
        if case.node_f1 is not None:
            node_scores.setdefault(case.method, []).append(case.node_f1)
    benchmark(lambda: nemenyi_test(node_scores))

    for title, result in (
        ("Figure 3 (nodes): average ranks", nodes_result),
        ("Figure 3 (edges): average ranks", edges_result),
    ):
        rows = [[name, rank] for name, rank in result.ordered()]
        table = format_table(["Method", "Avg rank (lower=better)"], rows, title=title)
        table += (
            f"\nCD(alpha={result.alpha}) = {result.critical_difference:.3f} "
            f"over {result.case_count} cases"
        )
        emit(capsys, table)

    node_ranks = nodes_result.ranks
    pg_best = min(node_ranks["PG-HIVE-ELSH"], node_ranks["PG-HIVE-MinHash"])
    pg_worst = max(node_ranks["PG-HIVE-ELSH"], node_ranks["PG-HIVE-MinHash"])
    # Paper: the two PG-HIVE variants form a group with no major difference,
    # both ahead of GMM and SchemI.
    assert abs(node_ranks["PG-HIVE-ELSH"] - node_ranks["PG-HIVE-MinHash"]) < (
        nodes_result.critical_difference
    )
    assert pg_worst <= node_ranks["GMM"]
    assert pg_worst <= node_ranks["SchemI"]
    # At least one baseline is significantly worse than the best PG-HIVE.
    assert (
        node_ranks["GMM"] - pg_best >= nodes_result.critical_difference
        or node_ranks["SchemI"] - pg_best >= nodes_result.critical_difference
    )

    edge_ranks = edges_result.ranks
    assert "GMM" not in edge_ranks
    pg_edge_best = min(edge_ranks["PG-HIVE-ELSH"], edge_ranks["PG-HIVE-MinHash"])
    assert pg_edge_best <= edge_ranks["SchemI"]

"""Figure 5: execution time until type discovery, per dataset and noise.

Prints wall-clock seconds for every method at 100 % label availability
across the noise grid.  The reproducible *shape* claims (section 5.1):
PG-HIVE's runtime is insensitive to noise, while GMM's cost grows with
noise as the number of mixture components inflates.  The absolute
PG-HIVE-vs-SchemI ratio is substrate-dependent (see EXPERIMENTS.md).
"""

from __future__ import annotations

import statistics

from bench_common import SEED, emit

from repro.bench.experiments import figure5_series
from repro.bench.harness import NOISE_LEVELS, PGHiveMethod, format_table
from repro.core.config import ClusteringMethod


def test_figure5_execution_time(benchmark, quality_grid, bench_datasets, capsys):
    largest = max(bench_datasets, key=lambda d: d.graph.node_count)
    method = PGHiveMethod(ClusteringMethod.MINHASH, seed=SEED)
    benchmark(lambda: method.run(largest.graph))

    headers = ["Dataset", "Method"] + [
        f"{int(noise * 100)}%" for noise in NOISE_LEVELS
    ]
    series = figure5_series(quality_grid)
    rows = [
        [dataset, method_name, *values] for dataset, method_name, values in series
    ]
    emit(
        capsys,
        format_table(headers, rows, title="Figure 5: execution seconds vs noise"),
    )

    # PG-HIVE's runtime is flat across noise levels (within jitter bounds).
    for dataset, method_name, values in series:
        if not method_name.startswith("PG-HIVE"):
            continue
        timings = [v for v in values if v is not None]
        assert timings, (dataset, method_name)
        if min(timings) > 0.05:  # jitter dominates below this
            assert max(timings) / min(timings) < 4.0, (
                dataset,
                method_name,
                timings,
            )

    # GMM tends to get slower with noise (paper: cluster count inflates).
    slower, total = 0, 0
    for dataset, method_name, values in series:
        if method_name != "GMM":
            continue
        timings = [v for v in values if v is not None]
        if len(timings) == len(NOISE_LEVELS):
            total += 1
            if statistics.mean(timings[-2:]) >= statistics.mean(timings[:2]) * 0.8:
                slower += 1
    assert total > 0
    assert slower / total >= 0.5, f"GMM slowed with noise on only {slower}/{total}"

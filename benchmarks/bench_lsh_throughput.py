"""MinHash signature throughput: batched uint64 kernel vs seed scalar path.

The seed implementation hashed ``(a*x + b) mod p`` through object-dtype
Python big-int arithmetic, one interpreted multiply per hash per token.
The vectorized kernel (``MinHashLSH.signatures_batch``) hashes every
distinct token set of a workload in one NumPy pass.  This bench builds a
synthetic workload of distinct token sets shaped like real structural
patterns (a label token plus a handful of property-key tokens), times both
paths, verifies bit-identical signatures on a sample, and asserts the
vectorized path is at least 10x faster.

Run:  PYTHONPATH=src python -m pytest -q benchmarks/bench_lsh_throughput.py
Quick mode (CI):  PGHIVE_BENCH_QUICK=1 ... (smaller set count, same checks)
"""

from __future__ import annotations

import os
import time

import numpy as np

from bench_common import SEED, emit

from repro.lsh.base import group_by_signature
from repro.lsh.minhash import MinHashLSH, scalar_signature

QUICK = os.environ.get("PGHIVE_BENCH_QUICK", "") == "1"
#: Acceptance workload: 100k distinct token sets (2k in CI quick mode).
NUM_SETS = 2_000 if QUICK else 100_000
#: Scalar path is timed on a subsample and scaled to per-set cost; big-int
#: arithmetic is slow enough that the full workload would dominate CI.
SCALAR_SAMPLE = 500 if QUICK else 2_000
NUM_TABLES = 16
BAND_SIZE = 2
#: Timing is asserted only at full scale; quick mode (CI, shared runners)
#: measures single-digit milliseconds where scheduler noise can flake, so
#: there it checks bit-identity and reports the timings without gating.
MIN_SPEEDUP = None if QUICK else 10.0
#: AND-rule grouping gate (same quick-mode waiver): the bytes-keyed pass
#: must beat the seed tuple loop, if not by the kernel's margin.
MIN_GROUPING_SPEEDUP = None if QUICK else 1.2


def synthetic_token_sets(count: int, seed: int) -> list[frozenset[str]]:
    """``count`` *distinct* token sets mimicking structural patterns.

    Patterns draw from a shared vocabulary (64 label tokens, 512 property
    keys), as real graphs do; distinctness comes from the combinatorics of
    the draws, with explicit dedup so the signature cache cannot collapse
    the workload.
    """
    rng = np.random.default_rng(seed)
    labels = [f"label:Type{i}" for i in range(64)]
    properties = [f"prop{i}" for i in range(512)]
    seen: dict[frozenset[str], None] = {}
    while len(seen) < count:
        draw = count - len(seen) + 1024
        columns = rng.integers(0, len(properties), size=(draw, 9))
        sizes = rng.integers(2, 10, size=draw)
        label_picks = rng.integers(0, len(labels), size=draw)
        for row in range(draw):
            tokens = {properties[c] for c in columns[row, : sizes[row]]}
            tokens.add(labels[label_picks[row]])
            seen.setdefault(frozenset(tokens), None)
            if len(seen) == count:
                break
    return list(seen)


def test_lsh_signature_throughput(capsys):
    workload = synthetic_token_sets(NUM_SETS, SEED)

    # Best of three cold runs (fresh instance each, so the signature cache
    # never carries over) to keep scheduler noise out of the measurement.
    batched_seconds = float("inf")
    for _ in range(3):
        lsh = MinHashLSH(num_tables=NUM_TABLES, band_size=BAND_SIZE, seed=SEED)
        start = time.perf_counter()
        batched = lsh.signatures_batch(workload)
        batched_seconds = min(batched_seconds, time.perf_counter() - start)
    assert batched.shape == (NUM_SETS, NUM_TABLES * BAND_SIZE)

    # Seed scalar path on an evenly spaced subsample of the same workload.
    sample_rows = np.linspace(0, NUM_SETS - 1, SCALAR_SAMPLE, dtype=int)
    reference = MinHashLSH(num_tables=NUM_TABLES, band_size=BAND_SIZE, seed=SEED)
    start = time.perf_counter()
    scalar_rows = [scalar_signature(reference, workload[r]) for r in sample_rows]
    scalar_seconds = time.perf_counter() - start

    # Bit-identical signatures: the kernel rewrite changes cost, not values.
    for row, scalar in zip(sample_rows, scalar_rows):
        assert np.array_equal(batched[row], scalar), f"signature mismatch at {row}"

    batched_per_set = batched_seconds / NUM_SETS
    scalar_per_set = scalar_seconds / SCALAR_SAMPLE
    speedup = scalar_per_set / batched_per_set
    emit(
        capsys,
        "\n".join(
            [
                "LSH signature throughput "
                f"({NUM_SETS:,} distinct token sets, H={NUM_TABLES * BAND_SIZE})",
                f"  batched kernel : {batched_seconds:8.3f}s total   "
                f"({1.0 / batched_per_set:12,.0f} sets/s)",
                f"  scalar (seed)  : {scalar_per_set * NUM_SETS:8.3f}s scaled  "
                f"({1.0 / scalar_per_set:12,.0f} sets/s, "
                f"timed on {SCALAR_SAMPLE:,} sets)",
                f"  speedup        : {speedup:8.1f}x",
            ]
        ),
    )
    if MIN_SPEEDUP is not None:
        assert speedup >= MIN_SPEEDUP, (
            f"vectorized kernel only {speedup:.1f}x faster than scalar path"
        )


def _group_by_signature_loop(signatures: np.ndarray) -> list[list[int]]:
    """Seed implementation: per-row Python tuple() hashing (reference)."""
    buckets: dict[tuple, list[int]] = {}
    for row_index, row in enumerate(signatures):
        buckets.setdefault(tuple(row.tolist()), []).append(row_index)
    return sorted(buckets.values(), key=lambda group: group[0])


def _group_by_signature_unique(signatures: np.ndarray) -> list[list[int]]:
    """The np.unique(axis=0) candidate -- kept as measured evidence.

    Rejected for production: its void-dtype lexicographic sort makes it
    slower than even the seed tuple loop at every scale tried (this bench
    records the numbers), so ``group_by_signature`` ships the bytes-keyed
    single-pass instead.
    """
    if len(signatures) == 0:
        return []
    _, inverse = np.unique(signatures, axis=0, return_inverse=True)
    inverse = np.asarray(inverse).reshape(-1)
    order = np.argsort(inverse, kind="stable")
    boundaries = np.flatnonzero(np.diff(inverse[order])) + 1
    order_list = order.tolist()
    starts = [0, *boundaries.tolist()]
    ends = [*boundaries.tolist(), len(order_list)]
    groups = [order_list[start:end] for start, end in zip(starts, ends)]
    groups.sort(key=lambda group: group[0])
    return groups


def test_group_by_signature_throughput(capsys):
    """Shipped grouping must match both references and beat the seed loop."""
    rng = np.random.default_rng(SEED)
    count = 20_000 if QUICK else 200_000
    # ~count/8 distinct signatures so groups have realistic multiplicity
    # (AND-rule clusters repeat structural patterns).
    distinct = rng.integers(0, 64, size=(max(count // 8, 1), NUM_TABLES))
    signatures = distinct[rng.integers(0, len(distinct), size=count)].astype(
        np.uint64
    )

    timings: dict[str, float] = {}
    outputs: dict[str, list[list[int]]] = {}
    contenders = {
        "bytes (shipped)": group_by_signature,
        "tuple loop (seed)": _group_by_signature_loop,
        "np.unique": _group_by_signature_unique,
    }
    for name, grouping in contenders.items():
        best = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            outputs[name] = grouping(signatures)
            best = min(best, time.perf_counter() - start)
        timings[name] = best

    # Identical first-member-ordered output across all three.
    assert outputs["bytes (shipped)"] == outputs["tuple loop (seed)"]
    assert outputs["bytes (shipped)"] == outputs["np.unique"]

    speedup = timings["tuple loop (seed)"] / timings["bytes (shipped)"]
    lines = [f"AND-rule grouping ({count:,} rows, T={NUM_TABLES}):"]
    lines += [f"  {name:<18}: {seconds:.3f}s" for name, seconds in timings.items()]
    lines.append(f"  shipped vs seed   : {speedup:.1f}x")
    emit(capsys, "\n".join(lines))
    if MIN_GROUPING_SPEEDUP is not None:
        assert speedup >= MIN_GROUPING_SPEEDUP, (
            f"bytes grouping only {speedup:.1f}x faster"
        )


def test_warm_cache_is_near_free(capsys):
    """Re-signing a seen workload must cost dictionary lookups only."""
    workload = synthetic_token_sets(min(NUM_SETS, 20_000), SEED + 1)
    lsh = MinHashLSH(num_tables=NUM_TABLES, band_size=BAND_SIZE, seed=SEED)

    start = time.perf_counter()
    cold = lsh.signatures_batch(workload)
    cold_seconds = time.perf_counter() - start
    start = time.perf_counter()
    warm = lsh.signatures_batch(workload)
    warm_seconds = time.perf_counter() - start

    assert np.array_equal(cold, warm)
    emit(
        capsys,
        f"Signature cache: cold {cold_seconds:.3f}s, warm {warm_seconds:.3f}s "
        f"({len(workload):,} sets)",
    )
    if MIN_SPEEDUP is not None:
        assert warm_seconds <= cold_seconds
